//! Cluster refinement, after González et al.'s *Aggregative Cluster
//! Refinement* (IPDPSW'12).
//!
//! DBSCAN with a single global ε mis-handles data whose blobs have
//! different densities: a loose ε merges nearby tight blobs, a tight ε
//! shatters sparse ones. The original refinement iterates DBSCAN across an
//! ε ladder and keeps clusters when they become "stable". We implement the
//! aggregative core of that idea:
//!
//! 1. run DBSCAN at a *tight* ε (bottom of the ladder) so nothing is
//!    under-segmented,
//! 2. aggregate: repeatedly merge the two clusters whose centroid distance
//!    is smallest, **as long as** the merged cluster stays dense — its
//!    internal mean pairwise spread must not exceed `spread_limit ×` the
//!    larger of the two parents' spreads.
//!
//! This keeps genuinely distinct phases apart (merging them would blow up
//! the spread) while healing over-segmentation (fragments of one phase are
//! close and merging barely changes the spread).

use crate::dbscan::{dbscan, DbscanParams, DbscanResult};

/// Parameters of [`refine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineParams {
    /// Tight starting ε (typically `suggest_eps(..)/2`).
    pub eps: f64,
    /// DBSCAN core threshold.
    pub min_pts: usize,
    /// How much a merge may inflate cluster spread before it is rejected.
    pub spread_limit: f64,
}

impl Default for RefineParams {
    fn default() -> RefineParams {
        RefineParams { eps: 0.05, min_pts: 4, spread_limit: 2.5 }
    }
}

/// Runs tight DBSCAN followed by aggregative merging.
pub fn refine<const D: usize>(points: &[[f64; D]], params: &RefineParams) -> DbscanResult {
    let base = dbscan(points, &DbscanParams { eps: params.eps, min_pts: params.min_pts });
    if base.num_clusters <= 1 {
        return base;
    }

    // Per-cluster members, centroids, spreads.
    let mut clusters: Vec<Vec<usize>> =
        (0..base.num_clusters).map(|c| base.members(c)).collect();

    loop {
        let k = clusters.len();
        if k <= 1 {
            break;
        }
        let centroids: Vec<[f64; D]> = clusters.iter().map(|m| centroid(points, m)).collect();
        // Closest centroid pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..k {
            for b in a + 1..k {
                let d = dist(&centroids[a], &centroids[b]);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        let Some((a, b, _)) = best else { break };
        let spread_a = mean_spread(points, &clusters[a], &centroids[a]);
        let spread_b = mean_spread(points, &clusters[b], &centroids[b]);
        let mut merged = clusters[a].clone();
        merged.extend_from_slice(&clusters[b]);
        let merged_centroid = centroid(points, &merged);
        let merged_spread = mean_spread(points, &merged, &merged_centroid);
        let parent_spread = spread_a.max(spread_b).max(params.eps * 0.5);
        if merged_spread > params.spread_limit * parent_spread {
            break; // the closest pair is a genuine phase boundary: stop
        }
        clusters[a] = merged;
        clusters.swap_remove(b);
    }

    // Rebuild labels; keep clusters ordered by their smallest member so the
    // output is deterministic.
    clusters.sort_by_key(|m| m.iter().copied().min().unwrap_or(usize::MAX));
    let mut labels = vec![None; points.len()];
    for (c, members) in clusters.iter().enumerate() {
        for &i in members {
            labels[i] = Some(c);
        }
    }
    DbscanResult { labels, num_clusters: clusters.len() }
}

fn centroid<const D: usize>(points: &[[f64; D]], members: &[usize]) -> [f64; D] {
    let mut c = [0.0f64; D];
    for &i in members {
        for d in 0..D {
            c[d] += points[i][d];
        }
    }
    let n = members.len().max(1) as f64;
    for v in c.iter_mut() {
        *v /= n;
    }
    c
}

fn mean_spread<const D: usize>(points: &[[f64; D]], members: &[usize], centre: &[f64; D]) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    members.iter().map(|&i| dist(&points[i], centre)).sum::<f64>() / members.len() as f64
}

fn dist<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut s = 0.0;
    for d in 0..D {
        let diff = a[d] - b[d];
        s += diff * diff;
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tight blob split in two fragments plus one distant sparse blob.
    fn fragmented() -> Vec<[f64; 2]> {
        let mut pts = Vec::new();
        // Fragment A1 around (0.10, 0.10), A2 around (0.16, 0.10) — same
        // phase, slightly separated (over-segmentation bait).
        for i in 0..20 {
            let d = (i % 5) as f64 / 400.0;
            pts.push([0.10 + d, 0.10 + (i % 4) as f64 / 400.0]);
            pts.push([0.16 + d, 0.10 + (i % 4) as f64 / 400.0]);
        }
        // Distant sparse blob around (0.8, 0.8).
        for i in 0..20 {
            let d = (i % 10) as f64 / 80.0;
            pts.push([0.75 + d, 0.75 + (i % 7) as f64 / 80.0]);
        }
        pts
    }

    #[test]
    fn heals_over_segmentation_without_bridging_phases() {
        let pts = fragmented();
        // Tight eps fragments A into A1+A2 (and may fragment B).
        let tight = dbscan(&pts, &DbscanParams { eps: 0.03, min_pts: 4 });
        assert!(tight.num_clusters >= 3, "setup: got {}", tight.num_clusters);
        let refined = refine(&pts, &RefineParams { eps: 0.03, min_pts: 4, spread_limit: 3.0 });
        assert_eq!(refined.num_clusters, 2, "refined to {}", refined.num_clusters);
        // A1 and A2 now share a label; B keeps its own.
        let la = refined.labels[0];
        let lb = refined.labels[40];
        assert!(la.is_some() && lb.is_some());
        assert_ne!(la, lb);
        assert_eq!(refined.labels[1], la);
    }

    #[test]
    fn single_cluster_passthrough() {
        let pts: Vec<[f64; 2]> = (0..20).map(|i| [0.5 + (i % 5) as f64 / 100.0, 0.5]).collect();
        let refined = refine(&pts, &RefineParams::default());
        assert_eq!(refined.num_clusters, 1);
    }

    #[test]
    fn noise_stays_noise() {
        let mut pts = fragmented();
        pts.push([10.0, -10.0]);
        let refined = refine(&pts, &RefineParams { eps: 0.03, min_pts: 4, spread_limit: 3.0 });
        assert!(refined.labels.last().unwrap().is_none());
    }

    #[test]
    fn labels_dense_after_refine() {
        let pts = fragmented();
        let refined = refine(&pts, &RefineParams { eps: 0.03, min_pts: 4, spread_limit: 3.0 });
        let mut seen: Vec<usize> = refined.labels.iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (0..refined.num_clusters).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let refined = refine::<2>(&[], &RefineParams::default());
        assert_eq!(refined.num_clusters, 0);
    }
}
