//! Ordinary and weighted least squares on explicit design matrices, plus a
//! closed-form simple linear regression.

use crate::linalg::{wls, LinalgError, Mat};

/// Result of a simple (one-predictor) linear regression `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Residual sum of squares.
    pub sse: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Number of points.
    pub n: usize,
}

impl SimpleFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by closed-form least squares; `None` if fewer than two
/// points or zero x-variance (vertical data).
pub fn simple_ols(xs: &[f64], ys: &[f64]) -> Option<SimpleFit> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let sse = (syy - slope * sxy).max(0.0);
    let r2 = if syy > 0.0 { 1.0 - sse / syy } else { 1.0 };
    Some(SimpleFit { intercept, slope, sse, r2, n })
}

/// Result of a multiple linear regression.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFit {
    /// Coefficients in design-column order.
    pub beta: Vec<f64>,
    /// Residual sum of squares (weighted if weights were given).
    pub sse: f64,
    /// Number of rows.
    pub n: usize,
}

/// Weighted multiple linear regression on an explicit design matrix.
pub fn multi_wls(design: &Mat, y: &[f64], w: Option<&[f64]>) -> Result<MultiFit, LinalgError> {
    let beta = wls(design, y, w)?;
    let pred = design.mul_vec(&beta);
    let sse = pred
        .iter()
        .zip(y)
        .enumerate()
        .map(|(i, (p, yy))| {
            let wi = w.map_or(1.0, |w| w[i]);
            wi * (p - yy) * (p - yy)
        })
        .sum();
    Ok(MultiFit { beta, sse, n: y.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 - 0.5 * x).collect();
        let fit = simple_ols(&xs, &ys).unwrap();
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.slope + 0.5).abs() < 1e-12);
        assert!(fit.sse < 1e-20);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn simple_with_noise_has_positive_sse() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.1, 0.9, 2.2, 2.8];
        let fit = simple_ols(&xs, &ys).unwrap();
        assert!(fit.sse > 0.0);
        assert!(fit.r2 > 0.9);
    }

    #[test]
    fn simple_degenerate_inputs() {
        assert!(simple_ols(&[1.0], &[2.0]).is_none());
        assert!(simple_ols(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(simple_ols(&[], &[]).is_none());
    }

    #[test]
    fn simple_constant_y_gives_r2_one() {
        let fit = simple_ols(&[0.0, 1.0, 2.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn multi_matches_simple() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.9, 5.2, 7.1, 8.8];
        let simple = simple_ols(&xs, &ys).unwrap();
        let design = Mat::from_rows(&xs.iter().map(|&x| vec![1.0, x]).collect::<Vec<_>>());
        let multi = multi_wls(&design, &ys, None).unwrap();
        assert!((multi.beta[0] - simple.intercept).abs() < 1e-10);
        assert!((multi.beta[1] - simple.slope).abs() < 1e-10);
        assert!((multi.sse - simple.sse).abs() < 1e-10);
    }

    #[test]
    fn multi_quadratic_basis() {
        // y = 1 + 2x + 3x², exact fit with 3 basis columns.
        let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + 2.0 * x + 3.0 * x * x).collect();
        let design =
            Mat::from_rows(&xs.iter().map(|&x| vec![1.0, x, x * x]).collect::<Vec<_>>());
        let fit = multi_wls(&design, &ys, None).unwrap();
        assert!((fit.beta[0] - 1.0).abs() < 1e-8);
        assert!((fit.beta[1] - 2.0).abs() < 1e-8);
        assert!((fit.beta[2] - 3.0).abs() < 1e-8);
        assert!(fit.sse < 1e-12);
    }
}
