//! Trace round-trip and exploration: write a `.prv`-like trace file, read
//! it back, and analyse the parsed copy.
//!
//! ```text
//! cargo run --release --example trace_explorer [output.prv]
//! ```
//!
//! The original tool-chain decouples recording (Extrae) from analysis
//! (Paraver + folding) through trace files. This example demonstrates the
//! same decoupling: the analysis at the end runs purely on the re-parsed
//! file, without access to the simulator.

use phasefold::report::render_report;
use phasefold::{analyze_trace, AnalysisConfig};
use phasefold_model::prv;
use phasefold_simapp::workloads::stencil::{build, StencilParams};
use phasefold_simapp::{simulate, SimConfig};
use phasefold_tracer::{trace_run, TracerConfig};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/stencil_trace.prv".to_string());

    // Record.
    let program = build(&StencilParams::default());
    let sim = simulate(&program, &SimConfig { ranks: 4, ..SimConfig::default() });
    let trace = trace_run(&program.registry, &sim.timelines, &TracerConfig::default());
    let text = prv::write_trace(&trace);
    std::fs::write(&path, &text).expect("write trace file");
    println!(
        "wrote {path}: {} ranks, {} records, {} bytes",
        trace.num_ranks(),
        trace.total_records(),
        text.len()
    );

    // Re-read and explore.
    let parsed = prv::parse_trace(&std::fs::read_to_string(&path).expect("read trace file"))
        .expect("parse trace file");
    let mut samples = 0usize;
    let mut comms = 0usize;
    let mut markers = 0usize;
    for (_, stream) in parsed.iter_ranks() {
        for r in stream.records() {
            if r.is_sample() {
                samples += 1;
            } else if r.is_comm() {
                comms += 1;
            } else {
                markers += 1;
            }
        }
    }
    println!("parsed back: {samples} samples, {comms} comm boundaries, {markers} region markers");
    println!("regions in trace:");
    for (_, info) in parsed.registry.iter() {
        println!("  [{}] {} @ {}", info.kind.tag(), info.name, info.location);
    }

    // Analyse the parsed copy only.
    let analysis = analyze_trace(&parsed, &AnalysisConfig::default());
    println!("\n{}", render_report(&analysis, &parsed.registry));
}
