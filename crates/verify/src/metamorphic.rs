//! Metamorphic properties derived from the paper's math.
//!
//! | property | transformation | expected relation |
//! |----------|----------------|-------------------|
//! | threads-bit-identity | `threads ∈ {1, 2, 8}` | bit-identical analysis |
//! | time-shift | all record times `+Δ` | bit-identical analysis (every stage consumes time *differences*) |
//! | time-scale | all record times `×2ᵏ`, burst filter scaled alike | folded profiles bit-identical, mean durations scale exactly (power-of-two scaling commutes with f64 rounding) |
//! | dbscan-permutation | shuffle point order | same core set, same noise set, core partition equal up to relabeling (border ownership is visit-order-dependent by design) |
//! | fold-reorder | permute burst/label order | same point multiset per profile, same prune decisions; means agree to 1e-12 relative (summation order) |
//! | batch-online | same records, streamed per rank | same per-rank burst counts at every prefix, same fault tallies |
//! | checkpoint-roundtrip | checkpoint mid-stream, restore, finish both | bit-identical analysis digest (resume is exact) |
//! | reservoir-stream | same stream, folded points capped at [`RESERVOIR_CHECK_CAP`] | accounting exact; fitted instruction curves within RMS [`RESERVOIR_RMS_BOUND`] in normalized-progress units |
//! | fingerprint-roundtrip | analysis → `.pffp` frame → decode → re-encode | decoded fingerprint equals the original, re-encoded bytes are bit-identical |

use crate::generate::Case;
use crate::Divergence;
use phasefold::{try_analyze_trace, Analysis, OnlineAnalyzer};
use phasefold_cluster::{cluster_bursts, dbscan, extract_features, DbscanParams};
use phasefold_folding::fold_trace;
use phasefold_model::{
    burst::extract_bursts_checked, fault::FaultReport, Record, Sample, TimeNs, Trace,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Rebuilds a trace with every record time mapped through `f`. The map
/// must be monotone; the per-rank push cannot fail then.
pub fn map_times(trace: &Trace, f: impl Fn(TimeNs) -> TimeNs) -> Trace {
    let mut out = Trace::with_ranks(trace.registry.clone(), trace.num_ranks());
    for (rank, stream) in trace.iter_ranks() {
        let Some(dst) = out.rank_mut(rank) else { continue };
        for record in stream.records() {
            let mapped = match record {
                Record::RegionEnter { time, region } => {
                    Record::RegionEnter { time: f(*time), region: *region }
                }
                Record::RegionExit { time, region } => {
                    Record::RegionExit { time: f(*time), region: *region }
                }
                Record::CommEnter { time, kind, counters } => {
                    Record::CommEnter { time: f(*time), kind: *kind, counters: *counters }
                }
                Record::CommExit { time, kind, counters } => {
                    Record::CommExit { time: f(*time), kind: *kind, counters: *counters }
                }
                Record::Sample(s) => Record::Sample(Sample {
                    time: f(s.time),
                    counters: s.counters,
                    callstack: s.callstack.clone(),
                }),
            };
            let _ = dst.push(mapped);
        }
    }
    out
}

/// Bit-faithful digest of everything an analysis asserts: burst counts,
/// labels, and the exact bits of every fitted quantity. Two analyses are
/// "the same result" iff their digests are equal strings.
pub fn digest_analysis(result: &Result<Analysis, phasefold::Fault>) -> String {
    let mut d = String::new();
    match result {
        Err(fault) => {
            let _ = write!(d, "ERR {:?} {}", fault.kind, fault.detail);
        }
        Ok(a) => {
            let _ = write!(
                d,
                "bursts={} clusters={} eps={:016x} spmd={:016x} labels={:?} faults={}",
                a.num_bursts,
                a.clustering.num_clusters,
                a.clustering.eps.to_bits(),
                a.clustering.spmd_score.to_bits(),
                a.clustering.labels,
                a.faults.len(),
            );
            for m in &a.models {
                let _ = write!(
                    d,
                    "|model c{} inst={}/{} samples={} dur={:016x} b0={:016x} sse={:016x} bps=",
                    m.cluster,
                    m.instances,
                    m.instances_pruned,
                    m.folded_samples,
                    m.mean_duration_s.to_bits(),
                    m.fit.fit.intercept.to_bits(),
                    m.fit.fit.sse.to_bits(),
                );
                for bp in m.fit.breakpoints() {
                    let _ = write!(d, "{:016x},", bp.to_bits());
                }
                let _ = write!(d, " slopes=");
                for s in m.fit.slopes() {
                    let _ = write!(d, "{:016x},", s.to_bits());
                }
                for phase in &m.phases {
                    let _ = write!(d, " p{}dur={:016x} rates=", phase.index, phase.duration_s.to_bits());
                    for (_, v) in phase.rates.iter() {
                        let _ = write!(d, "{:016x},", v.to_bits());
                    }
                }
            }
        }
    }
    d
}

/// Property: the analysis is bit-identical at any thread count.
pub fn check_threads(case: &Case, seed: u64) -> Option<Divergence> {
    let mut digests = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut config = case.config.to_analysis();
        config.threads = Some(threads);
        digests.push((threads, digest_analysis(&try_analyze_trace(&case.trace, &config))));
    }
    for (threads, digest) in &digests[1..] {
        if digest != &digests[0].1 {
            return Some(Divergence {
                check: "threads-bit-identity",
                seed,
                detail: format!(
                    "analysis differs between threads=1 and threads={threads}: {}",
                    first_difference(&digests[0].1, digest)
                ),
                repro: None,
            });
        }
    }
    None
}

/// Property: shifting every timestamp by a constant leaves the analysis
/// bit-identical — the pipeline consumes only time differences.
pub fn check_time_shift(case: &Case, seed: u64) -> Option<Divergence> {
    let config = case.config.to_analysis();
    let base = digest_analysis(&try_analyze_trace(&case.trace, &config));
    let shifted_trace = map_times(&case.trace, |t| TimeNs(t.0 + 7_777_777));
    let shifted = digest_analysis(&try_analyze_trace(&shifted_trace, &config));
    (base != shifted).then(|| Divergence {
        check: "time-shift",
        seed,
        detail: format!(
            "analysis changed under a +7.777ms uniform shift: {}",
            first_difference(&base, &shifted)
        ),
        repro: None,
    })
}

/// Property: scaling every timestamp by a power of two (and the burst
/// filter with it) leaves burst extraction, outlier pruning, and the
/// folded profiles bit-identical, and scales mean durations *exactly* —
/// multiplication by 2ᵏ commutes with f64 rounding.
///
/// Deliberately scoped to the folding layer: clustering consumes
/// `log₁₀(duration)`, which is only *approximately* shift-equivariant in
/// floating point, so label equality under scaling is not an invariant the
/// math promises. The base clustering is therefore reused on both sides.
pub fn check_time_scale(case: &Case, seed: u64) -> Option<Divergence> {
    const SCALE: u64 = 4;
    let config = case.config.to_analysis();
    let mut scaled_config = config.clone();
    scaled_config.min_burst_duration =
        phasefold_model::DurNs(config.min_burst_duration.0 * SCALE);

    let mut faults = FaultReport::new();
    let bursts = extract_bursts_checked(&case.trace, config.min_burst_duration, &mut faults);
    let scaled_trace = map_times(&case.trace, |t| TimeNs(t.0 * SCALE));
    let mut scaled_faults = FaultReport::new();
    let scaled_bursts =
        extract_bursts_checked(&scaled_trace, scaled_config.min_burst_duration, &mut scaled_faults);
    if bursts.len() != scaled_bursts.len() || faults.len() != scaled_faults.len() {
        return Some(Divergence {
            check: "time-scale",
            seed,
            detail: format!(
                "burst extraction changed under ×{SCALE}: {} bursts/{} faults vs {}/{}",
                bursts.len(),
                faults.len(),
                scaled_bursts.len(),
                scaled_faults.len()
            ),
            repro: None,
        });
    }

    let clustering = cluster_bursts(&bursts, &config.cluster);
    let base_folds = fold_trace(&case.trace, &bursts, &clustering, &config.fold);
    let scaled_folds = fold_trace(&scaled_trace, &scaled_bursts, &clustering, &config.fold);
    if base_folds.len() != scaled_folds.len() {
        return Some(Divergence {
            check: "time-scale",
            seed,
            detail: format!("fold count {} vs {}", base_folds.len(), scaled_folds.len()),
            repro: None,
        });
    }
    for (b, s) in base_folds.iter().zip(&scaled_folds) {
        if b.instances_used != s.instances_used || b.instances_pruned != s.instances_pruned {
            return Some(Divergence {
                check: "time-scale",
                seed,
                detail: format!(
                    "cluster {}: prune decisions changed under ×{SCALE}: {}/{} vs {}/{}",
                    b.cluster, b.instances_used, b.instances_pruned, s.instances_used, s.instances_pruned
                ),
                repro: None,
            });
        }
        if (b.mean_duration_s * SCALE as f64).to_bits() != s.mean_duration_s.to_bits() {
            return Some(Divergence {
                check: "time-scale",
                seed,
                detail: format!(
                    "cluster {}: mean duration did not scale exactly: {} × {SCALE} != {}",
                    b.cluster, b.mean_duration_s, s.mean_duration_s
                ),
                repro: None,
            });
        }
        for (k, (bp, sp)) in b.profiles.iter().zip(&s.profiles).enumerate() {
            if bp.len() != sp.len()
                || bp
                    .iter()
                    .zip(sp.iter())
                    .any(|(x, y)| x.x.to_bits() != y.x.to_bits() || x.y.to_bits() != y.y.to_bits())
            {
                return Some(Divergence {
                    check: "time-scale",
                    seed,
                    detail: format!(
                        "cluster {} counter {k}: folded profile changed under ×{SCALE} time scaling",
                        b.cluster
                    ),
                    repro: None,
                });
            }
        }
    }
    None
}

/// Property: DBSCAN under a permutation of the input points keeps the core
/// set, the noise set, and the core partition (up to relabeling). Runs on
/// the case's actual burst feature embedding.
pub fn check_dbscan_permutation(case: &Case, rng: &mut StdRng, seed: u64) -> Option<Divergence> {
    let config = case.config.to_analysis();
    let mut faults = FaultReport::new();
    let bursts = extract_bursts_checked(&case.trace, config.min_burst_duration, &mut faults);
    if bursts.len() < 2 {
        return None;
    }
    let features = extract_features(&bursts);
    let points = features.points;
    let clustering = cluster_bursts(&bursts, &config.cluster);
    let eps = clustering.eps;
    let min_pts = config.cluster.min_pts;

    // Fisher–Yates permutation from the seeded rng.
    let n = points.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0usize..i + 1));
    }
    let permuted: Vec<[f64; 2]> = perm.iter().map(|&i| points[i]).collect();

    let a = dbscan(&points, &DbscanParams { eps, min_pts });
    let b = dbscan(&permuted, &DbscanParams { eps, min_pts });

    // Geometric core set, computed order-free.
    let eps2 = eps * eps;
    let core: Vec<bool> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| {
                    let dx = points[i][0] - points[j][0];
                    let dy = points[i][1] - points[j][1];
                    dx * dx + dy * dy <= eps2
                })
                .count()
                >= min_pts
        })
        .collect();

    if a.num_clusters != b.num_clusters {
        return Some(Divergence {
            check: "dbscan-permutation",
            seed,
            detail: format!(
                "cluster count changed under permutation: {} vs {}",
                a.num_clusters, b.num_clusters
            ),
            repro: None,
        });
    }
    let mut label_map: HashMap<usize, usize> = HashMap::new();
    let mut label_map_rev: HashMap<usize, usize> = HashMap::new();
    for (pos, &orig) in perm.iter().enumerate() {
        let (la, lb) = (a.labels[orig], b.labels[pos]);
        if la.is_none() != lb.is_none() {
            return Some(Divergence {
                check: "dbscan-permutation",
                seed,
                detail: format!(
                    "noise status of point {orig} changed under permutation: {la:?} vs {lb:?}"
                ),
                repro: None,
            });
        }
        if !core[orig] {
            continue; // border ownership is legitimately order-dependent
        }
        let (Some(la), Some(lb)) = (la, lb) else {
            return Some(Divergence {
                check: "dbscan-permutation",
                seed,
                detail: format!("core point {orig} labelled noise ({la:?} / {lb:?})"),
                repro: None,
            });
        };
        if *label_map.entry(la).or_insert(lb) != lb || *label_map_rev.entry(lb).or_insert(la) != la
        {
            return Some(Divergence {
                check: "dbscan-permutation",
                seed,
                detail: format!(
                    "core partition not a bijection under permutation at point {orig} ({la} vs {lb})"
                ),
                repro: None,
            });
        }
    }
    None
}

/// Property: folding is equivariant under a permutation of the burst
/// order — same prune decisions, same per-profile point multiset, means
/// equal to 1e-12 relative (summation order differs).
pub fn check_fold_reorder(case: &Case, rng: &mut StdRng, seed: u64) -> Option<Divergence> {
    let config = case.config.to_analysis();
    let mut faults = FaultReport::new();
    let bursts = extract_bursts_checked(&case.trace, config.min_burst_duration, &mut faults);
    if bursts.len() < 2 {
        return None;
    }
    let clustering = cluster_bursts(&bursts, &config.cluster);
    let base = fold_trace(&case.trace, &bursts, &clustering, &config.fold);

    let n = bursts.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0usize..i + 1));
    }
    let permuted_bursts: Vec<_> = perm.iter().map(|&i| bursts[i].clone()).collect();
    let mut permuted_clustering = clustering.clone();
    permuted_clustering.labels = perm.iter().map(|&i| clustering.labels[i]).collect();
    let reordered = fold_trace(&case.trace, &permuted_bursts, &permuted_clustering, &config.fold);

    if base.len() != reordered.len() {
        return Some(Divergence {
            check: "fold-reorder",
            seed,
            detail: format!("fold count changed under reorder: {} vs {}", base.len(), reordered.len()),
            repro: None,
        });
    }
    let rel_close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
    for (b, r) in base.iter().zip(&reordered) {
        if b.cluster != r.cluster
            || b.instances_used != r.instances_used
            || b.instances_pruned != r.instances_pruned
            || b.samples != r.samples
        {
            return Some(Divergence {
                check: "fold-reorder",
                seed,
                detail: format!(
                    "cluster {}: shape changed under reorder ({}/{}/{} vs {}/{}/{})",
                    b.cluster,
                    b.instances_used,
                    b.instances_pruned,
                    b.samples,
                    r.instances_used,
                    r.instances_pruned,
                    r.samples
                ),
                repro: None,
            });
        }
        if !rel_close(b.mean_duration_s, r.mean_duration_s) {
            return Some(Divergence {
                check: "fold-reorder",
                seed,
                detail: format!(
                    "cluster {}: mean duration {} vs {} beyond summation-order tolerance",
                    b.cluster, b.mean_duration_s, r.mean_duration_s
                ),
                repro: None,
            });
        }
        for (k, (bp, rp)) in b.profiles.iter().zip(&r.profiles).enumerate() {
            if !rel_close(bp.mean_total, rp.mean_total) {
                return Some(Divergence {
                    check: "fold-reorder",
                    seed,
                    detail: format!(
                        "cluster {} counter {k}: mean_total {} vs {}",
                        b.cluster, bp.mean_total, rp.mean_total
                    ),
                    repro: None,
                });
            }
            // Point multiset: exact on (x, y) bits; instance ids are
            // renumbered by the permutation, so they are excluded.
            let mut pa: Vec<(u64, u64)> =
                bp.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
            let mut pb: Vec<(u64, u64)> =
                rp.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
            pa.sort_unstable();
            pb.sort_unstable();
            if pa != pb {
                return Some(Divergence {
                    check: "fold-reorder",
                    seed,
                    detail: format!(
                        "cluster {} counter {k}: folded point multiset changed under reorder ({} vs {} points)",
                        b.cluster,
                        pa.len(),
                        pb.len()
                    ),
                    repro: None,
                });
            }
        }
    }
    None
}

/// Property: streaming the same records into [`OnlineAnalyzer`] sees
/// exactly the bursts batch extraction sees, per rank and at every push
/// boundary, with the same fault tallies.
pub fn check_batch_online(case: &Case, seed: u64) -> Option<Divergence> {
    let config = case.config.to_analysis();
    // Batch side: per-rank checked extraction over the full trace.
    let mut batch_faults = FaultReport::new();
    let batch_bursts =
        extract_bursts_checked(&case.trace, config.min_burst_duration, &mut batch_faults);
    let mut batch_per_rank: HashMap<u32, usize> = HashMap::new();
    for b in &batch_bursts {
        *batch_per_rank.entry(b.id.rank.0).or_insert(0) += 1;
    }

    // Online side: push each rank's records in chunks.
    let mut online = OnlineAnalyzer::new(config, 8);
    for (rank, stream) in case.trace.iter_ranks() {
        for chunk in stream.records().chunks(5) {
            online.push_records(rank, chunk);
        }
    }
    for (rank, _) in case.trace.iter_ranks() {
        let batch = batch_per_rank.get(&rank.0).copied().unwrap_or(0);
        let seen = online.rank_bursts_seen(rank);
        if batch != seen {
            return Some(Divergence {
                check: "batch-online",
                seed,
                detail: format!(
                    "rank {}: batch extracted {batch} bursts, online saw {seen}",
                    rank.0
                ),
                repro: None,
            });
        }
    }
    if online.bursts_seen() != batch_bursts.len()
        || online.stream_faults().len() != batch_faults.len()
    {
        return Some(Divergence {
            check: "batch-online",
            seed,
            detail: format!(
                "totals: batch {} bursts/{} faults, online {} bursts/{} faults",
                batch_bursts.len(),
                batch_faults.len(),
                online.bursts_seen(),
                online.stream_faults().len()
            ),
            repro: None,
        });
    }
    None
}

/// Property: a session checkpointed mid-stream and restored finishes with
/// a bit-identical analysis to the session that never stopped. This is the
/// resume-exactness contract the serve daemon's durability layer leans on:
/// replaying records into a restored checkpoint must reproduce the
/// uninterrupted trajectory.
pub fn check_checkpoint_roundtrip(case: &Case, seed: u64) -> Option<Divergence> {
    let config = case.config.to_analysis();
    let mut uninterrupted = OnlineAnalyzer::new(config.clone(), 8).with_seed(seed);
    let mut front = OnlineAnalyzer::new(config.clone(), 8).with_seed(seed);
    for (rank, stream) in case.trace.iter_ranks() {
        let records = stream.records();
        let mid = records.len() / 2;
        for chunk in records[..mid].chunks(5) {
            uninterrupted.push_records(rank, chunk);
            front.push_records(rank, chunk);
        }
    }
    let bytes = front.encode_checkpoint();
    let mut resumed = match OnlineAnalyzer::restore_checkpoint(config, &bytes) {
        Ok(a) => a,
        Err(fault) => {
            return Some(Divergence {
                check: "checkpoint-roundtrip",
                seed,
                detail: format!("restore of a clean checkpoint failed: {fault}"),
                repro: None,
            })
        }
    };
    for (rank, stream) in case.trace.iter_ranks() {
        let records = stream.records();
        let mid = records.len() / 2;
        for chunk in records[mid..].chunks(5) {
            uninterrupted.push_records(rank, chunk);
            resumed.push_records(rank, chunk);
        }
    }
    let a = digest_analysis(&Ok(uninterrupted.snapshot()));
    let b = digest_analysis(&Ok(resumed.snapshot()));
    if a != b {
        return Some(Divergence {
            check: "checkpoint-roundtrip",
            seed,
            detail: format!("resumed digest diverged: {}", first_difference(&a, &b)),
            repro: None,
        });
    }
    None
}

/// Reservoir cap under which [`check_reservoir_stream`] holds its curve
/// bound. Smaller caps trade accuracy for memory and are outside the
/// verified envelope.
pub const RESERVOIR_CHECK_CAP: usize = 256;

/// RMS bound (normalized-progress units, i.e. the instruction profile's
/// own [0, 1] y-range) between the unbounded and reservoir-sampled fitted
/// curves over the fuzzer's spec space at [`RESERVOIR_CHECK_CAP`].
/// Calibrated: the worst observed RMS over 500 fuzz seeds at cap 256 is
/// 0.052 — the bound keeps ~50% headroom over that, and the dominant
/// error term is breakpoint placement sensitivity in the piece-wise fit,
/// not sample count (halving the cap barely moves it).
pub const RESERVOIR_RMS_BOUND: f64 = 0.08;

/// Property: capping per-stratum folded points with the deterministic
/// reservoir changes *accounting* not at all and the *fitted curves* by at
/// most [`RESERVOIR_RMS_BOUND`] RMS. This is the batch ↔ sampled-stream
/// equivalence bound documented in `core::online`.
pub fn check_reservoir_stream(case: &Case, seed: u64) -> Option<Divergence> {
    let config = case.config.to_analysis();
    let mut full = OnlineAnalyzer::new(config.clone(), 8).with_seed(seed).with_reservoir_cap(0);
    let mut capped = OnlineAnalyzer::new(config, 8)
        .with_seed(seed)
        .with_reservoir_cap(RESERVOIR_CHECK_CAP);
    for (rank, stream) in case.trace.iter_ranks() {
        for chunk in stream.records().chunks(7) {
            full.push_records(rank, chunk);
            capped.push_records(rank, chunk);
        }
    }
    // Accounting is exact for any cap: sampling drops points from the
    // folded profiles, never from the counts the analyzer asserts.
    if full.bursts_seen() != capped.bursts_seen()
        || full.noise_bursts() != capped.noise_bursts()
        || full.records_quarantined() != capped.records_quarantined()
        || full.stream_faults().len() != capped.stream_faults().len()
    {
        return Some(Divergence {
            check: "reservoir-stream",
            seed,
            detail: format!(
                "accounting diverged: full {}b/{}n/{}q/{}f vs capped {}b/{}n/{}q/{}f",
                full.bursts_seen(),
                full.noise_bursts(),
                full.records_quarantined(),
                full.stream_faults().len(),
                capped.bursts_seen(),
                capped.noise_bursts(),
                capped.records_quarantined(),
                capped.stream_faults().len(),
            ),
            repro: None,
        });
    }
    let a = full.snapshot();
    let b = capped.snapshot();
    // The clustering froze from the warm-up buffer, before any reservoir
    // was involved: structure must match exactly.
    if a.clustering.num_clusters != b.clustering.num_clusters {
        return Some(Divergence {
            check: "reservoir-stream",
            seed,
            detail: format!(
                "cluster count diverged: {} vs {}",
                a.clustering.num_clusters, b.clustering.num_clusters
            ),
            repro: None,
        });
    }
    for am in &a.models {
        let Some(bm) = b.models.iter().find(|m| m.cluster == am.cluster) else {
            return Some(Divergence {
                check: "reservoir-stream",
                seed,
                detail: format!("cluster {} modeled unbounded but not capped", am.cluster),
                repro: None,
            });
        };
        if am.instances != bm.instances || am.instances_pruned != bm.instances_pruned {
            return Some(Divergence {
                check: "reservoir-stream",
                seed,
                detail: format!(
                    "cluster {}: instance accounting diverged ({}/{} vs {}/{})",
                    am.cluster, am.instances, am.instances_pruned, bm.instances, bm.instances_pruned
                ),
                repro: None,
            });
        }
        // Curve proximity on a fixed grid of burst fractions. The fitted y
        // is normalized instruction progress, so the RMS is directly in
        // normalized-progress units.
        const GRID: usize = 64;
        let mut sq = 0.0;
        for i in 0..GRID {
            let x = (i as f64 + 0.5) / GRID as f64;
            let d = am.fit.fit.predict(x) - bm.fit.fit.predict(x);
            sq += d * d;
        }
        let rms = (sq / GRID as f64).sqrt();
        if !rms.is_finite() || rms > RESERVOIR_RMS_BOUND {
            return Some(Divergence {
                check: "reservoir-stream",
                seed,
                detail: format!(
                    "cluster {}: fitted curves {rms:.4} RMS apart (bound {RESERVOIR_RMS_BOUND}, \
                     cap {RESERVOIR_CHECK_CAP}, {} vs {} folded samples)",
                    am.cluster, am.folded_samples, bm.folded_samples
                ),
                repro: None,
            });
        }
    }
    None
}

/// Property: condensing an analysis into a fleet fingerprint and pushing
/// it through the `.pffp` wire frame is lossless — the decoded fingerprint
/// equals the original, and re-encoding it reproduces the exact bytes.
/// This is the storage contract the fleet store and `regress-check` lean
/// on: a baseline written by one build must read back bit-identically in
/// the next.
pub fn check_fingerprint_roundtrip(case: &Case, seed: u64) -> Option<Divergence> {
    let config = case.config.to_analysis();
    // Faulted analyses have no fingerprint to round-trip; other checks own
    // the fault-handling contracts.
    let analysis = try_analyze_trace(&case.trace, &config).ok()?;
    let fp = phasefold_fleet::Fingerprint::from_analysis(
        &analysis,
        &case.trace.registry,
        "verify-build",
        "verify-trace",
    );
    let bytes = fp.encode();
    let decoded = match phasefold_fleet::Fingerprint::decode(&bytes) {
        Ok(d) => d,
        Err(e) => {
            return Some(Divergence {
                check: "fingerprint-roundtrip",
                seed,
                detail: format!("decode of a fresh frame failed: {e}"),
                repro: None,
            })
        }
    };
    if decoded != fp {
        return Some(Divergence {
            check: "fingerprint-roundtrip",
            seed,
            detail: format!(
                "decoded fingerprint diverged: {} vs {} clusters, {} vs {} phases",
                decoded.clusters.len(),
                fp.clusters.len(),
                decoded.num_phases(),
                fp.num_phases()
            ),
            repro: None,
        });
    }
    let re = decoded.encode();
    if re != bytes {
        let pos = re.iter().zip(&bytes).position(|(a, b)| a != b).unwrap_or(bytes.len().min(re.len()));
        return Some(Divergence {
            check: "fingerprint-roundtrip",
            seed,
            detail: format!(
                "re-encoded frame differs at byte {pos} ({} vs {} bytes total)",
                re.len(),
                bytes.len()
            ),
            repro: None,
        });
    }
    None
}

/// Locates the first differing region of two digests, for readable
/// divergence details.
fn first_difference(a: &str, b: &str) -> String {
    let pos = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    let lo = pos.saturating_sub(20);
    let window = |s: &str| {
        let hi = (pos + 40).min(s.len());
        s.get(lo..hi).unwrap_or("<non-utf8 boundary>").to_string()
    };
    format!("...{}... vs ...{}...", window(a), window(b))
}
