//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! exactly the surface it uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen` and `Rng::gen_range` over half-open ranges. The generator is
//! SplitMix64 — deterministic, seedable and statistically adequate for the
//! simulator's noise models. Seeded streams are NOT bit-compatible with the
//! real `rand` crate (which uses ChaCha12 for `StdRng`); everything in this
//! workspace only relies on determinism, not on a specific stream.

use std::ops::Range;

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Value sampling helpers, mirroring the subset of `rand::Rng` in use.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from the half-open `range`. Panics if empty.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 significand bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a half-open range
/// (`Rng::gen_range`).
pub trait UniformSampled: Sized + PartialOrd {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl UniformSampled for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        // Floating rounding can land exactly on `hi`; keep the half-open
        // contract (callers rely on `gen_range(MIN_POSITIVE..1.0) > 0`).
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v.max(lo)
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 for every span used here.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
            let n = rng.gen_range(3u32..17);
            assert!((3..17).contains(&n));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }
}
