//! # phasefold-tracer
//!
//! Extrae/MPItrace stand-in for the `phasefold` workspace: records the
//! **minimal-instrumentation + coarse-grain-sampling** signal that
//! *"Identifying Code Phases Using Piece-Wise Linear Regressions"* (Servat
//! et al., IPDPS 2014) builds on.
//!
//! Given the simulated ground-truth timelines of `phasefold-simapp`, the
//! tracer emits per-rank [`phasefold_model::Trace`] streams containing:
//!
//! * **instrumented communication boundaries** with exact full counter
//!   reads (delimiting computation bursts),
//! * **function enter/exit markers** (the "minimal instrumentation"),
//! * **periodic samples** with jitter, carrying accumulated counters — the
//!   full set or a multiplexed subset — and captured call stacks.
//!
//! An explicit [`config::OverheadConfig`] dilates recorded timestamps so
//! the perturbation-vs-frequency trade-off (experiment E5) is measurable.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod trace_run;

pub use config::{MultiplexMode, OverheadConfig, TracerConfig};
pub use trace_run::{trace_run, trace_run_with_overhead, OverheadReport};
