//! Ground truth for evaluation: the *true* phase structure of every
//! computation burst.
//!
//! The paper validates phase detection by expert reading of known codes; a
//! simulator can do better. From the **noiseless** script we derive, for
//! each distinct burst shape (*template*), the exact phase boundaries (as
//! fractions of the burst) and per-phase counter rates. Experiments compare
//! detected breakpoints/slopes against these.

use crate::engine::{ComputeSpec, ScriptItem};
use phasefold_model::{CounterSet, RegionId};
use std::collections::HashMap;

/// One true phase inside a burst template.
#[derive(Debug, Clone, PartialEq)]
pub struct TruePhase {
    /// Phase start as a fraction of the burst duration.
    pub frac_start: f64,
    /// Phase end as a fraction of the burst duration.
    pub frac_end: f64,
    /// Kernel region executing during the phase.
    pub region: RegionId,
    /// Hot source line.
    pub line: u32,
    /// Stationary counter rates (per second).
    pub rates: CounterSet,
}

/// The exact structure of one distinct burst shape.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstTemplate {
    /// Phases in execution order, covering `[0, 1]` without gaps.
    pub phases: Vec<TruePhase>,
    /// Noiseless burst duration in seconds.
    pub total_dur_s: f64,
    /// Counter totals over the burst.
    pub total_counters: CounterSet,
    /// How many bursts of one rank's run follow this template.
    pub occurrences: usize,
}

impl BurstTemplate {
    /// Interior phase boundaries (fractions), i.e. the breakpoints a
    /// perfect detector should report.
    pub fn boundaries(&self) -> Vec<f64> {
        self.phases
            .iter()
            .skip(1)
            .map(|p| p.frac_start)
            .collect()
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// True normalised accumulated value of `counter` at burst fraction
    /// `x ∈ [0, 1]` — the curve folding reconstructs.
    pub fn normalized_accumulation(&self, counter: phasefold_model::CounterKind, x: f64) -> f64 {
        let total = self.total_counters[counter];
        if total <= 0.0 {
            return 0.0;
        }
        let x = x.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for p in &self.phases {
            if x <= p.frac_start {
                break;
            }
            let seg_end = x.min(p.frac_end);
            let frac_of_phase = (seg_end - p.frac_start) / (p.frac_end - p.frac_start).max(1e-300);
            let phase_total =
                p.rates[counter] * (p.frac_end - p.frac_start) * self.total_dur_s;
            acc += phase_total * frac_of_phase;
        }
        acc / total
    }
}

/// Ground truth of a whole run (per rank it is identical: SPMD, noiseless).
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Distinct burst templates.
    pub templates: Vec<BurstTemplate>,
    /// Template index of each burst, in burst-ordinal order.
    pub burst_templates: Vec<usize>,
}

impl GroundTruth {
    /// Extracts the ground truth from a **noiseless** script.
    pub fn from_script(script: &[ScriptItem]) -> GroundTruth {
        let mut gt = GroundTruth::default();
        let mut key_to_template: HashMap<Vec<(u32, u64)>, usize> = HashMap::new();
        let mut current: Vec<&ComputeSpec> = Vec::new();
        // The prologue before the first comm is not a burst (no leading
        // boundary read); mirror burst extraction and skip it.
        let mut seen_comm = false;
        for item in script {
            match item {
                ScriptItem::Compute(spec) => {
                    if seen_comm {
                        current.push(spec);
                    }
                }
                ScriptItem::Comm { .. } => {
                    if seen_comm && !current.is_empty() {
                        gt.record_burst(&current, &mut key_to_template);
                    }
                    current.clear();
                    seen_comm = true;
                }
                ScriptItem::Enter(_) | ScriptItem::Exit(_) => {}
            }
        }
        gt
    }

    fn record_burst(
        &mut self,
        specs: &[&ComputeSpec],
        key_to_template: &mut HashMap<Vec<(u32, u64)>, usize>,
    ) {
        let key: Vec<(u32, u64)> = specs
            .iter()
            .map(|s| (s.region.0, s.dur_s.to_bits()))
            .collect();
        if let Some(&idx) = key_to_template.get(&key) {
            self.templates[idx].occurrences += 1;
            self.burst_templates.push(idx);
            return;
        }
        let total_dur: f64 = specs.iter().map(|s| s.dur_s).sum();
        let mut total_counters = CounterSet::ZERO;
        for s in specs {
            total_counters.add_assign(&s.counters);
        }
        let mut phases = Vec::with_capacity(specs.len());
        let mut acc = 0.0;
        for s in specs {
            let frac_start = acc / total_dur;
            acc += s.dur_s;
            let frac_end = acc / total_dur;
            phases.push(TruePhase {
                frac_start,
                frac_end,
                region: s.region,
                line: s.line,
                rates: s.counters.scale(1.0 / s.dur_s.max(1e-300)),
            });
        }
        // Merge adjacent phases of the same region (e.g. a kernel split
        // across loop iterations inside one burst): they are one phase to
        // any detector.
        let phases = merge_adjacent(phases);
        let idx = self.templates.len();
        key_to_template.insert(key, idx);
        self.templates.push(BurstTemplate {
            phases,
            total_dur_s: total_dur,
            total_counters,
            occurrences: 1,
        });
        self.burst_templates.push(idx);
    }

    /// The template most bursts follow (the "main iteration body"), if any.
    pub fn dominant_template(&self) -> Option<&BurstTemplate> {
        self.templates.iter().max_by_key(|t| t.occurrences)
    }
}

fn merge_adjacent(phases: Vec<TruePhase>) -> Vec<TruePhase> {
    let mut out: Vec<TruePhase> = Vec::with_capacity(phases.len());
    for p in phases {
        if let Some(last) = out.last_mut() {
            if last.region == p.region && (last.frac_end - p.frac_start).abs() < 1e-12 {
                // Weighted-average the rates (they are identical for a
                // deterministic kernel, but stay correct in general).
                let w1 = last.frac_end - last.frac_start;
                let w2 = p.frac_end - p.frac_start;
                let total = (w1 + w2).max(1e-300);
                last.rates = last
                    .rates
                    .scale(w1 / total)
                    .add(&p.rates.scale(w2 / total));
                last.frac_end = p.frac_end;
                continue;
            }
        }
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unroll;
    use crate::kernel::{CpuConfig, KernelProfile};
    use crate::noise::NoiseConfig;
    use crate::program::ProgramBuilder;
    use phasefold_model::{CommKind, CounterKind};

    fn script_for(phase_ipcs: &[f64], loops: u64) -> Vec<ScriptItem> {
        let mut b = ProgramBuilder::new("gt");
        let mut kernels = Vec::new();
        for (i, &ipc) in phase_ipcs.iter().enumerate() {
            let mut prof = KernelProfile::balanced();
            prof.base_ipc = ipc;
            prof.working_set_bytes = 256.0; // negligible cache effect
            prof.branch_misp_rate = 0.0; // effective IPC == base IPC
            kernels.push(b.kernel(&format!("k{i}"), "gt.c", 10 + i as u32, 10_000, prof));
        }
        kernels.push(b.comm(CommKind::Collective, 8.0));
        let lp = b.loop_block("it", "gt.c", 5, loops, ProgramBuilder::seq(kernels));
        let main = b.function("main", "gt.c", 1, lp);
        let p = b.finish(main);
        unroll(&p, &CpuConfig::default(), NoiseConfig::NONE, 0)
    }

    #[test]
    fn repeated_bursts_collapse_to_one_template() {
        let gt = GroundTruth::from_script(&script_for(&[2.0, 1.0], 10));
        // First burst is skipped (prologue); 9 bursts recorded.
        assert_eq!(gt.templates.len(), 1);
        assert_eq!(gt.burst_templates.len(), 9);
        assert_eq!(gt.templates[0].occurrences, 9);
    }

    #[test]
    fn phases_cover_unit_interval() {
        let gt = GroundTruth::from_script(&script_for(&[2.0, 0.5, 1.5], 4));
        let t = gt.dominant_template().unwrap();
        assert_eq!(t.num_phases(), 3);
        assert_eq!(t.phases[0].frac_start, 0.0);
        assert!((t.phases.last().unwrap().frac_end - 1.0).abs() < 1e-12);
        for w in t.phases.windows(2) {
            assert!((w[0].frac_end - w[1].frac_start).abs() < 1e-12);
        }
    }

    #[test]
    fn boundary_positions_reflect_ipc_ratio() {
        // Two kernels, same instructions; IPC 2.0 vs 1.0 means durations
        // 1:2, so the boundary sits at 1/3.
        let gt = GroundTruth::from_script(&script_for(&[2.0, 1.0], 3));
        let t = gt.dominant_template().unwrap();
        let bounds = t.boundaries();
        assert_eq!(bounds.len(), 1);
        // Residual cache-model noise shifts the boundary by < 0.1 %.
        assert!((bounds[0] - 1.0 / 3.0).abs() < 1e-3, "{bounds:?}");
    }

    #[test]
    fn rates_match_profiles() {
        let gt = GroundTruth::from_script(&script_for(&[2.0, 1.0], 3));
        let t = gt.dominant_template().unwrap();
        let cpu = CpuConfig::default();
        // IPC 2.0 kernel -> instruction rate = 2.0 * clock.
        let r0 = t.phases[0].rates[CounterKind::Instructions];
        assert!((r0 - 2.0 * cpu.clock_hz).abs() < 1e-2 * r0, "r0 = {r0}");
        let r1 = t.phases[1].rates[CounterKind::Instructions];
        assert!((r1 - 1.0 * cpu.clock_hz).abs() < 1e-2 * r1, "r1 = {r1}");
    }

    #[test]
    fn normalized_accumulation_is_piecewise_linear_and_monotone() {
        let gt = GroundTruth::from_script(&script_for(&[2.0, 0.5], 3));
        let t = gt.dominant_template().unwrap();
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let y = t.normalized_accumulation(CounterKind::Instructions, x);
            assert!(y >= prev - 1e-12);
            prev = y;
        }
        assert!((t.normalized_accumulation(CounterKind::Instructions, 1.0) - 1.0).abs() < 1e-9);
        assert_eq!(t.normalized_accumulation(CounterKind::Instructions, 0.0), 0.0);
    }

    #[test]
    fn adjacent_same_region_phases_merge() {
        // One kernel twice in a row inside the burst -> single phase.
        let mut b = ProgramBuilder::new("m");
        let prof = KernelProfile::balanced();
        let k1 = b.kernel("k", "m.c", 1, 1000, prof);
        let k2 = b.kernel("k", "m.c", 1, 1000, prof);
        let c = b.comm(CommKind::Collective, 0.0);
        let lp = b.loop_block("it", "m.c", 2, 4, ProgramBuilder::seq(vec![k1, k2, c]));
        let main = b.function("main", "m.c", 1, lp);
        let p = b.finish(main);
        let script = unroll(&p, &CpuConfig::default(), NoiseConfig::NONE, 0);
        let gt = GroundTruth::from_script(&script);
        assert_eq!(gt.dominant_template().unwrap().num_phases(), 1);
    }

    #[test]
    fn empty_script_is_empty_truth() {
        let gt = GroundTruth::from_script(&[]);
        assert!(gt.templates.is_empty());
        assert!(gt.dominant_template().is_none());
    }
}
