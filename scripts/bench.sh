#!/usr/bin/env bash
# Performance regression gate.
#
# Builds the workspace in release mode, runs the E-PERF baseline experiment
# (`exp_perf_baseline`), and compares the fresh timings against the committed
# baseline `BENCH_pipeline.json` at the repository root. Fails (exit 1) if
# any tracked timing regressed by more than 15 %, if the pruned DP diverged
# from its quadratic reference, or — on multi-core hosts — if the parallel
# scaling curve shows a slowdown at any measured thread count.
#
# Usage:
#   scripts/bench.sh            # compare against committed baseline
#   scripts/bench.sh --update   # run and overwrite the committed baseline
#   scripts/bench.sh --quick    # fast correctness-focused pass (tier-1):
#                               # small inputs, no baseline ms comparison,
#                               # gates only bit-identity + speedup + scaling
#
# Needs only cargo + POSIX awk/grep; the JSON is written one scalar per line
# exactly so this script can stay dependency-free.

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_pipeline.json
FRESH=$(mktemp /tmp/bench_pipeline.XXXXXX.json)
trap 'rm -f "$FRESH"' EXIT
THRESHOLD=1.15
# Per-thread-count scaling gate: parallel must never be slower than
# sequential beyond run-to-run jitter (min-of-two still wobbles a few %).
SCALING_SLACK=1.03

echo "== release build =="
cargo build --release -p phasefold-bench

echo "== running exp_perf_baseline =="
MODE=full
if [[ "${1:-}" == "--quick" ]]; then
    MODE=quick
fi

if [[ "${1:-}" == "--update" ]]; then
    cargo run --release -q -p phasefold-bench --bin exp_perf_baseline -- "$BASELINE"
    echo "baseline updated: $BASELINE"
    exit 0
fi

if [[ "$MODE" == "quick" ]]; then
    cargo run --release -q -p phasefold-bench --bin exp_perf_baseline -- --quick "$FRESH"
else
    cargo run --release -q -p phasefold-bench --bin exp_perf_baseline -- "$FRESH"
fi

# Extracts the value of a scalar `"key": value` line; for keys inside the
# pipeline array, pass the trace label as the second argument.
extract() {
    local key=$1 trace=${2:-} file=$3
    if [[ -n "$trace" ]]; then
        grep "\"trace\": \"$trace\"" "$file" \
            | sed -n "s/.*\"$key\": \([0-9.]*\).*/\1/p"
    else
        grep "\"$key\":" "$file" | head -1 | sed "s/.*\"$key\": \([0-9.truefalse]*\),*/\1/"
    fi
}

fail=0
check() {
    local label=$1 base=$2 fresh=$3
    if [[ -z "$base" || -z "$fresh" ]]; then
        echo "?? $label: missing measurement (base='$base' fresh='$fresh')"
        fail=1
        return
    fi
    awk -v b="$base" -v f="$fresh" -v t="$THRESHOLD" -v l="$label" 'BEGIN {
        ratio = (b > 0) ? f / b : 1;
        status = (ratio > t) ? "REGRESSED" : "ok";
        printf "%-22s base %10.3f ms   now %10.3f ms   ratio %.3f   %s\n", l, b, f, ratio, status;
        exit (ratio > t) ? 1 : 0;
    }' || fail=1
}

# --- correctness + headline gates (both modes) ---------------------------

# The pruned DP must still match the quadratic reference bit-for-bit
# (the binary asserts this itself, but make the gate explicit).
identical=$(extract segdp_identical "" "$FRESH")
if [[ "$identical" != "true" ]]; then
    echo "segdp_identical = $identical — pruned DP diverged from reference"
    fail=1
fi

# And the headline speedup must not collapse below target. Quick mode runs
# a 5x smaller n, and the pruning win grows with n, so its floor is lower.
SPEEDUP_TARGET=10.0
[[ "$MODE" == "quick" ]] && SPEEDUP_TARGET=4.0
awk -v s="$(extract segdp_speedup "" "$FRESH")" -v t="$SPEEDUP_TARGET" 'BEGIN {
    printf "segdp speedup vs quadratic: %.1fx (target >= %.0fx)\n", s, t;
    exit (s >= t) ? 0 : 1;
}' || fail=1

# --- parallel scaling gate (both modes; honest on 1-core hosts) ----------

host_cores=$(extract host_cores "" "$FRESH")
scaling_measured=$(extract scaling_measured "" "$FRESH")
if [[ "$scaling_measured" == "true" ]]; then
    echo "== scaling curve gate (par <= seq at every thread count) =="
    seq1_ms=$(grep '"threads": 1,' "$FRESH" | head -1 | sed -n 's/.*"ms": \([0-9.]*\).*/\1/p')
    while read -r line; do
        t=$(sed -n 's/.*"threads": \([0-9]*\).*/\1/p' <<<"$line")
        ms=$(sed -n 's/.*"ms": \([0-9.]*\).*/\1/p' <<<"$line")
        sp=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' <<<"$line")
        [[ -z "$t" || -z "$ms" ]] && continue
        awk -v t="$t" -v ms="$ms" -v sp="$sp" -v seq="$seq1_ms" -v slack="$SCALING_SLACK" 'BEGIN {
            ok = (ms <= seq * slack);
            printf "  threads=%-2d  %10.3f ms   speedup %.2fx   %s\n", t, ms, sp, ok ? "ok" : "SLOWER THAN SEQUENTIAL";
            exit ok ? 0 : 1;
        }' || fail=1
        # >= 1.5x at 4 threads when the host actually has >= 4 cores.
        if [[ "$t" == "4" && -n "$host_cores" && "$host_cores" -ge 4 ]]; then
            awk -v sp="$sp" 'BEGIN {
                printf "  4-thread speedup gate: %.2fx (target >= 1.5x)\n", sp;
                exit (sp >= 1.5) ? 0 : 1;
            }' || fail=1
        fi
    done < <(grep '"threads": [0-9]*, "ms"' "$FRESH")
else
    echo "scaling: not measured (host has ${host_cores:-1} core); parallel gates skipped honestly"
fi

# --- baseline ms comparison (full mode only) -----------------------------

if [[ "$MODE" == "quick" ]]; then
    if [[ $fail -ne 0 ]]; then
        echo "FAIL: quick bench gate"
        exit 1
    fi
    echo "OK: quick bench gate passed (no baseline ms comparison in --quick)"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    cp "$FRESH" "$BASELINE"
    echo "no committed baseline found; wrote initial $BASELINE"
    exit 0
fi

# Compare the recorded machine shape first. A baseline captured with a
# different thread count, build profile, or mode is not comparable
# ms-for-ms, so mismatches WARN instead of letting the timing gate fail
# spuriously.
meta_line() {
    grep "\"$1\":" "$2" | head -1 | sed 's/^ *//; s/,$//'
}
base_threads=$(extract threads "" "$BASELINE")
fresh_threads=$(extract threads "" "$FRESH")
if [[ -z "$base_threads" ]]; then
    echo "warning: $BASELINE has no meta block (pre-meta schema); timings may not be comparable"
elif [[ "$base_threads" != "$fresh_threads" ]]; then
    echo "warning: thread count mismatch (baseline: $base_threads, host: $fresh_threads);" \
         "timings are not apples-to-apples — regenerate with scripts/bench.sh --update"
fi
base_profile=$(meta_line build_profile "$BASELINE")
fresh_profile=$(meta_line build_profile "$FRESH")
if [[ -n "$base_profile" && "$base_profile" != "$fresh_profile" ]]; then
    echo "warning: build profile mismatch (baseline: $base_profile, fresh: $fresh_profile)"
fi
base_mode=$(meta_line '"mode"' "$BASELINE" || true)
fresh_mode=$(meta_line '"mode"' "$FRESH" || true)
if [[ -n "$base_mode" && "$base_mode" != "$fresh_mode" ]]; then
    echo "warning: mode mismatch (baseline: $base_mode, fresh: $fresh_mode); skipping ms comparison"
else
    echo "== comparing against $BASELINE (fail threshold: >15% slower) =="
    check "segdp_pruned" \
        "$(extract segdp_pruned_ms "" "$BASELINE")" \
        "$(extract segdp_pruned_ms "" "$FRESH")"
    for trace in small medium large; do
        base_seq=$(extract seq_ms "$trace" "$BASELINE")
        fresh_seq=$(extract seq_ms "$trace" "$FRESH")
        if [[ -z "$base_seq" && -z "$fresh_seq" ]]; then
            continue # trace not present in this mode
        fi
        check "pipeline_${trace}_seq" "$base_seq" "$fresh_seq"
    done
fi

# Self-instrumentation must stay cheap: the medium pipeline with obs
# recording enabled may cost at most 5% over the uninstrumented run.
obs_ratio=$(extract obs_overhead_ratio "" "$FRESH")
if [[ -z "$obs_ratio" ]]; then
    echo "?? obs_overhead_ratio: missing from fresh run"
    fail=1
else
    awk -v r="$obs_ratio" 'BEGIN {
        status = (r < 1.05) ? "ok" : "TOO SLOW";
        printf "obs instrumentation overhead: ratio %.4f (gate < 1.05)   %s\n", r, status;
        exit (r < 1.05) ? 0 : 1;
    }' || fail=1
fi

if [[ $fail -ne 0 ]]; then
    echo "FAIL: performance regression detected"
    exit 1
fi
echo "OK: no regression beyond threshold"
