//! Deliberately slow, obviously-correct reference kernels.
//!
//! Each function here re-derives its answer from the mathematical
//! definition with the dumbest adequate algorithm — exhaustive recursion,
//! all-pairs distance scans, linear record walks — sharing *no* code,
//! prefix tricks, or pruning with the production crates. Asymptotic cost
//! is irrelevant: these only ever see fuzz-sized inputs.

use phasefold_cluster::Clustering;
use phasefold_folding::{ClusterFold, FoldConfig, FoldedPoint, FoldedProfile};
use phasefold_model::{Burst, CounterKind, Record, Trace, NUM_COUNTERS};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Exhaustive segmented least squares
// ---------------------------------------------------------------------------

/// Weighted least-squares SSE of one straight line fitted to the inclusive
/// point range `i..=j`, computed directly from means and residuals (no
/// prefix sums).
pub fn line_sse_direct(xs: &[f64], ys: &[f64], weights: Option<&[f64]>, i: usize, j: usize) -> f64 {
    let w = |k: usize| weights.map_or(1.0, |w| w[k]);
    let sw: f64 = (i..=j).map(w).sum();
    if sw <= 0.0 {
        return 0.0;
    }
    let mx: f64 = (i..=j).map(|k| w(k) * xs[k]).sum::<f64>() / sw;
    let my: f64 = (i..=j).map(|k| w(k) * ys[k]).sum::<f64>() / sw;
    let sxx: f64 = (i..=j).map(|k| w(k) * (xs[k] - mx) * (xs[k] - mx)).sum();
    let sxy: f64 = (i..=j).map(|k| w(k) * (xs[k] - mx) * (ys[k] - my)).sum();
    let slope = if sxx > 1e-300 { sxy / sxx } else { 0.0 };
    let sse: f64 = (i..=j)
        .map(|k| {
            let r = ys[k] - (my + slope * (xs[k] - mx));
            w(k) * r * r
        })
        .sum();
    sse.max(0.0)
}

/// Optimal SSE of covering `xs[start..]` with exactly `m` segments of at
/// least `min_points` points each, by exhaustive recursion over the first
/// segment's end. Returns `None` when infeasible.
fn best_sse_from(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    start: usize,
    m: usize,
    min_points: usize,
) -> Option<f64> {
    let n = xs.len();
    if m == 1 {
        return (n - start >= min_points).then(|| line_sse_direct(xs, ys, weights, start, n - 1));
    }
    let mut best: Option<f64> = None;
    // First segment covers start..=end; the rest recurses.
    for end in (start + min_points - 1)..n {
        let Some(tail) = best_sse_from(xs, ys, weights, end + 1, m - 1, min_points) else {
            continue;
        };
        let total = line_sse_direct(xs, ys, weights, start, end) + tail;
        if best.is_none_or(|b| total < b) {
            best = Some(total);
        }
    }
    best
}

/// Exhaustive optimum: `(m, best_sse)` for every reachable segment count
/// `m = 1..=m_max`, where `m_max` replicates the production row count
/// (`min(max_segments, max(n / min_points, 1))`).
pub fn exhaustive_segmentations(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    max_segments: usize,
    min_points: usize,
) -> Vec<(usize, f64)> {
    let n = xs.len();
    if n == 0 || max_segments == 0 {
        return Vec::new();
    }
    let min_points = min_points.max(1);
    let m_max = max_segments.min((n / min_points).max(1)).max(1);
    (1..=m_max)
        .map(|m| {
            let sse = best_sse_from(xs, ys, weights, 0, m, min_points).unwrap_or(f64::INFINITY);
            (m, sse)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Brute-force DBSCAN
// ---------------------------------------------------------------------------

/// Order-free DBSCAN ground truth. Core points and the partition of core
/// points into density-connected components are canonical; *border* points
/// (non-core within ε of a core) may be claimed by any adjacent component
/// depending on visit order, so the reference records only their
/// adjacency, not an owner — exactly the freedom Ester et al. leave open.
#[derive(Debug, Clone)]
pub struct BruteDbscan {
    /// Is point `i` a core point (≥ `min_pts` neighbours within ε,
    /// self included)?
    pub core: Vec<bool>,
    /// Component id of each *core* point (`None` for non-core).
    pub component: Vec<Option<usize>>,
    /// Number of density-connected core components (= clusters).
    pub num_components: usize,
    /// Component ids adjacent to each point (within ε of a core member);
    /// empty = the point must be noise.
    pub adjacent: Vec<Vec<usize>>,
}

/// All-pairs O(n²) DBSCAN on 2-D points, matching the kd-tree path's
/// `dist ≤ ε` (inclusive) neighbourhood convention.
pub fn brute_dbscan(points: &[[f64; 2]], eps: f64, min_pts: usize) -> BruteDbscan {
    let n = points.len();
    let eps2 = eps * eps;
    let close = |a: usize, b: usize| {
        let dx = points[a][0] - points[b][0];
        let dy = points[a][1] - points[b][1];
        dx * dx + dy * dy <= eps2
    };
    let core: Vec<bool> = (0..n)
        .map(|i| (0..n).filter(|&j| close(i, j)).count() >= min_pts)
        .collect();

    // Connected components of the core-core ε-graph, by flood fill.
    let mut component: Vec<Option<usize>> = vec![None; n];
    let mut num_components = 0usize;
    for i in 0..n {
        if !core[i] || component[i].is_some() {
            continue;
        }
        let id = num_components;
        num_components += 1;
        let mut stack = vec![i];
        component[i] = Some(id);
        while let Some(p) = stack.pop() {
            for q in 0..n {
                if core[q] && component[q].is_none() && close(p, q) {
                    component[q] = Some(id);
                    stack.push(q);
                }
            }
        }
    }

    let adjacent: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let mut ids: Vec<usize> = (0..n)
                .filter(|&j| core[j] && close(i, j))
                .filter_map(|j| component[j])
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        })
        .collect();

    BruteDbscan { core, component, num_components, adjacent }
}

// ---------------------------------------------------------------------------
// Naive re-fold
// ---------------------------------------------------------------------------

/// Naive re-implementation of `folding::fold_trace`, straight from the
/// paper's definition: for every clustered burst, walk the rank's records
/// *linearly* (no binary search), take the samples inside `[start, end)`,
/// normalise time within the burst and counters against the burst totals,
/// prune duration outliers by the median/MAD rule, and pool.
///
/// The arithmetic deliberately mirrors the spec formulas term by term, so
/// the comparison against the production fold can demand **bit equality**
/// on every folded point (the production path computes the same expressions
/// in the same order; only its *search* structure is cleverer).
pub fn naive_refold(
    trace: &Trace,
    bursts: &[Burst],
    clustering: &Clustering,
    config: &FoldConfig,
) -> Vec<ClusterFold> {
    // (x, absolute counter readings, has_stack)
    type NaiveSample = (f64, Vec<(CounterKind, f64)>, bool);
    struct NaiveInstance {
        burst_index: usize,
        dur_s: f64,
        samples: Vec<NaiveSample>,
    }

    let mut out = Vec::new();
    for cluster in 0..clustering.num_clusters {
        // Collect instances in burst order.
        let mut instances: Vec<NaiveInstance> = Vec::new();
        for (i, burst) in bursts.iter().enumerate() {
            if clustering.labels[i] != Some(cluster) {
                continue;
            }
            let Some(stream) = trace.rank(burst.id.rank) else { continue };
            let mut samples = Vec::new();
            for record in stream.records() {
                let Record::Sample(s) = record else { continue };
                if s.time < burst.start || s.time >= burst.end {
                    continue;
                }
                // x = (t − start) / (end − start), clamped — the
                // definition of folding's normalised time axis.
                let span = (burst.end.0 - burst.start.0) as f64;
                let x = ((s.time.0.saturating_sub(burst.start.0)) as f64 / span).clamp(0.0, 1.0);
                let readings: Vec<(CounterKind, f64)> = s.counters.iter().collect();
                samples.push((x, readings, !s.callstack.is_empty()));
            }
            instances.push(NaiveInstance {
                burst_index: i,
                dur_s: burst.duration().as_secs_f64(),
                samples,
            });
        }

        // Median/MAD duration pruning, re-derived from the definition.
        let (kept, pruned_count) = if instances.len() < 4 {
            (instances, 0)
        } else {
            let mut durations: Vec<f64> = instances.iter().map(|i| i.dur_s).collect();
            durations.sort_by(f64::total_cmp);
            let median = durations[durations.len() / 2];
            let mut deviations: Vec<f64> = durations.iter().map(|d| (d - median).abs()).collect();
            deviations.sort_by(f64::total_cmp);
            let mad = deviations[deviations.len() / 2];
            let scale = mad.max(median * 1e-3);
            if scale <= 0.0 {
                (instances, 0)
            } else {
                let threshold = config.mad_k * scale;
                let before = instances.len();
                let kept: Vec<NaiveInstance> = instances
                    .into_iter()
                    .filter(|inst| (inst.dur_s - median).abs() <= threshold)
                    .collect();
                let pruned = before - kept.len();
                (kept, pruned)
            }
        };
        if kept.len() < config.min_instances {
            continue;
        }

        // Pool into per-counter profiles.
        let mut profiles: [FoldedProfile; NUM_COUNTERS] = Default::default();
        let mut stacks: Vec<(f64, Arc<phasefold_model::CallStack>)> = Vec::new();
        let mut total_dur = 0.0f64;
        let mut totals_sum = [0.0f64; NUM_COUNTERS];
        let mut samples = 0usize;
        for (ordinal, inst) in kept.iter().enumerate() {
            let burst = &bursts[inst.burst_index];
            total_dur += inst.dur_s;
            for (i, t) in totals_sum.iter_mut().enumerate() {
                *t += burst.counters.as_array()[i];
            }
            for (x, readings, has_stack) in &inst.samples {
                samples += 1;
                if *has_stack {
                    stacks.push((*x, Arc::new(phasefold_model::CallStack::empty())));
                }
                for (kind, absolute) in readings {
                    let total = burst.counters[*kind];
                    if total <= 0.0 {
                        continue;
                    }
                    // y = (reading − start) / total, clamped to [0, 1].
                    let y = ((absolute - burst.start_counters[*kind]) / total).clamp(0.0, 1.0);
                    profiles[kind.index()].push(FoldedPoint {
                        x: *x,
                        y,
                        instance: ordinal as u32,
                    });
                }
            }
        }
        let n = kept.len().max(1) as f64;
        for (i, p) in profiles.iter_mut().enumerate() {
            p.mean_total = totals_sum[i] / n;
        }
        out.push(ClusterFold {
            cluster,
            profiles,
            stacks,
            mean_duration_s: total_dur / n,
            instances_used: kept.len(),
            instances_pruned: pruned_count,
            samples,
        });
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_matches_hand_case() {
        // Two perfect lines meeting at x = 3.5: 2 segments fit exactly.
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| if x < 3.5 { x } else { 7.0 - x }).collect();
        let rows = exhaustive_segmentations(&xs, &ys, None, 3, 2);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].1 > 1.0, "one line fits a tent poorly");
        assert!(rows[1].1 < 1e-18, "two segments fit exactly, got {}", rows[1].1);
    }

    #[test]
    fn brute_dbscan_matches_doc_example() {
        let mut points: Vec<[f64; 2]> = Vec::new();
        for i in 0..10 {
            points.push([0.1 + 0.001 * i as f64, 0.1]);
            points.push([0.9 + 0.001 * i as f64, 0.9]);
        }
        points.push([0.5, -3.0]);
        let brute = brute_dbscan(&points, 0.05, 3);
        assert_eq!(brute.num_components, 2);
        assert!(!brute.core[20]);
        assert!(brute.adjacent[20].is_empty(), "outlier has no core neighbour");
    }
}
