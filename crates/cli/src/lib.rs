//! # phasefold-cli
//!
//! Command-line front end over the `phasefold` workspace. Commands:
//!
//! ```text
//! phasefold workloads
//! phasefold simulate <workload> [--ranks N] [--seed S] [--noise none|quiet|noisy]
//!                     [--period-ms P] [--imbalance F] --out trace.prv
//! phasefold analyze <trace.prv> [--bootstrap] [--fault-policy lenient|strict]
//! phasefold chaos <trace.prv> --out corrupted.prv [--seed N] [--rate R]
//! phasefold fingerprint <trace.prv> --out fp.pffp [--build ID]
//! phasefold regress-check <base> <cand> [--threshold R] [--json]
//! phasefold period <trace.prv> [--rank R] [--bins B]
//! phasefold reconstruct <trace.prv> [--rank R] [--points N]
//! phasefold serve [--addr H:P] [--workers N] [--queue-depth N] [--cache-dir D]
//! ```
//!
//! All output goes to the supplied writer (`String` in tests, stdout in the
//! binary), so every command is unit-testable end-to-end.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
mod commands;

use std::fmt;

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage (unknown command/option, missing argument).
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Trace could not be parsed.
    Trace(phasefold_model::ModelError),
    /// A typed analysis fault surfaced under `--fault-policy strict`.
    Fault(phasefold_model::Fault),
    /// Anything else (workload unknown, analysis empty, …).
    Other(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "io: {e}"),
            CliError::Trace(e) => write!(f, "trace: {e}"),
            CliError::Fault(e) => write!(f, "fault: {e}"),
            CliError::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Io(e)
    }
}

impl From<phasefold_model::ModelError> for CliError {
    fn from(e: phasefold_model::ModelError) -> CliError {
        CliError::Trace(e)
    }
}

impl From<phasefold_model::Fault> for CliError {
    fn from(e: phasefold_model::Fault) -> CliError {
        CliError::Fault(e)
    }
}

/// Process exit code for an error: `2` for usage errors (bad flags,
/// missing arguments — the caller's fault), `1` for everything else
/// (I/O, defective traces, analysis faults — the input's fault). Keeping
/// the mapping here, not in `main`, makes it unit-testable.
pub fn exit_code(error: &CliError) -> u8 {
    match error {
        CliError::Usage(_) => 2,
        CliError::Io(_) | CliError::Trace(_) | CliError::Fault(_) | CliError::Other(_) => 1,
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
usage: phasefold <command> [options]

commands:
  workloads                         list available simulated workloads
  simulate <workload> --out F.prv   simulate + trace a workload to a file
      [--ranks N] [--seed S] [--noise none|quiet|noisy]
      [--period-ms P] [--imbalance F] [--optimized]
  analyze <F.prv>                   phase analysis report of a trace
      [--bootstrap] [--markdown] [--threads N (0 = auto)]
      [--parallel-threshold N (folded samples; below it model building
       runs sequentially regardless of --threads; 0 = always parallel)]
      [--fault-policy lenient|strict]
      [--profile out.json] [--metrics out.json] [--prom out.prom]
      [--log-level L]
  chaos <F.prv> --out G.prv         deterministically corrupt a trace
      [--seed N] [--rate R (all corruptors)]
      [--drop R] [--truncate R] [--shuffle R] [--saturate R] [--nan R]
  info <F.prv>                      trace summary statistics + region table
  compare <base.prv> <cand.prv>     per-phase metric deltas between two runs
      [--json (fingerprint verdict, same shape as POST /v1/compare)]
      [--threshold R (relative growth that counts as regression, 0.1)]
      [--threads N (0 = auto)] [--parallel-threshold N]
      [--profile out.json] [--metrics out.json] [--prom out.prom]
      [--log-level L]
  fingerprint <F.prv> --out G.pffp  condense a trace into a versioned
      phase fingerprint (the per-build artifact CI stores)
      [--build ID (default: trace file stem)] [--trace-id ID]
      [--threads N] [--parallel-threshold N]
      [--fault-policy lenient|strict]
  regress-check <base> <cand>       deploy gate: exits non-zero iff the
      candidate run regressed vs the baseline; each argument is a PRV
      trace or a .pffp fingerprint
      [--threshold R (default 0.1 = 10%)] [--json]
      [--threads N] [--parallel-threshold N]
  period <F.prv>                    detect the iterative period
      [--rank R] [--bins B]
  reconstruct <F.prv>               unfolded fine-grain rate timeline (CSV)
      [--rank R] [--points N]
  selfcheck                         profile the analysis stack on a canned
      workload: stage timings + pool utilization + kernel counters
      [--threads N] [--parallel-threshold N] [--iterations N] [--ranks N]
      [--profile out.json] [--metrics out.json] [--prom out.prom]
      [--log-level L]
  serve                             analysis daemon (HTTP/1.1 on std::net)
      [--addr H:P (default 127.0.0.1:8191, port 0 = ephemeral)]
      [--threads N (0 = auto)] [--workers N] [--queue-depth N]
      [--cache-entries N] [--cache-dir DIR]
      [--fault-policy lenient|strict]
      [--port-file F (bound address is written here)]
      [--max-seconds S (0 = until SIGTERM/SIGINT or POST /admin/shutdown)]
      [--access-log F (structured JSON request log, append mode)]
      [--trace-sample-rate R (share of requests traced + logged, default 1)]
      [--state-dir DIR (session checkpoints + WALs; restored on start)]
      [--durability none|checkpoint|wal (what an ack promises, default none)]
      [--checkpoint-every N (accepted records between checkpoints, 4096)]
      [--max-sessions N (resident streaming sessions, 429 past it, 1024)]
      [--session-ttl S (evict sessions idle this many seconds, 0 = never)]
      [--fleet-dir DIR (versioned fingerprint store; enables
       POST /v1/fingerprints and POST /v1/compare)]
      [--fleet-max-fingerprints N (store eviction bound, 256)]
      [--regress-threshold R (default verdict threshold, 0.08)]
      [--event-shards N (event-loop shards, 0 = auto from cores)]
      [--cache-shards N (result-cache shards, 0 = auto from cores)]
  verify                            differential + metamorphic correctness
      gate: fuzz seeded random traces against slow reference kernels and
      paper-derived invariants; replay the minimized regression corpus
      [--seeds N (default 50, 0 = corpus only)] [--start S]
      [--corpus DIR (replay checked-in cases)] [--no-shrink]
      [--write-corpus DIR (regenerate the curated corpus, then exit)]

observability:
  --profile out.json    Chrome-trace/Perfetto span export of the run
                        (open in chrome://tracing or ui.perfetto.dev)
  --metrics out.json    JSON dump of pipeline counters/gauges/span stats
  --prom out.prom       Prometheus text exposition of the same snapshot
  --log-level L         stderr logging: off|error|warn|info|debug|trace

fault handling:
  --fault-policy lenient   quarantine defective records/folds, keep going,
                           append a fault report section (default)
  --fault-policy strict    abort on the first Error-severity fault
";

/// Runs one CLI invocation, writing human output into `out`.
pub fn run(argv: &[String], out: &mut String) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "workloads" => commands::workloads(rest, out),
        "simulate" => commands::simulate(rest, out),
        "analyze" => commands::analyze(rest, out),
        "chaos" => commands::chaos(rest, out),
        "info" => commands::info(rest, out),
        "compare" => commands::compare(rest, out),
        "fingerprint" => commands::fingerprint(rest, out),
        "regress-check" => commands::regress_check(rest, out),
        "period" => commands::period(rest, out),
        "reconstruct" => commands::reconstruct(rest, out),
        "selfcheck" => commands::selfcheck(rest, out),
        "serve" => commands::serve(rest, out),
        "verify" => commands::verify(rest, out),
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn run_ok(v: &[&str]) -> String {
        let mut out = String::new();
        run(&argv(v), &mut out).unwrap_or_else(|e| panic!("command {v:?} failed: {e}"));
        out
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("phasefold-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        let help = run_ok(&["help"]);
        assert!(help.contains("usage: phasefold"));
        let mut out = String::new();
        assert!(matches!(
            run(&argv(&["frobnicate"]), &mut out),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&argv(&[]), &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn workloads_lists_the_library() {
        let out = run_ok(&["workloads"]);
        for name in ["cg", "stencil", "md", "amg", "fft", "synthetic"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn simulate_then_analyze_roundtrip() {
        let path = tmp("cli_cg.prv");
        let out = run_ok(&[
            "simulate", "cg", "--ranks", "2", "--iterations", "60", "--out", &path,
        ]);
        assert!(out.contains("wrote"), "{out}");
        assert!(std::fs::metadata(&path).unwrap().len() > 1000);

        let report = run_ok(&["analyze", &path]);
        assert!(report.contains("phasefold analysis report"), "{report}");
        assert!(report.contains("cluster 0"));
        assert!(report.contains("cg_solve"));
    }

    #[test]
    fn analyze_with_bootstrap_prints_cis() {
        let path = tmp("cli_syn.prv");
        run_ok(&[
            "simulate", "synthetic", "--ranks", "2", "--iterations", "150", "--out", &path,
        ]);
        let report = run_ok(&["analyze", &path, "--bootstrap"]);
        assert!(report.contains("95% CI"), "{report}");
        assert!(report.contains("order stability"));
    }

    #[test]
    fn period_detects_iterative_structure() {
        let path = tmp("cli_md.prv");
        run_ok(&["simulate", "md", "--ranks", "2", "--out", &path]);
        let out = run_ok(&["period", &path]);
        assert!(
            out.contains("period") && (out.contains("ms") || out.contains("s")),
            "{out}"
        );
    }

    #[test]
    fn reconstruct_emits_csv() {
        let path = tmp("cli_syn2.prv");
        run_ok(&[
            "simulate", "synthetic", "--ranks", "2", "--iterations", "120", "--out", &path,
        ]);
        let out = run_ok(&["reconstruct", &path, "--points", "100"]);
        let mut lines = out.lines();
        assert_eq!(lines.next().unwrap(), "t_s,mips");
        let data: Vec<&str> = lines.collect();
        assert!(data.len() >= 100, "{} rows", data.len());
        for row in data.iter().take(5) {
            let mut parts = row.split(',');
            let _: f64 = parts.next().unwrap().parse().unwrap();
            let _: f64 = parts.next().unwrap().parse().unwrap();
        }
    }

    #[test]
    fn simulate_unknown_workload_fails() {
        let mut out = String::new();
        let err = run(
            &argv(&["simulate", "nonsense", "--out", &tmp("x.prv")]),
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Other(_)));
    }

    #[test]
    fn analyze_missing_file_fails() {
        let mut out = String::new();
        assert!(matches!(
            run(&argv(&["analyze", "/nonexistent/trace.prv"]), &mut out),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn simulate_optimized_variant() {
        let path = tmp("cli_st_opt.prv");
        let out = run_ok(&[
            "simulate", "stencil", "--ranks", "2", "--optimized", "--out", &path,
        ]);
        assert!(out.contains("stencil-blocked"), "{out}");
    }

    #[test]
    fn analyze_threads_flag_accepted_and_identical() {
        let path = tmp("cli_threads.prv");
        run_ok(&["simulate", "synthetic", "--ranks", "2", "--iterations", "120", "--out", &path]);
        let seq = run_ok(&["analyze", &path, "--threads", "1"]);
        let par = run_ok(&["analyze", &path, "--threads", "4"]);
        let auto = run_ok(&["analyze", &path, "--threads", "0"]);
        assert_eq!(seq, par, "thread count must not change the report");
        assert_eq!(seq, auto);
        let mut out = String::new();
        assert!(matches!(
            run(&argv(&["analyze", &path, "--threads", "lots"]), &mut out),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn analyze_markdown_output() {
        let path = tmp("cli_md_out.prv");
        run_ok(&["simulate", "synthetic", "--ranks", "2", "--iterations", "120", "--out", &path]);
        let md = run_ok(&["analyze", &path, "--markdown"]);
        assert!(md.starts_with("# phasefold analysis"), "{md}");
        assert!(md.contains("| phase |"));
    }

    #[test]
    fn info_summarises_trace() {
        let path = tmp("cli_info.prv");
        run_ok(&["simulate", "synthetic", "--ranks", "2", "--iterations", "50", "--out", &path]);
        let out = run_ok(&["info", &path]);
        assert!(out.contains("bursts:"), "{out}");
        assert!(out.contains("regions:"));
        assert!(out.contains("phase0"));
    }

    #[test]
    fn compare_two_runs() {
        let base = tmp("cli_cmp_base.prv");
        let opt = tmp("cli_cmp_opt.prv");
        run_ok(&["simulate", "stencil", "--ranks", "2", "--out", &base]);
        run_ok(&["simulate", "stencil", "--ranks", "2", "--optimized", "--out", &opt]);
        let out = run_ok(&["compare", &base, &opt]);
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("->"));
    }

    #[test]
    fn exit_codes_distinguish_usage_from_runtime_failures() {
        assert_eq!(exit_code(&CliError::Usage("bad".into())), 2);
        assert_eq!(exit_code(&CliError::Other("nope".into())), 1);
        assert_eq!(
            exit_code(&CliError::Io(std::io::Error::from(std::io::ErrorKind::NotFound))),
            1
        );
        assert_eq!(
            exit_code(&CliError::Fault(phasefold_model::Fault::new(
                phasefold_model::FaultKind::NanSamples,
                "x"
            ))),
            1
        );
    }

    #[test]
    fn chaos_corrupts_deterministically() {
        let clean = tmp("cli_chaos_clean.prv");
        run_ok(&["simulate", "synthetic", "--ranks", "2", "--iterations", "80", "--out", &clean]);
        let a = tmp("cli_chaos_a.prv");
        let b = tmp("cli_chaos_b.prv");
        let msg =
            run_ok(&["chaos", &clean, "--rate", "0.2", "--seed", "7", "--out", &a]);
        assert!(msg.contains("body lines corrupted"), "{msg}");
        run_ok(&["chaos", &clean, "--rate", "0.2", "--seed", "7", "--out", &b]);
        let ta = std::fs::read_to_string(&a).unwrap();
        let tb = std::fs::read_to_string(&b).unwrap();
        assert_eq!(ta, tb, "same seed+rate must corrupt identically");
        assert_ne!(ta, std::fs::read_to_string(&clean).unwrap());

        // Bad probabilities are usage errors (exit code 2 territory).
        let mut out = String::new();
        let err = run(
            &argv(&["chaos", &clean, "--rate", "1.5", "--out", &b]),
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn fault_policy_governs_corrupted_trace_analysis() {
        let clean = tmp("cli_policy_clean.prv");
        run_ok(&["simulate", "synthetic", "--ranks", "2", "--iterations", "120", "--out", &clean]);
        let bad = tmp("cli_policy_bad.prv");
        run_ok(&["chaos", &clean, "--nan", "0.3", "--seed", "5", "--out", &bad]);

        // Lenient (default): analysis completes and surfaces the damage.
        let report = run_ok(&["analyze", &bad]);
        assert!(report.contains("phasefold analysis report"), "{report}");
        assert!(report.contains("fault report"), "{report}");

        // Strict: the first Error-severity fault aborts.
        let mut out = String::new();
        let err = run(&argv(&["analyze", &bad, "--fault-policy", "strict"]), &mut out)
            .unwrap_err();
        assert!(
            matches!(err, CliError::Fault(_) | CliError::Trace(_)),
            "strict must surface a typed fault, got {err:?}"
        );

        // Unknown policy value is a usage error.
        let err = run(
            &argv(&["analyze", &bad, "--fault-policy", "yolo"]),
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));

        // A clean trace analyses identically under both policies.
        let lenient = run_ok(&["analyze", &clean]);
        let strict = run_ok(&["analyze", &clean, "--fault-policy", "strict"]);
        assert_eq!(lenient, strict);
        assert!(!lenient.contains("fault report"));
    }

    #[test]
    fn compare_json_emits_machine_verdict() {
        let base = tmp("cli_cmpj_base.prv");
        let opt = tmp("cli_cmpj_opt.prv");
        run_ok(&["simulate", "stencil", "--ranks", "2", "--out", &base]);
        run_ok(&["simulate", "stencil", "--ranks", "2", "--optimized", "--out", &opt]);
        let out = run_ok(&["compare", &base, &opt, "--json"]);
        assert!(out.starts_with('{') && out.trim_end().ends_with('}'), "{out}");
        assert!(out.contains("\"regressed\":"), "{out}");
        assert!(out.contains("\"phases\":["), "{out}");
        assert!(out.contains(&format!("\"baseline\":\"{base}\"")), "{out}");

        let mut sink = String::new();
        let err = run(&argv(&["compare", &base, &opt, "--threshold", "0"]), &mut sink)
            .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn fingerprint_then_regress_check_round_trip() {
        let base = tmp("cli_fp_base.prv");
        let same = tmp("cli_fp_same.prv");
        run_ok(&["simulate", "synthetic", "--ranks", "2", "--iterations", "150", "--out", &base]);
        run_ok(&[
            "simulate", "synthetic", "--ranks", "2", "--iterations", "150", "--seed", "99",
            "--out", &same,
        ]);

        // Condense the baseline once; the .pffp stands in for the trace.
        let fp = tmp("cli_fp_base.pffp");
        let msg = run_ok(&["fingerprint", &base, "--out", &fp, "--build", "v1"]);
        assert!(msg.contains("build `v1`"), "{msg}");
        assert!(std::fs::metadata(&fp).unwrap().len() > 0);

        // Same workload, different seed: no regression, exit 0, and the
        // .pffp baseline must behave exactly like the trace baseline.
        let clean = run_ok(&["regress-check", &base, &same]);
        assert!(clean.contains("verdict: clean"), "{clean}");
        let via_fp = run_ok(&["regress-check", &fp, &same]);
        assert!(via_fp.contains("verdict: clean"), "{via_fp}");

        // A regressed candidate (phase slowed 40%) must fail the gate
        // with the runtime exit code, not a usage error.
        let slow = tmp("cli_fp_slow.prv");
        run_ok(&[
            "simulate", "stencil", "--ranks", "2", "--optimized", "--out", &base,
        ]);
        run_ok(&["simulate", "stencil", "--ranks", "2", "--out", &slow]);
        let mut out = String::new();
        let err = run(&argv(&["regress-check", &base, &slow]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Other(_)), "expected gate failure, got {err:?}");
        assert_eq!(exit_code(&err), 1);
        assert!(out.contains("REGRESSED"), "{out}");

        // --json keeps the same verdict shape as the daemon endpoint.
        let mut json = String::new();
        let _ = run(&argv(&["regress-check", &base, &slow, "--json"]), &mut json);
        assert!(json.contains("\"regressed\":true"), "{json}");
    }

    #[test]
    fn simulate_with_imbalance_runs() {
        let path = tmp("cli_imb.prv");
        run_ok(&[
            "simulate", "synthetic", "--ranks", "4", "--iterations", "80", "--imbalance", "0.3",
            "--out", &path,
        ]);
        let report = run_ok(&["analyze", &path]);
        assert!(report.contains("cluster"), "{report}");
    }
}
