//! Mapping detected phases onto the application's syntactical structure.
//!
//! Every folded sample carries a call stack; within a detected phase's
//! `[x0, x1)` span the sampled leaf locations *vote*, and the winner is the
//! phase's source attribution. The vote share doubles as a confidence
//! measure — the paper's displays hinge on exactly this correlation between
//! performance phases and source code.

use phasefold_model::{CallStack, RegionId, SourceRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// Source attribution of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceAttribution {
    /// Winning leaf region.
    pub region: RegionId,
    /// Most frequent leaf source line within the winning region.
    pub line: u32,
    /// Fraction of in-span stack samples that voted for the winner.
    pub confidence: f64,
    /// Number of stack samples in the span.
    pub votes: usize,
}

impl SourceAttribution {
    /// Renders as `name (file:line)` using the registry.
    pub fn render(&self, registry: &SourceRegistry) -> String {
        match registry.get(self.region) {
            Some(info) => format!("{} ({}:{})", info.name, info.location.file, self.line),
            None => format!("<region {}>@{}", self.region.0, self.line),
        }
    }
}

/// Attributes the span `[x0, x1)` from `(x, stack)` observations.
///
/// Returns `None` if no stack sample falls inside the span.
pub fn attribute_span(
    stacks: &[(f64, Arc<CallStack>)],
    x0: f64,
    x1: f64,
) -> Option<SourceAttribution> {
    let mut votes_by_region: HashMap<RegionId, usize> = HashMap::new();
    let mut line_votes: HashMap<(RegionId, u32), usize> = HashMap::new();
    let mut total = 0usize;
    for (x, stack) in stacks {
        if *x < x0 || *x >= x1 {
            continue;
        }
        let Some(leaf) = stack.leaf() else { continue };
        total += 1;
        *votes_by_region.entry(leaf).or_default() += 1;
        *line_votes.entry((leaf, stack.leaf_line)).or_default() += 1;
    }
    if total == 0 {
        return None;
    }
    let (&region, &votes) = votes_by_region
        .iter()
        .max_by_key(|(r, v)| (**v, std::cmp::Reverse(r.0)))?;
    let line = line_votes
        .iter()
        .filter(|((r, _), _)| *r == region)
        .max_by_key(|(_, v)| **v)
        .map(|((_, l), _)| *l)
        .unwrap_or(0);
    Some(SourceAttribution {
        region,
        line,
        confidence: votes as f64 / total as f64,
        votes: total,
    })
}

/// Full leaf-region histogram of the span `[x0, x1)`: `(region, share)`
/// pairs, descending by share. Where the top-1 attribution is ambiguous
/// (merged performance-identical kernels), the histogram still names every
/// kernel the phase covers.
pub fn span_histogram(
    stacks: &[(f64, Arc<CallStack>)],
    x0: f64,
    x1: f64,
) -> Vec<(RegionId, f64)> {
    let mut votes: HashMap<RegionId, usize> = HashMap::new();
    let mut total = 0usize;
    for (x, stack) in stacks {
        if *x < x0 || *x >= x1 {
            continue;
        }
        let Some(leaf) = stack.leaf() else { continue };
        *votes.entry(leaf).or_default() += 1;
        total += 1;
    }
    let mut out: Vec<(RegionId, f64)> = votes
        .into_iter()
        .map(|(r, v)| (r, v as f64 / total.max(1) as f64))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phasefold_model::RegionKind;

    fn stack(region: u32, line: u32) -> Arc<CallStack> {
        Arc::new(CallStack::new(vec![RegionId(0), RegionId(region)], line))
    }

    #[test]
    fn majority_wins() {
        let stacks = vec![
            (0.1, stack(1, 10)),
            (0.2, stack(1, 10)),
            (0.3, stack(1, 12)),
            (0.4, stack(2, 99)),
        ];
        let attr = attribute_span(&stacks, 0.0, 0.5).unwrap();
        assert_eq!(attr.region, RegionId(1));
        assert_eq!(attr.line, 10);
        assert!((attr.confidence - 0.75).abs() < 1e-12);
        assert_eq!(attr.votes, 4);
    }

    #[test]
    fn span_is_half_open() {
        let stacks = vec![(0.5, stack(1, 1)), (0.49, stack(2, 2))];
        let attr = attribute_span(&stacks, 0.0, 0.5).unwrap();
        assert_eq!(attr.region, RegionId(2));
        let attr = attribute_span(&stacks, 0.5, 1.0).unwrap();
        assert_eq!(attr.region, RegionId(1));
    }

    #[test]
    fn empty_span_returns_none() {
        let stacks = vec![(0.9, stack(1, 1))];
        assert!(attribute_span(&stacks, 0.0, 0.5).is_none());
        assert!(attribute_span(&[], 0.0, 1.0).is_none());
    }

    #[test]
    fn empty_stacks_do_not_vote() {
        let stacks = vec![(0.1, Arc::new(CallStack::empty())), (0.2, stack(3, 7))];
        let attr = attribute_span(&stacks, 0.0, 1.0).unwrap();
        assert_eq!(attr.region, RegionId(3));
        assert_eq!(attr.votes, 1);
        assert_eq!(attr.confidence, 1.0);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let stacks = vec![(0.1, stack(1, 1)), (0.2, stack(2, 2))];
        let a = attribute_span(&stacks, 0.0, 1.0).unwrap();
        let b = attribute_span(&stacks, 0.0, 1.0).unwrap();
        assert_eq!(a, b);
        // Lowest region id wins ties.
        assert_eq!(a.region, RegionId(1));
    }

    #[test]
    fn histogram_lists_all_regions_by_share() {
        let stacks = vec![
            (0.1, stack(1, 10)),
            (0.2, stack(1, 10)),
            (0.3, stack(2, 20)),
            (0.4, stack(1, 12)),
            (0.9, stack(3, 30)), // outside span
        ];
        let h = span_histogram(&stacks, 0.0, 0.5);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].0, RegionId(1));
        assert!((h[0].1 - 0.75).abs() < 1e-12);
        assert_eq!(h[1].0, RegionId(2));
        assert!((h[1].1 - 0.25).abs() < 1e-12);
        // Shares sum to 1 over the span.
        assert!((h.iter().map(|(_, s)| s).sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(span_histogram(&stacks, 0.95, 1.0).is_empty());
    }

    #[test]
    fn render_uses_registry() {
        let mut registry = SourceRegistry::new();
        registry.intern("main", RegionKind::Function, "m.c", 1);
        let spmv = registry.intern("spmv", RegionKind::Kernel, "solve.c", 42);
        let attr = SourceAttribution { region: spmv, line: 44, confidence: 1.0, votes: 3 };
        assert_eq!(attr.render(&registry), "spmv (solve.c:44)");
        let unknown =
            SourceAttribution { region: RegionId(99), line: 1, confidence: 1.0, votes: 1 };
        assert_eq!(unknown.render(&registry), "<region 99>@1");
    }
}
