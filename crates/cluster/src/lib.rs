//! # phasefold-cluster
//!
//! Computation-burst structure detection for the `phasefold` workspace —
//! the DBSCAN-based clustering substrate (González et al., IPDPS'09;
//! Aggregative Cluster Refinement, IPDPSW'12) that the IPDPS'14 phase-
//! identification paper folds its samples *per cluster* on top of.
//!
//! * [`features`] — bursts → normalised `(log duration, log instructions)`
//!   points,
//! * [`kdtree`] — ε-range queries,
//! * [`dbscan`] — the density-based clustering itself + k-dist ε heuristic,
//! * [`refine`] — aggregative refinement for multi-density data,
//! * [`align`] — SPMD validation of the detected structure by sequence
//!   alignment,
//! * [`periodicity`] — autocorrelation-based period detection and
//!   representative-window selection (Llort et al., ICPADS'11),
//! * [`quality`] — ARI/purity against simulator ground truth,
//! * [`pipeline`] — one-call [`pipeline::cluster_bursts`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod align;
pub mod dbscan;
pub mod features;
pub mod kdtree;
pub mod periodicity;
pub mod pipeline;
pub mod quality;
pub mod refine;

pub use dbscan::{dbscan, suggest_eps, DbscanParams, DbscanResult, Label};
pub use features::{extract_features, BurstFeatures};
pub use kdtree::KdTree;
pub use periodicity::{autocorrelation, detect_period, representative_window, PeriodEstimate};
pub use pipeline::{cluster_bursts, ClusterConfig, Clustering};
pub use quality::{adjusted_rand_index, purity, silhouette};
pub use refine::{refine, RefineParams};
