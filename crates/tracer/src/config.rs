//! Tracer configuration.

use phasefold_model::{CounterKind, DurNs};

/// How the sampling interrupts read the (limited) PMU registers.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum MultiplexMode {
    /// Every sample reads the full counter set (idealised PMU; the
    /// configuration the accuracy experiments use).
    #[default]
    ReadAll,
    /// Samples cycle round-robin through counter groups; each sample
    /// carries only its group's counters (realistic PMU with few
    /// programmable registers). Groups must be non-empty.
    RoundRobin(Vec<Vec<CounterKind>>),
}

/// Cost model of the instrumentation itself (experiment E5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadConfig {
    /// Wall-clock cost of one sampling interrupt (signal delivery, counter
    /// reads, unwinding), in seconds.
    pub per_sample_s: f64,
    /// Wall-clock cost of one instrumented event (communication boundary or
    /// region marker), in seconds.
    pub per_event_s: f64,
}

impl Default for OverheadConfig {
    fn default() -> OverheadConfig {
        OverheadConfig {
            per_sample_s: 5e-6, // ~µs-scale signal + unwind, as in Extrae
            per_event_s: 0.3e-6,
        }
    }
}

impl OverheadConfig {
    /// Zero-cost instrumentation (for experiments isolating accuracy from
    /// perturbation).
    pub const FREE: OverheadConfig = OverheadConfig { per_sample_s: 0.0, per_event_s: 0.0 };
}

/// Full tracer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerConfig {
    /// Sampling period. The paper's regime of interest is *coarse*:
    /// periods several times longer than a burst.
    pub sampling_period: DurNs,
    /// Uniform jitter applied to each sampling interval, as a fraction of
    /// the period (`0.0` = perfectly periodic). Jitter is what lets folded
    /// samples cover the whole burst instead of aliasing.
    pub jitter_fraction: f64,
    /// PMU multiplexing behaviour.
    pub multiplex: MultiplexMode,
    /// Capture call stacks on samples.
    pub capture_callstacks: bool,
    /// Instrumentation cost model.
    pub overhead: OverheadConfig,
    /// Seed of the per-rank jitter streams.
    pub seed: u64,
}

impl Default for TracerConfig {
    fn default() -> TracerConfig {
        TracerConfig {
            sampling_period: DurNs::from_millis(10),
            jitter_fraction: 0.25,
            multiplex: MultiplexMode::ReadAll,
            capture_callstacks: true,
            overhead: OverheadConfig::default(),
            seed: 0x7AC3,
        }
    }
}

impl TracerConfig {
    /// Validates the configuration, panicking on nonsense values (these are
    /// static experiment definitions, not runtime inputs).
    pub fn validate(&self) {
        assert!(!self.sampling_period.is_zero(), "sampling period must be positive");
        assert!(
            (0.0..1.0).contains(&self.jitter_fraction),
            "jitter fraction must be in [0, 1)"
        );
        if let MultiplexMode::RoundRobin(groups) = &self.multiplex {
            assert!(!groups.is_empty(), "multiplexing needs at least one group");
            assert!(
                groups.iter().all(|g| !g.is_empty()),
                "multiplex groups must be non-empty"
            );
        }
        assert!(self.overhead.per_sample_s >= 0.0);
        assert!(self.overhead.per_event_s >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        TracerConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "sampling period")]
    fn zero_period_rejected() {
        TracerConfig { sampling_period: DurNs::ZERO, ..TracerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn unit_jitter_rejected() {
        TracerConfig { jitter_fraction: 1.0, ..TracerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_multiplex_group_rejected() {
        TracerConfig {
            multiplex: MultiplexMode::RoundRobin(vec![vec![CounterKind::Instructions], vec![]]),
            ..TracerConfig::default()
        }
        .validate();
    }
}
