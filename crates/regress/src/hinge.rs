//! The continuous piece-wise linear model, parametrised in *segment-slope*
//! space.
//!
//! Given ordered interior breakpoints `ψ_1 < … < ψ_k` inside a domain
//! `[lo, hi]`, the model is
//!
//! ```text
//! y(x) = c + Σ_j  s_j · overlap_j(x),     overlap_j(x) = clamp(x − e_j, 0, e_{j+1} − e_j)
//! ```
//!
//! with segment edges `e = [lo, ψ_1, …, ψ_k, hi]`. This is algebraically the
//! classic hinge form `c' + β₁x + Σ γ_j (x − ψ_j)₊`, but the slope-space
//! parametrisation makes the monotonicity constraint of accumulating
//! counters (`s_j ≥ 0`) a plain non-negativity bound — solvable exactly by
//! NNLS — and reads directly as "per-phase counter rate".

use crate::linalg::{nnls_into, wls_into, LinalgError, LsScratch, Mat, NnlsScratch};
use crate::stats::r_squared;

/// A fitted continuous piece-wise linear model.
#[derive(Debug, Clone, PartialEq)]
pub struct HingeFit {
    /// Domain lower edge.
    pub lo: f64,
    /// Domain upper edge.
    pub hi: f64,
    /// Interior breakpoints, ascending, strictly inside `(lo, hi)`.
    pub breakpoints: Vec<f64>,
    /// Value of the model at `x = lo`.
    pub intercept: f64,
    /// Per-segment slopes, one per segment (`breakpoints.len() + 1`).
    pub slopes: Vec<f64>,
    /// Residual sum of squares (weighted if weights were used).
    pub sse: f64,
    /// Coefficient of determination on the fitted data.
    pub r2: f64,
    /// Number of fitted points.
    pub n: usize,
}

impl HingeFit {
    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.slopes.len()
    }

    /// Segment spans `[(e_0, e_1), (e_1, e_2), …]`.
    pub fn segment_spans(&self) -> Vec<(f64, f64)> {
        let mut edges = Vec::with_capacity(self.breakpoints.len() + 2);
        edges.push(self.lo);
        edges.extend_from_slice(&self.breakpoints);
        edges.push(self.hi);
        edges.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// Model prediction at `x` (extrapolates with the edge slopes).
    pub fn predict(&self, x: f64) -> f64 {
        let k = self.breakpoints.len();
        let mut y = self.intercept;
        for (j, &s) in self.slopes.iter().enumerate() {
            let e0 = if j == 0 { self.lo } else { self.breakpoints[j - 1] };
            let e1 = if j == k { self.hi } else { self.breakpoints[j] };
            // Edge segments absorb extrapolation beyond the domain.
            let upper = if j == k { f64::INFINITY } else { e1 - e0 };
            let lower = if j == 0 { f64::NEG_INFINITY } else { 0.0 };
            y += s * (x - e0).clamp(lower, upper);
        }
        y
    }

    /// Slope (instantaneous rate) of the segment containing `x`.
    pub fn slope_at(&self, x: f64) -> f64 {
        let seg = self
            .breakpoints
            .partition_point(|&b| b <= x)
            .min(self.slopes.len().saturating_sub(1));
        self.slopes[seg]
    }
}

/// Errors from PWL fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer points than parameters.
    TooFewPoints {
        /// Points supplied.
        n: usize,
        /// Parameters required.
        p: usize,
    },
    /// The linear solve failed even with regularisation.
    Numerical(LinalgError),
    /// Breakpoints were not strictly ascending inside the domain.
    BadBreakpoints,
    /// The input data contained NaN or infinite values.
    NonFinite,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints { n, p } => {
                write!(f, "too few points: {n} for {p} parameters")
            }
            FitError::Numerical(e) => write!(f, "numerical failure: {e}"),
            FitError::BadBreakpoints => write!(f, "breakpoints not strictly ascending in domain"),
            FitError::NonFinite => write!(f, "input data contains non-finite values"),
        }
    }
}

impl std::error::Error for FitError {}

impl From<LinalgError> for FitError {
    fn from(e: LinalgError) -> FitError {
        FitError::Numerical(e)
    }
}

fn validate_breakpoints(breakpoints: &[f64], lo: f64, hi: f64) -> Result<(), FitError> {
    let mut prev = lo;
    for &b in breakpoints {
        if !(b > prev && b < hi) {
            return Err(FitError::BadBreakpoints);
        }
        prev = b;
    }
    Ok(())
}

/// Reusable buffers for the hinge fits: one instance (per thread) makes
/// repeated fitting allocation-free apart from the returned [`HingeFit`].
#[derive(Default)]
pub struct HingeScratch {
    design: Mat,
    base: Mat,
    edges: Vec<f64>,
    b: Vec<f64>,
    pred: Vec<f64>,
    ls: LsScratch,
    nnls: NnlsScratch,
}

impl HingeScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> HingeScratch {
        HingeScratch::default()
    }
}

/// Builds the slope-space design matrix: one column per segment holding the
/// overlap of `[lo, x_i]` with that segment, plus (optionally) a leading
/// intercept column.
fn slope_design_into(
    xs: &[f64],
    breakpoints: &[f64],
    lo: f64,
    hi: f64,
    with_intercept: bool,
    edges: &mut Vec<f64>,
    m: &mut Mat,
) {
    let k = breakpoints.len();
    let p = k + 1 + usize::from(with_intercept);
    m.reshape_zeroed(xs.len(), p);
    edges.clear();
    edges.push(lo);
    edges.extend_from_slice(breakpoints);
    edges.push(hi);
    for (i, &x) in xs.iter().enumerate() {
        let row = m.row_mut(i);
        let mut col = 0;
        if with_intercept {
            row[0] = 1.0;
            col = 1;
        }
        for j in 0..=k {
            let e0 = edges[j];
            let e1 = edges[j + 1];
            // Last segment absorbs right extrapolation; first absorbs left.
            let upper = if j == k { f64::INFINITY } else { e1 - e0 };
            let lower = if j == 0 { f64::NEG_INFINITY } else { 0.0 };
            row[col + j] = (x - e0).clamp(lower, upper);
        }
    }
}

/// Fits the continuous PWL model by (weighted) least squares with **no**
/// sign constraint on the slopes.
pub fn fit_hinge(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    breakpoints: &[f64],
    lo: f64,
    hi: f64,
) -> Result<HingeFit, FitError> {
    fit_hinge_with(xs, ys, weights, breakpoints, lo, hi, &mut HingeScratch::new())
}

/// [`fit_hinge`] using caller-provided scratch buffers.
pub fn fit_hinge_with(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    breakpoints: &[f64],
    lo: f64,
    hi: f64,
    scratch: &mut HingeScratch,
) -> Result<HingeFit, FitError> {
    assert_eq!(xs.len(), ys.len());
    validate_breakpoints(breakpoints, lo, hi)?;
    let p = breakpoints.len() + 2;
    if xs.len() < p {
        return Err(FitError::TooFewPoints { n: xs.len(), p });
    }
    slope_design_into(xs, breakpoints, lo, hi, true, &mut scratch.edges, &mut scratch.design);
    let beta = wls_into(&scratch.design, ys, weights, &mut scratch.ls)?;
    let (intercept, slopes) = (beta[0], beta[1..].to_vec());
    finish(xs, ys, weights, breakpoints, lo, hi, intercept, slopes, &mut scratch.pred)
}

/// Fits the continuous PWL model with all slopes constrained to be
/// non-negative (monotone non-decreasing `y`), via NNLS.
///
/// The intercept stays unconstrained: it is encoded as the difference of two
/// non-negative columns inside the NNLS problem.
pub fn fit_hinge_monotone(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    breakpoints: &[f64],
    lo: f64,
    hi: f64,
) -> Result<HingeFit, FitError> {
    fit_hinge_monotone_with(xs, ys, weights, breakpoints, lo, hi, &mut HingeScratch::new())
}

/// [`fit_hinge_monotone`] using caller-provided scratch buffers.
pub fn fit_hinge_monotone_with(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    breakpoints: &[f64],
    lo: f64,
    hi: f64,
    scratch: &mut HingeScratch,
) -> Result<HingeFit, FitError> {
    assert_eq!(xs.len(), ys.len());
    validate_breakpoints(breakpoints, lo, hi)?;
    let k = breakpoints.len();
    let p = k + 2;
    if xs.len() < p {
        return Err(FitError::TooFewPoints { n: xs.len(), p });
    }
    slope_design_into(xs, breakpoints, lo, hi, false, &mut scratch.edges, &mut scratch.base);
    // Columns: [+1, −1, slopes…]; apply sqrt-weights to rows for WLS-as-OLS.
    let n = xs.len();
    let base = &scratch.base;
    let design = &mut scratch.design;
    design.reshape_zeroed(n, p + 1);
    let b = &mut scratch.b;
    b.clear();
    b.resize(n, 0.0);
    for i in 0..n {
        let sw = weights.map_or(1.0, |w| w[i].max(0.0)).sqrt();
        let row = design.row_mut(i);
        row[0] = sw;
        row[1] = -sw;
        for j in 0..=k {
            row[2 + j] = sw * base[(i, j)];
        }
        b[i] = sw * ys[i];
    }
    let sol = nnls_into(&scratch.design, &scratch.b, 50 * (p + 1), &mut scratch.nnls)?;
    let intercept = sol[0] - sol[1];
    let slopes = sol[2..].to_vec();
    finish(xs, ys, weights, breakpoints, lo, hi, intercept, slopes, &mut scratch.pred)
}

#[allow(clippy::too_many_arguments)]
fn finish(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    breakpoints: &[f64],
    lo: f64,
    hi: f64,
    intercept: f64,
    slopes: Vec<f64>,
    pred: &mut Vec<f64>,
) -> Result<HingeFit, FitError> {
    let fit = HingeFit {
        lo,
        hi,
        breakpoints: breakpoints.to_vec(),
        intercept,
        slopes,
        sse: 0.0,
        r2: 0.0,
        n: xs.len(),
    };
    pred.clear();
    pred.extend(xs.iter().map(|&x| fit.predict(x)));
    let sse = pred
        .iter()
        .zip(ys)
        .enumerate()
        .map(|(i, (p, y))| {
            let w = weights.map_or(1.0, |w| w[i]);
            w * (p - y) * (p - y)
        })
        .sum();
    let r2 = r_squared(pred, ys);
    Ok(HingeFit { sse, r2, ..fit })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground-truth two-phase profile: slope 2 then slope 0.5, break at 0.4.
    fn two_phase(x: f64) -> f64 {
        if x < 0.4 {
            2.0 * x
        } else {
            0.8 + 0.5 * (x - 0.4)
        }
    }

    fn dense_xs(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn exact_recovery_with_true_breakpoint() {
        let xs = dense_xs(51);
        let ys: Vec<f64> = xs.iter().map(|&x| two_phase(x)).collect();
        let fit = fit_hinge(&xs, &ys, None, &[0.4], 0.0, 1.0).unwrap();
        assert!((fit.intercept).abs() < 1e-9);
        assert!((fit.slopes[0] - 2.0).abs() < 1e-9);
        assert!((fit.slopes[1] - 0.5).abs() < 1e-9);
        assert!(fit.sse < 1e-16);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_matches_model_everywhere() {
        let xs = dense_xs(51);
        let ys: Vec<f64> = xs.iter().map(|&x| two_phase(x)).collect();
        let fit = fit_hinge(&xs, &ys, None, &[0.4], 0.0, 1.0).unwrap();
        for &x in &xs {
            assert!((fit.predict(x) - two_phase(x)).abs() < 1e-9, "x={x}");
        }
        // Extrapolation uses edge slopes.
        assert!((fit.predict(1.2) - (two_phase(1.0) + 0.5 * 0.2)).abs() < 1e-9);
        assert!((fit.predict(-0.1) - (-0.2)).abs() < 1e-9);
    }

    #[test]
    fn slope_at_selects_correct_segment() {
        let fit = HingeFit {
            lo: 0.0,
            hi: 1.0,
            breakpoints: vec![0.3, 0.7],
            intercept: 0.0,
            slopes: vec![1.0, 2.0, 3.0],
            sse: 0.0,
            r2: 1.0,
            n: 0,
        };
        assert_eq!(fit.slope_at(0.1), 1.0);
        assert_eq!(fit.slope_at(0.3), 2.0); // boundary belongs to the right
        assert_eq!(fit.slope_at(0.69), 2.0);
        assert_eq!(fit.slope_at(0.9), 3.0);
        assert_eq!(fit.slope_at(2.0), 3.0);
        assert_eq!(fit.num_segments(), 3);
        assert_eq!(fit.segment_spans(), vec![(0.0, 0.3), (0.3, 0.7), (0.7, 1.0)]);
    }

    #[test]
    fn monotone_fit_never_returns_negative_slopes() {
        // Noisy flat-ish data that tempts a negative slope in segment 2.
        let xs = dense_xs(41);
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 0.5 { x } else { 0.5 - 0.2 * (x - 0.5) })
            .collect();
        let fit = fit_hinge_monotone(&xs, &ys, None, &[0.5], 0.0, 1.0).unwrap();
        assert!(fit.slopes.iter().all(|&s| s >= 0.0), "{:?}", fit.slopes);
        // Unconstrained fit would go negative.
        let un = fit_hinge(&xs, &ys, None, &[0.5], 0.0, 1.0).unwrap();
        assert!(un.slopes[1] < 0.0);
        // Constrained SSE is necessarily >= unconstrained.
        assert!(fit.sse >= un.sse - 1e-12);
    }

    #[test]
    fn monotone_matches_unconstrained_on_monotone_data() {
        let xs = dense_xs(41);
        let ys: Vec<f64> = xs.iter().map(|&x| two_phase(x)).collect();
        let a = fit_hinge(&xs, &ys, None, &[0.4], 0.0, 1.0).unwrap();
        let b = fit_hinge_monotone(&xs, &ys, None, &[0.4], 0.0, 1.0).unwrap();
        assert!((a.slopes[0] - b.slopes[0]).abs() < 1e-6);
        assert!((a.slopes[1] - b.slopes[1]).abs() < 1e-6);
        assert!((a.intercept - b.intercept).abs() < 1e-6);
    }

    #[test]
    fn zero_breakpoints_is_plain_line() {
        let xs = dense_xs(11);
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + 3.0 * x).collect();
        let fit = fit_hinge(&xs, &ys, None, &[], 0.0, 1.0).unwrap();
        assert_eq!(fit.num_segments(), 1);
        assert!((fit.intercept - 1.0).abs() < 1e-9);
        assert!((fit.slopes[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_breakpoints() {
        let xs = dense_xs(11);
        let ys = xs.clone();
        assert_eq!(
            fit_hinge(&xs, &ys, None, &[0.5, 0.4], 0.0, 1.0),
            Err(FitError::BadBreakpoints)
        );
        assert_eq!(
            fit_hinge(&xs, &ys, None, &[0.0], 0.0, 1.0),
            Err(FitError::BadBreakpoints)
        );
        assert_eq!(
            fit_hinge(&xs, &ys, None, &[1.0], 0.0, 1.0),
            Err(FitError::BadBreakpoints)
        );
    }

    #[test]
    fn rejects_too_few_points() {
        assert!(matches!(
            fit_hinge(&[0.1, 0.9], &[0.1, 0.9], None, &[0.5], 0.0, 1.0),
            Err(FitError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn weighted_fit_prefers_heavy_points() {
        let xs = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        let ys = vec![0.0, 0.25, 0.5, 0.75, 5.0]; // last point is an outlier
        let w = vec![1.0, 1.0, 1.0, 1.0, 1e-9];
        let fit = fit_hinge(&xs, &ys, Some(&w), &[], 0.0, 1.0).unwrap();
        assert!((fit.slopes[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn three_segment_recovery() {
        let xs = dense_xs(200);
        let truth = |x: f64| {
            if x < 0.2 {
                5.0 * x
            } else if x < 0.8 {
                1.0 + 0.1 * (x - 0.2)
            } else {
                1.06 + 3.0 * (x - 0.8)
            }
        };
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let fit = fit_hinge_monotone(&xs, &ys, None, &[0.2, 0.8], 0.0, 1.0).unwrap();
        assert!((fit.slopes[0] - 5.0).abs() < 1e-6);
        assert!((fit.slopes[1] - 0.1).abs() < 1e-6);
        assert!((fit.slopes[2] - 3.0).abs() < 1e-6);
    }
}
