#!/usr/bin/env bash
# Differential & metamorphic correctness gate (E17).
#
# Builds the workspace in release mode and runs `phasefold verify`:
#
#   1. replays every minimized case in tests/corpus/ (the checked-in
#      regression corpus — each file pins a shape that once exposed, or
#      structurally could expose, a kernel divergence) through the full
#      differential + metamorphic check set;
#   2. fuzzes SEEDS seeded random trace/config cases (default 200) against
#      the slow reference kernels and the paper-derived invariants.
#
# Any divergence fails the gate and prints a minimized repro in corpus
# format, ready to be added to tests/corpus/.
#
# Usage:
#   scripts/verify.sh             # 200 seeds + corpus replay
#   SEEDS=1000 scripts/verify.sh  # deeper fuzz run

set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-200}"

echo "== release build =="
cargo build --release -q -p phasefold-cli

echo "== corpus replay + ${SEEDS}-seed fuzz =="
cargo run --release -q -p phasefold-cli -- verify --seeds "$SEEDS" --corpus tests/corpus

echo "verify gate OK"
