//! End-to-end structure detection: bursts → features → (refined) DBSCAN →
//! labelled clustering with SPMD validation.

use crate::align::spmd_score;
use crate::dbscan::{dbscan, suggest_eps, DbscanParams, DbscanResult, Label};
use crate::features::extract_features;
use crate::refine::{refine, RefineParams};
use phasefold_model::{Burst, RankId};
use std::collections::BTreeMap;

/// Structure-detection configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// DBSCAN core threshold.
    pub min_pts: usize,
    /// Explicit ε; `None` derives it from the k-dist curve.
    pub eps: Option<f64>,
    /// Floor on the derived ε: bursts closer than this in normalised
    /// log-feature space are the same phase by definition (sub-resolution
    /// contrast). Ignored when `eps` is explicit.
    pub min_eps: f64,
    /// Apply aggregative refinement (tight ε + merging) instead of plain
    /// single-ε DBSCAN.
    pub refine: bool,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig { min_pts: 4, eps: None, min_eps: 0.02, refine: false }
    }
}

/// A labelled clustering of computation bursts.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Per-burst label (aligned with the input slice); `None` = noise.
    pub labels: Vec<Label>,
    /// Number of clusters.
    pub num_clusters: usize,
    /// The ε actually used.
    pub eps: f64,
    /// SPMD consistency score of the per-rank label sequences ∈ [0, 1].
    pub spmd_score: f64,
}

impl Clustering {
    /// Burst indices (into the input slice) of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (*l == Some(c)).then_some(i))
            .collect()
    }
}

/// Detects the computation structure of `bursts`.
pub fn cluster_bursts(bursts: &[Burst], config: &ClusterConfig) -> Clustering {
    let features = extract_features(bursts);
    let eps = {
        let _sp = phasefold_obs::span!("cluster.suggest_eps");
        config.eps.unwrap_or_else(|| {
            suggest_eps(&features.points, config.min_pts, 0.90).max(config.min_eps)
        })
    };
    let result: DbscanResult = {
        let _sp = phasefold_obs::span!("cluster.dbscan");
        if config.refine {
            refine(
                &features.points,
                &RefineParams {
                    eps: eps * 0.5,
                    min_pts: config.min_pts,
                    spread_limit: 2.5,
                },
            )
        } else {
            dbscan(&features.points, &DbscanParams { eps, min_pts: config.min_pts })
        }
    };

    // Per-rank label sequences for the SPMD score (noise skipped).
    let mut sequences: BTreeMap<RankId, Vec<usize>> = BTreeMap::new();
    for (burst, label) in bursts.iter().zip(&result.labels) {
        if let Some(l) = label {
            sequences.entry(burst.id.rank).or_default().push(*l);
        }
    }
    let seqs: Vec<Vec<usize>> = sequences.into_values().collect();
    let spmd = spmd_score(&seqs);
    phasefold_obs::gauge!("cluster.eps", eps);
    phasefold_obs::gauge!("cluster.num_clusters", result.num_clusters);
    phasefold_obs::gauge!("cluster.spmd_score", spmd);
    Clustering {
        labels: result.labels,
        num_clusters: result.num_clusters,
        eps,
        spmd_score: spmd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phasefold_model::{extract_bursts, DurNs};
    use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
    use phasefold_simapp::{simulate, SimConfig};
    use phasefold_tracer::{trace_run, TracerConfig};

    fn traced_bursts(ranks: usize) -> Vec<Burst> {
        let program = build(&SyntheticParams { iterations: 60, ..SyntheticParams::default() });
        let out = simulate(&program, &SimConfig { ranks, ..SimConfig::default() });
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        extract_bursts(&trace, DurNs::from_micros(1))
    }

    #[test]
    fn synthetic_single_template_gives_one_cluster() {
        let bursts = traced_bursts(2);
        let clustering = cluster_bursts(&bursts, &ClusterConfig::default());
        assert_eq!(clustering.num_clusters, 1, "eps = {}", clustering.eps);
        let noise = clustering.labels.iter().filter(|l| l.is_none()).count();
        assert!(noise * 10 < bursts.len(), "{noise} noise of {}", bursts.len());
        assert!(clustering.spmd_score > 0.95);
    }

    #[test]
    fn md_two_templates_give_two_clusters() {
        use phasefold_simapp::workloads::md::{build, MdParams};
        let program = build(&MdParams { decades: 4, ..MdParams::default() });
        let out = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        let bursts = extract_bursts(&trace, DurNs::from_micros(1));
        let clustering = cluster_bursts(&bursts, &ClusterConfig::default());
        // Rebuild bursts vs plain bursts vs (ghost-separated) sub-bursts:
        // at least 2 clusters must emerge, with high SPMD consistency.
        assert!(
            clustering.num_clusters >= 2,
            "got {} clusters at eps {}",
            clustering.num_clusters,
            clustering.eps
        );
        assert!(clustering.spmd_score > 0.9, "spmd = {}", clustering.spmd_score);
    }

    #[test]
    fn explicit_eps_is_respected() {
        let bursts = traced_bursts(1);
        let clustering =
            cluster_bursts(&bursts, &ClusterConfig { eps: Some(0.123), ..Default::default() });
        assert_eq!(clustering.eps, 0.123);
    }

    #[test]
    fn refine_path_runs() {
        let bursts = traced_bursts(1);
        let clustering =
            cluster_bursts(&bursts, &ClusterConfig { refine: true, ..Default::default() });
        assert!(clustering.num_clusters >= 1);
    }

    #[test]
    fn empty_bursts() {
        let clustering = cluster_bursts(&[], &ClusterConfig::default());
        assert_eq!(clustering.num_clusters, 0);
        assert!(clustering.labels.is_empty());
        assert_eq!(clustering.spmd_score, 1.0);
    }
}
