//! Differential checks: fast kernel vs slow reference on the same input.
//!
//! Equality contracts, documented per check:
//!
//! | check            | contract |
//! |------------------|----------|
//! | segdp-exhaustive | SSE per segment count within `1e-6` relative (prefix sums vs direct moments round differently); returned breakpoints must describe a feasible partition whose direct SSE matches the reported one |
//! | dbscan-brute     | exact: core set, cluster count, core partition up to relabeling, border adjacency, noise set |
//! | fold-naive       | bit-exact on every folded point and mean; the two sides evaluate the same formula in the same order |

use crate::generate::Case;
use crate::reference;
use crate::Divergence;
use phasefold_cluster::{cluster_bursts, dbscan, DbscanParams};
use phasefold_folding::fold_trace;
use phasefold_model::{burst::extract_bursts_checked, fault::FaultReport};
use phasefold_regress::segdp::segment_dp;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Relative SSE tolerance for the segmented-least-squares comparison. The
/// production DP computes interval SSE from prefix-sum differences whose
/// rounding error scales with the raw (uncentered) moments, while the
/// reference centers first; agreement beyond ~1e-9 relative cannot be
/// expected, and 1e-6 leaves three orders of margin without masking any
/// structural mistake (choosing a wrong split changes SSE by orders more).
pub const SEGDP_SSE_RTOL: f64 = 1e-6;

fn sse_close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= SEGDP_SSE_RTOL * (1.0 + scale.abs())
}

/// Differential check: `regress::segdp::segment_dp` against the exhaustive
/// reference, on a random sorted instance drawn from `rng`.
pub fn check_segdp(rng: &mut StdRng, seed: u64) -> Option<Divergence> {
    // Small n keeps the exhaustive side honest *and* fast.
    let n = rng.gen_range(4usize..22);
    let min_points = rng.gen_range(1usize..4);
    let max_segments = rng.gen_range(1usize..5);
    let mut xs: Vec<f64> = Vec::with_capacity(n);
    let mut x = 0.0f64;
    for _ in 0..n {
        x += rng.gen_range(0.01f64..1.0);
        xs.push(x);
    }
    // Piece-wise linear ground truth + noise, so optimal splits exist but
    // are not trivial.
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| {
            let base = if x < xs[n / 2] { 0.3 * x } else { 2.0 * x - 1.7 * xs[n / 2] };
            base + rng.gen_range(-0.05f64..0.05)
        })
        .collect();
    let weights: Option<Vec<f64>> = if rng.gen_bool(0.5) {
        Some((0..n).map(|_| rng.gen_range(0.1f64..2.0)).collect())
    } else {
        None
    };
    let w = weights.as_deref();

    let fast = segment_dp(&xs, &ys, w, max_segments, min_points);
    let slow = reference::exhaustive_segmentations(&xs, &ys, w, max_segments, min_points);
    let detail = compare_segdp(&xs, &ys, w, min_points, &fast, &slow)?;
    Some(Divergence { check: "segdp-exhaustive", seed, detail, repro: None })
}

/// Compares a production segmentation set against the exhaustive optimum;
/// `None` = agreement, `Some(detail)` = divergence.
pub fn compare_segdp(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    min_points: usize,
    fast: &[phasefold_regress::segdp::Segmentation],
    slow: &[(usize, f64)],
) -> Option<String> {
    if fast.len() != slow.len() {
        return Some(format!(
            "row count: fast returned {} segmentations, reference {} (n={}, min_points={})",
            fast.len(),
            slow.len(),
            xs.len(),
            min_points
        ));
    }
    for (row, &(m, ref_sse)) in fast.iter().zip(slow) {
        if row.num_segments != m {
            return Some(format!("row order: fast m={} where reference m={m}", row.num_segments));
        }
        if !ref_sse.is_finite() {
            continue; // infeasible row; DP reports inf as well or is absent
        }
        if !sse_close(row.sse, ref_sse, ref_sse) {
            return Some(format!(
                "m={m}: fast SSE {} vs exhaustive optimum {} (rtol {SEGDP_SSE_RTOL})",
                row.sse, ref_sse
            ));
        }
        // The breakpoints must describe a real partition achieving the
        // claimed SSE: strictly inside the x range, sorted, segments of at
        // least min_points, and the direct SSE of that partition equal to
        // the reported one.
        if row.breakpoints.len() + 1 != m {
            return Some(format!(
                "m={m}: {} breakpoints returned, expected {}",
                row.breakpoints.len(),
                m - 1
            ));
        }
        if row.breakpoints.windows(2).any(|w| w[0] >= w[1]) {
            return Some(format!("m={m}: breakpoints not strictly increasing: {:?}", row.breakpoints));
        }
        let mut start = 0usize;
        let mut partition_sse = 0.0f64;
        for (b, &bp) in row.breakpoints.iter().enumerate() {
            let end = xs.partition_point(|&x| x < bp); // first index right of bp
            if end <= start || end - start < min_points {
                return Some(format!(
                    "m={m}: breakpoint {b} at {bp} yields segment [{start}, {end}) shorter than min_points={min_points}"
                ));
            }
            partition_sse += reference::line_sse_direct(xs, ys, weights, start, end - 1);
            start = end;
        }
        if xs.len() - start < min_points {
            return Some(format!(
                "m={m}: final segment [{start}, {}) shorter than min_points={min_points}",
                xs.len()
            ));
        }
        partition_sse += reference::line_sse_direct(xs, ys, weights, start, xs.len() - 1);
        if !sse_close(partition_sse, row.sse, ref_sse) {
            return Some(format!(
                "m={m}: reported SSE {} but the returned breakpoints achieve {} (rtol {SEGDP_SSE_RTOL})",
                row.sse, partition_sse
            ));
        }
    }
    None
}

/// Differential check: kd-tree DBSCAN against the all-pairs reference, on
/// random blob-plus-noise points drawn from `rng`.
pub fn check_dbscan(rng: &mut StdRng, seed: u64) -> Option<Divergence> {
    let blobs = rng.gen_range(1usize..4);
    let mut points: Vec<[f64; 2]> = Vec::new();
    for _ in 0..blobs {
        let cx = rng.gen_range(0.0f64..1.0);
        let cy = rng.gen_range(0.0f64..1.0);
        let spread = rng.gen_range(0.005f64..0.08);
        for _ in 0..rng.gen_range(4usize..40) {
            points.push([
                cx + rng.gen_range(-spread..spread),
                cy + rng.gen_range(-spread..spread),
            ]);
        }
    }
    for _ in 0..rng.gen_range(0usize..12) {
        points.push([rng.gen_range(-0.5f64..1.5), rng.gen_range(-0.5f64..1.5)]);
    }
    let eps = rng.gen_range(0.02f64..0.2);
    let min_pts = rng.gen_range(2usize..6);

    let fast = dbscan(&points, &DbscanParams { eps, min_pts });
    let slow = reference::brute_dbscan(&points, eps, min_pts);
    let detail = compare_dbscan(&fast, &slow)?;
    Some(Divergence {
        check: "dbscan-brute",
        seed,
        detail: format!("{detail} (n={}, eps={eps}, min_pts={min_pts})", points.len()),
        repro: None,
    })
}

/// Compares a production DBSCAN result against the brute-force ground
/// truth; `None` = equivalent.
pub fn compare_dbscan(
    fast: &phasefold_cluster::DbscanResult,
    slow: &reference::BruteDbscan,
) -> Option<String> {
    let n = slow.core.len();
    if fast.labels.len() != n {
        return Some(format!("label count {} != point count {n}", fast.labels.len()));
    }
    if fast.num_clusters != slow.num_components {
        return Some(format!(
            "cluster count: fast {} vs reference {}",
            fast.num_clusters, slow.num_components
        ));
    }
    // Core partition must match up to relabeling: build the bijection from
    // fast labels to reference components over core points.
    let mut fast_to_ref: HashMap<usize, usize> = HashMap::new();
    let mut ref_to_fast: HashMap<usize, usize> = HashMap::new();
    for i in 0..n {
        if !slow.core[i] {
            continue;
        }
        let Some(fl) = fast.labels[i] else {
            return Some(format!("core point {i} labelled noise by fast path"));
        };
        let rl = match slow.component[i] {
            Some(rl) => rl,
            None => return Some(format!("reference lost core point {i}")),
        };
        if *fast_to_ref.entry(fl).or_insert(rl) != rl || *ref_to_fast.entry(rl).or_insert(fl) != fl
        {
            return Some(format!(
                "core partition mismatch at point {i}: fast label {fl} vs reference component {rl} breaks the bijection"
            ));
        }
    }
    // Non-core points: label must be an adjacent component (border) or
    // noise exactly when no core point is within ε.
    for i in 0..n {
        if slow.core[i] {
            continue;
        }
        match fast.labels[i] {
            Some(fl) => {
                let Some(&rl) = fast_to_ref.get(&fl) else {
                    return Some(format!("border point {i} carries unknown fast label {fl}"));
                };
                if !slow.adjacent[i].contains(&rl) {
                    return Some(format!(
                        "border point {i} assigned to component {rl}, not adjacent (adjacent: {:?})",
                        slow.adjacent[i]
                    ));
                }
            }
            None => {
                if !slow.adjacent[i].is_empty() {
                    return Some(format!(
                        "point {i} marked noise but is within ε of core component(s) {:?}",
                        slow.adjacent[i]
                    ));
                }
            }
        }
    }
    None
}

/// Differential check: `folding::fold_trace` against the naive linear-scan
/// re-fold, on the case's trace. Bit-exact.
pub fn check_fold(case: &Case, seed: u64) -> Option<Divergence> {
    let config = case.config.to_analysis();
    let mut faults = FaultReport::new();
    let bursts = extract_bursts_checked(&case.trace, config.min_burst_duration, &mut faults);
    let clustering = cluster_bursts(&bursts, &config.cluster);
    let fast = fold_trace(&case.trace, &bursts, &clustering, &config.fold);
    let slow = reference::naive_refold(&case.trace, &bursts, &clustering, &config.fold);
    let detail = compare_folds(&fast, &slow)?;
    Some(Divergence { check: "fold-naive", seed, detail, repro: None })
}

/// Compares two fold outputs bit-exactly; `None` = identical.
pub fn compare_folds(
    fast: &[phasefold_folding::ClusterFold],
    slow: &[phasefold_folding::ClusterFold],
) -> Option<String> {
    if fast.len() != slow.len() {
        return Some(format!("fold count: fast {} vs reference {}", fast.len(), slow.len()));
    }
    for (f, s) in fast.iter().zip(slow) {
        if f.cluster != s.cluster {
            return Some(format!("cluster id {} vs {}", f.cluster, s.cluster));
        }
        if f.instances_used != s.instances_used || f.instances_pruned != s.instances_pruned {
            return Some(format!(
                "cluster {}: instances used/pruned {}/{} vs {}/{}",
                f.cluster, f.instances_used, f.instances_pruned, s.instances_used, s.instances_pruned
            ));
        }
        if f.samples != s.samples {
            return Some(format!("cluster {}: samples {} vs {}", f.cluster, f.samples, s.samples));
        }
        if f.mean_duration_s.to_bits() != s.mean_duration_s.to_bits() {
            return Some(format!(
                "cluster {}: mean duration {} vs {} (bit mismatch)",
                f.cluster, f.mean_duration_s, s.mean_duration_s
            ));
        }
        if f.stacks.len() != s.stacks.len() {
            return Some(format!(
                "cluster {}: stack count {} vs {}",
                f.cluster,
                f.stacks.len(),
                s.stacks.len()
            ));
        }
        for (k, (fp, sp)) in f.profiles.iter().zip(&s.profiles).enumerate() {
            if fp.mean_total.to_bits() != sp.mean_total.to_bits() {
                return Some(format!(
                    "cluster {} counter {k}: mean_total {} vs {}",
                    f.cluster, fp.mean_total, sp.mean_total
                ));
            }
            if fp.len() != sp.len() {
                return Some(format!(
                    "cluster {} counter {k}: {} points vs {}",
                    f.cluster,
                    fp.len(),
                    sp.len()
                ));
            }
            for (i, (a, b)) in fp.iter().zip(sp.iter()).enumerate() {
                if a.x.to_bits() != b.x.to_bits()
                    || a.y.to_bits() != b.y.to_bits()
                    || a.instance != b.instance
                {
                    return Some(format!(
                        "cluster {} counter {k} point {i}: ({}, {}, inst {}) vs ({}, {}, inst {})",
                        f.cluster, a.x, a.y, a.instance, b.x, b.y, b.instance
                    ));
                }
            }
        }
    }
    None
}
