//! On-line (streaming) phase analysis.
//!
//! The companion work (Llort et al., IPDPS'10/ICPADS'11) runs the analysis
//! *while the application executes*: structure is detected once enough
//! bursts have been seen, then incoming data is classified on the fly and
//! the models keep sharpening. This module reproduces that architecture:
//!
//! * **warm-up**: buffer bursts until `warmup_bursts` have arrived, then
//!   run DBSCAN once and freeze the clustering as centroids;
//! * **streaming**: every later burst is assigned to the nearest frozen
//!   centroid (within the clustering ε, else noise) in O(k), and its
//!   samples fold straight into the per-cluster profiles;
//! * **snapshot**: at any moment, [`OnlineAnalyzer::snapshot`] fits the
//!   current folded profiles and returns a regular [`Analysis`].
//!
//! # Memory behavior
//!
//! *Before* the structure freezes, per-rank record buffers grow with the
//! stream: `freeze()` must re-fold the warm-up bursts' samples, so the
//! warm-up prefix is held whole (O(records until warm-up completes)).
//! *After* the freeze, two mechanisms bound the session:
//!
//! * **buffer compaction** — once a batch's completed bursts are folded,
//!   each rank's buffer is truncated to the records the extractor can
//!   still need: from the open burst's start (or the last timestamp when
//!   no burst is open) onward. Extraction is a single-pass state machine
//!   ([`phasefold_model::BurstExtractor`]), so nothing behind that point
//!   can influence future output; compaction is lossless by construction.
//! * **stratified reservoir sampling** — folded points are capped per
//!   stratum (stratum = frozen cluster × counter, plus one stack stratum
//!   per cluster) at [`OnlineAnalyzer::reservoir_cap`] points using
//!   Algorithm R driven by a splitmix64 stream keyed by the session seed,
//!   so sampling is deterministic given the seed and the record sequence.
//!
//! Steady-state memory is therefore O(open-burst records + reservoir caps
//! + quarantined faults), independent of stream length.
//!
//! # Batch ↔ sampled-stream equivalence bound
//!
//! Reservoir sampling never touches the *accounting*: bursts seen, per-rank
//! burst counts, cluster instance counts, counter totals, mean durations,
//! and fault reports are exact for any cap. What the cap thins is the
//! folded point cloud each per-cluster model is fitted from; the fitted
//! curves of a capped stream track the uncapped stream's within the RMS
//! tolerance enforced by phasefold-verify's `check_reservoir_stream`
//! property (curves evaluated on an even grid; RMS difference ≤ 0.08 in
//! normalized-progress units over the fuzzer spec space, cap ≥ 256; the
//! residual is dominated by breakpoint placement sensitivity in the
//! piece-wise fit, not by sample count).
//!
//! # Checkpoint / resume
//!
//! [`OnlineAnalyzer::encode_checkpoint`] serializes the complete session —
//! frozen centroids, per-cluster folds and reservoir state, per-rank resume
//! cursors (buffer tail, extractor state, monotonicity watermark), and the
//! fault report — into a versioned, length-prefixed, checksummed frame
//! ([`phasefold_model::codec`]). [`OnlineAnalyzer::restore_checkpoint`]
//! rebuilds a byte-for-byte equivalent analyzer: feeding both the original
//! and the restored analyzer the same subsequent records yields identical
//! snapshots, which is what makes crash/resume in `phasefold serve` exact.

use crate::config::AnalysisConfig;
use crate::pipeline::Analysis;
use phasefold_cluster::{cluster_bursts, Clustering};
use phasefold_folding::fold::{ClusterFold, FoldedPoint, FoldedProfile};
use phasefold_model::codec::{self, CodecError, Reader, Writer};
use phasefold_model::{
    Burst, BurstExtractor, CounterKind, Fault, FaultKind, FaultPolicy, FaultReport, ModelError,
    RankId, RankTrace, Record, Severity, TimeNs, NUM_COUNTERS,
};

/// Default cap on rank ids a session accepts. The per-rank buffers grow to
/// the largest rank id seen, so an unbounded id is an allocation
/// amplifier: one record claiming rank `u32::MAX` would otherwise demand
/// billions of `RankTrace` slots. Streamed rank ids at or above the cap
/// are faults, not allocations; see [`OnlineAnalyzer::with_max_ranks`].
pub const DEFAULT_MAX_RANKS: usize = 1 << 16;

/// Default per-stratum cap on folded points (stratum = cluster × counter).
/// Generous relative to what the segmented fit needs, small enough that a
/// week-long stream cannot grow a session past a few MiB per cluster.
pub const DEFAULT_RESERVOIR_CAP: usize = 8192;

/// Magic number of the checkpoint frame ("PFCK").
pub const CHECKPOINT_MAGIC: u32 = 0x5046_434B;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Streaming analyzer state.
#[derive(Debug)]
pub struct OnlineAnalyzer {
    config: AnalysisConfig,
    warmup_bursts: usize,
    /// Highest accepted rank id is `max_ranks - 1`; higher ids fault
    /// instead of growing the per-rank buffers.
    max_ranks: usize,
    /// Per-stratum folded-point cap (0 = unbounded).
    reservoir_cap: usize,
    /// Session seed the reservoir RNG was keyed with.
    seed: u64,
    /// splitmix64 state; serialized so resume continues the same stream.
    rng: u64,
    /// Per-rank streaming state (record buffer + extraction cursor).
    streams: Vec<RankStream>,
    /// Bursts buffered during warm-up.
    warmup: Vec<Burst>,
    /// Frozen structure after warm-up.
    frozen: Option<FrozenClustering>,
    /// Per-cluster accumulated folds (same shape as the batch path).
    folds: Vec<OnlineFold>,
    bursts_seen: usize,
    noise_bursts: usize,
    /// Defective streamed records quarantined so far (lenient path), in
    /// arrival order; carried into every [`OnlineAnalyzer::snapshot`].
    stream_faults: FaultReport,
    records_quarantined: usize,
}

/// One rank's streaming state: the compacted record buffer, the incremental
/// burst extractor, and the monotonicity watermark (which must outlive
/// compaction — the buffer's own tail is not a stable reference point once
/// old records are dropped).
#[derive(Debug, Default)]
struct RankStream {
    buf: RankTrace,
    /// Timestamp of the last accepted record; `buf`'s tail time once any
    /// record has been accepted, but stable across compaction.
    last_time: Option<TimeNs>,
    extractor: BurstExtractor,
    /// Bursts emitted for this rank so far.
    bursts_seen: usize,
}

#[derive(Debug)]
struct FrozenClustering {
    /// Cluster centroids in feature space.
    centroids: Vec<[f64; 2]>,
    /// Feature normalisation ranges captured at freeze time.
    ranges: [(f64, f64); 2],
    /// Assignment radius (the clustering ε).
    eps: f64,
}

/// Incrementally-built fold of one cluster. `points_seen`/`stacks_seen`
/// count every candidate ever offered to the stratum — the denominators
/// Algorithm R needs to keep each retained sample uniformly likely.
#[derive(Debug, Default)]
struct OnlineFold {
    points: [Vec<FoldedPoint>; NUM_COUNTERS],
    points_seen: [u64; NUM_COUNTERS],
    stacks: Vec<(f64, std::sync::Arc<phasefold_model::CallStack>)>,
    stacks_seen: u64,
    totals: [f64; NUM_COUNTERS],
    total_dur_s: f64,
    instances: u32,
    samples: usize,
}

/// One splitmix64 step (Steele et al.); the full 2^64-period generator in
/// three multiplies, with state small enough to live in a checkpoint.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Algorithm R: keeps `vec` a uniform sample of everything ever offered.
/// `cap == 0` means unbounded (always keep).
fn reservoir_push<T>(vec: &mut Vec<T>, seen: &mut u64, cap: usize, rng: &mut u64, item: T) {
    *seen += 1;
    if cap == 0 || vec.len() < cap {
        vec.push(item);
        return;
    }
    let j = splitmix64(rng) % *seen;
    if (j as usize) < cap {
        vec[j as usize] = item;
    }
}

impl OnlineAnalyzer {
    /// Creates a streaming analyzer. `warmup_bursts` controls when the
    /// structure freezes (a few hundred is typical).
    pub fn new(config: AnalysisConfig, warmup_bursts: usize) -> OnlineAnalyzer {
        OnlineAnalyzer {
            config,
            warmup_bursts: warmup_bursts.max(8),
            max_ranks: DEFAULT_MAX_RANKS,
            reservoir_cap: DEFAULT_RESERVOIR_CAP,
            seed: 0,
            rng: 0,
            streams: Vec::new(),
            warmup: Vec::new(),
            frozen: None,
            folds: Vec::new(),
            bursts_seen: 0,
            noise_bursts: 0,
            stream_faults: FaultReport::new(),
            records_quarantined: 0,
        }
    }

    /// Overrides [`DEFAULT_MAX_RANKS`]. Records for rank ids at or above
    /// the cap are rejected as faults (strict) or quarantined (lenient)
    /// rather than allocating per-rank state, so a hostile rank id cannot
    /// balloon the session's memory.
    #[must_use]
    pub fn with_max_ranks(mut self, max_ranks: usize) -> OnlineAnalyzer {
        self.max_ranks = max_ranks.max(1);
        self
    }

    /// Keys the reservoir-sampling RNG. Two sessions fed identical records
    /// with identical seeds retain identical samples (and therefore produce
    /// identical snapshots); the seed travels in the checkpoint.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> OnlineAnalyzer {
        self.seed = seed;
        self.rng = seed;
        self
    }

    /// Overrides [`DEFAULT_RESERVOIR_CAP`] (0 disables sampling — points
    /// then grow without bound, the pre-reservoir behavior).
    #[must_use]
    pub fn with_reservoir_cap(mut self, cap: usize) -> OnlineAnalyzer {
        self.reservoir_cap = cap;
        self
    }

    /// The rank-id cap this session enforces.
    pub fn max_ranks(&self) -> usize {
        self.max_ranks
    }

    /// The session's reservoir seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-stratum folded-point cap (0 = unbounded).
    pub fn reservoir_cap(&self) -> usize {
        self.reservoir_cap
    }

    /// True once the structure has been frozen.
    pub fn is_warm(&self) -> bool {
        self.frozen.is_some()
    }

    /// Bursts processed so far (including noise).
    pub fn bursts_seen(&self) -> usize {
        self.bursts_seen
    }

    /// Bursts that did not match any frozen cluster.
    pub fn noise_bursts(&self) -> usize {
        self.noise_bursts
    }

    /// Bursts processed so far for `rank` (the per-rank resume cursor).
    /// Lets batch/online equivalence checks compare burst sequences rank
    /// by rank instead of only in aggregate.
    pub fn rank_bursts_seen(&self, rank: RankId) -> usize {
        self.streams.get(rank.0 as usize).map_or(0, |s| s.bursts_seen)
    }

    /// Defective records quarantined from the stream so far.
    pub fn records_quarantined(&self) -> usize {
        self.records_quarantined
    }

    /// The faults quarantined from the stream so far (lenient path). They
    /// are also carried into every [`OnlineAnalyzer::snapshot`].
    pub fn stream_faults(&self) -> &FaultReport {
        &self.stream_faults
    }

    /// Records an externally-detected fault against this session (e.g. a
    /// torn write-ahead-log tail discovered during recovery), so it rides
    /// along in [`OnlineAnalyzer::stream_faults`] and every snapshot.
    pub fn quarantine(&mut self, fault: Fault) {
        self.stream_faults.push(fault);
    }

    /// Estimated resident bytes of this session's retained state: record
    /// buffers, warm-up bursts, folded reservoirs, and the fault report.
    /// An estimate (capacity slack and small allocations are not tracked),
    /// intended for gauges and eviction heuristics, not accounting.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = size_of::<OnlineAnalyzer>();
        for s in &self.streams {
            total += size_of::<RankStream>() + s.buf.len() * size_of::<Record>();
        }
        total += self.warmup.len() * size_of::<Burst>();
        for fold in &self.folds {
            total += size_of::<OnlineFold>();
            for pts in &fold.points {
                total += pts.len() * size_of::<FoldedPoint>();
            }
            for (_, stack) in &fold.stacks {
                total += size_of::<(f64, std::sync::Arc<phasefold_model::CallStack>)>()
                    + size_of::<phasefold_model::CallStack>()
                    + stack.frames.len() * size_of::<phasefold_model::RegionId>();
            }
        }
        for fault in &self.stream_faults.faults {
            total += size_of::<Fault>() + fault.detail.len();
        }
        total
    }

    /// Feeds a batch of records for `rank` (expected in time order per
    /// rank). Bursts complete as their closing communication record
    /// arrives.
    ///
    /// This is the always-lenient entry point: a defective record (e.g. a
    /// non-monotonic timestamp from a glitching collector clock) is
    /// quarantined into [`OnlineAnalyzer::stream_faults`] and skipped —
    /// it never poisons the session. Callers that want the configured
    /// [`FaultPolicy`] to govern streaming use
    /// [`OnlineAnalyzer::try_push_records`].
    pub fn push_records(&mut self, rank: RankId, records: &[Record]) {
        // Forced-lenient: the Err arm is unreachable by construction.
        let _ = self.push_inner(rank, records, FaultPolicy::Lenient);
    }

    /// Feeds a batch of records for `rank`, honouring the analyzer's
    /// configured [`FaultPolicy`] — the streaming mirror of
    /// [`crate::try_analyze_trace`].
    ///
    /// Under [`FaultPolicy::Lenient`] defective records are quarantined
    /// (recorded in [`OnlineAnalyzer::stream_faults`] with rank
    /// provenance) and the healthy remainder is processed; returns the
    /// number of records accepted. Under [`FaultPolicy::Strict`] the first
    /// defective record aborts the batch with its fault; records before it
    /// are kept and bursts they complete are still processed.
    pub fn try_push_records(
        &mut self,
        rank: RankId,
        records: &[Record],
    ) -> Result<usize, Fault> {
        self.push_inner(rank, records, self.config.fault_policy)
    }

    fn push_inner(
        &mut self,
        rank: RankId,
        records: &[Record],
        policy: FaultPolicy,
    ) -> Result<usize, Fault> {
        let idx = rank.0 as usize;
        if idx >= self.max_ranks {
            let fault = Fault::new(
                FaultKind::MalformedTrace,
                format!("rank {} exceeds the session rank cap {}", rank.0, self.max_ranks),
            )
            .on_rank(rank.0);
            return match policy {
                FaultPolicy::Strict => Err(fault),
                FaultPolicy::Lenient => {
                    phasefold_obs::counter!("online.records_quarantined", records.len());
                    self.records_quarantined += records.len();
                    self.stream_faults.push(fault);
                    Ok(0)
                }
            };
        }
        while self.streams.len() <= idx {
            self.streams.push(RankStream::default());
        }
        let was_warm = self.frozen.is_some();
        let min_duration = self.config.min_burst_duration;
        let mut accepted = 0usize;
        let mut aborted: Option<Fault> = None;
        let mut completed: Vec<Burst> = Vec::new();
        let mut extraction_faults = FaultReport::new();
        for r in records {
            let stream = &mut self.streams[idx];
            if let Some(previous) = stream.last_time.filter(|last| r.time() < *last) {
                let fault = Fault::from(ModelError::OutOfOrder { at: r.time(), previous })
                    .on_rank(rank.0);
                match policy {
                    FaultPolicy::Strict => {
                        aborted = Some(fault);
                        break;
                    }
                    FaultPolicy::Lenient => {
                        phasefold_obs::counter!("online.records_quarantined", 1);
                        self.records_quarantined += 1;
                        self.stream_faults.push(fault);
                        continue;
                    }
                }
            }
            stream.last_time = Some(r.time());
            // Cannot fail: `last_time` tracks the buffer tail across
            // compaction, and the check above rejected anything earlier.
            let _ = stream.buf.push(r.clone());
            accepted += 1;
            completed.extend(stream.extractor.push(rank, r, min_duration, &mut extraction_faults));
        }
        for fault in extraction_faults.faults {
            phasefold_obs::counter!("online.bursts_quarantined", 1);
            self.stream_faults.push(fault);
        }
        // Records accepted before an abort are real: complete their bursts
        // either way so the session state stays consistent.
        for burst in completed {
            self.process_burst(burst, idx);
        }
        // Compact only once warm: `freeze()` re-folds the warm-up bursts'
        // samples, so pre-freeze buffers must stay whole. The freeze can
        // happen mid-batch, in which case every rank's buffer compacts now.
        if self.frozen.is_some() {
            if was_warm {
                self.compact(idx);
            } else {
                for i in 0..self.streams.len() {
                    self.compact(i);
                }
            }
        }
        match aborted {
            Some(fault) => Err(fault),
            None => Ok(accepted),
        }
    }

    /// Drops buffered records the extractor can no longer need: everything
    /// strictly before the open burst's start, or — when no burst is open —
    /// before the last accepted timestamp (a future burst can still open
    /// *at* that timestamp and claim equal-time samples). Lossless because
    /// extraction is single-pass and `samples_within` only ever queries
    /// `[start, end)` of bursts at or after the open point.
    fn compact(&mut self, idx: usize) {
        let stream = &mut self.streams[idx];
        let horizon = match stream.extractor.open_start() {
            Some(start) => start,
            None => match stream.last_time {
                Some(last) => last,
                None => return,
            },
        };
        let drop = stream.buf.records().partition_point(|r| r.time() < horizon);
        stream.buf.drop_first(drop);
    }

    fn process_burst(&mut self, burst: Burst, rank_idx: usize) {
        phasefold_obs::counter!("online.bursts_streamed", 1);
        self.bursts_seen += 1;
        self.streams[rank_idx].bursts_seen += 1;
        if self.frozen.is_none() {
            self.warmup.push(burst);
            if self.warmup.len() >= self.warmup_bursts {
                self.freeze();
            }
            return;
        }
        let assigned = self.assign(&burst);
        match assigned {
            Some(cluster) => self.fold_burst(&burst, rank_idx, cluster),
            None => self.noise_bursts += 1,
        }
    }

    /// Runs the batch clustering on the warm-up bursts and freezes it.
    fn freeze(&mut self) {
        let _sp = phasefold_obs::span!("online.freeze");
        let clustering: Clustering = cluster_bursts(&self.warmup, &self.config.cluster);
        let features = phasefold_cluster::extract_features(&self.warmup);
        let mut centroids = vec![[0.0f64; 2]; clustering.num_clusters];
        let mut counts = vec![0usize; clustering.num_clusters];
        for (point, label) in features.points.iter().zip(&clustering.labels) {
            if let Some(c) = label {
                centroids[*c][0] += point[0];
                centroids[*c][1] += point[1];
                counts[*c] += 1;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            if *n > 0 {
                c[0] /= *n as f64;
                c[1] /= *n as f64;
            }
        }
        self.folds = (0..clustering.num_clusters).map(|_| OnlineFold::default()).collect();
        self.frozen = Some(FrozenClustering {
            centroids,
            ranges: features.ranges,
            eps: clustering.eps,
        });
        // Re-process the warm-up bursts through the frozen path so their
        // samples are folded too.
        let warmup = std::mem::take(&mut self.warmup);
        for burst in &warmup {
            let rank_idx = burst.id.rank.0 as usize;
            match self.assign(burst) {
                Some(cluster) => self.fold_burst(burst, rank_idx, cluster),
                None => self.noise_bursts += 1,
            }
        }
    }

    /// Nearest-centroid assignment within ε.
    fn assign(&self, burst: &Burst) -> Option<usize> {
        let frozen = self.frozen.as_ref()?;
        let dur = burst.duration().as_secs_f64().max(1e-12).log10();
        let ins = burst.counters[CounterKind::Instructions].max(1.0).log10();
        let raw = [dur, ins];
        let mut point = [0.0f64; 2];
        for d in 0..2 {
            let (lo, hi) = frozen.ranges[d];
            let span = (hi - lo).max(1.0);
            point[d] = (raw[d] - lo) / span;
        }
        let mut best: Option<(usize, f64)> = None;
        for (c, centroid) in frozen.centroids.iter().enumerate() {
            let dx = point[0] - centroid[0];
            let dy = point[1] - centroid[1];
            let dist = (dx * dx + dy * dy).sqrt();
            if best.is_none_or(|(_, bd)| dist < bd) {
                best = Some((c, dist));
            }
        }
        // Assignment radius: ε plus slack for centroid-vs-border geometry.
        best.filter(|(_, d)| *d <= frozen.eps * 2.0).map(|(c, _)| c)
    }

    /// Folds one burst's samples into its cluster's profiles, thinning each
    /// stratum through its reservoir once it reaches the cap.
    fn fold_burst(&mut self, burst: &Burst, rank_idx: usize, cluster: usize) {
        let fold = &mut self.folds[cluster];
        let instance = fold.instances;
        fold.instances += 1;
        fold.total_dur_s += burst.duration().as_secs_f64();
        for (i, t) in fold.totals.iter_mut().enumerate() {
            *t += burst.counters.as_array()[i];
        }
        let cap = self.reservoir_cap;
        let stream = &self.streams[rank_idx].buf;
        for sample in phasefold_model::burst::samples_within(stream, burst.start, burst.end) {
            fold.samples += 1;
            let x = sample.time.normalized_within(burst.start, burst.end);
            if !sample.callstack.is_empty() {
                // One deep copy out of the record buffer; later snapshot
                // clones of the fold only bump the refcount.
                reservoir_push(
                    &mut fold.stacks,
                    &mut fold.stacks_seen,
                    cap,
                    &mut self.rng,
                    (x, std::sync::Arc::new(sample.callstack.clone())),
                );
            }
            for (kind, absolute) in sample.counters.iter() {
                let total = burst.counters[kind];
                if total <= 0.0 {
                    continue;
                }
                let delta = absolute - burst.start_counters[kind];
                let y = (delta / total).clamp(0.0, 1.0);
                reservoir_push(
                    &mut fold.points[kind.index()],
                    &mut fold.points_seen[kind.index()],
                    cap,
                    &mut self.rng,
                    FoldedPoint { x, y, instance },
                );
            }
        }
    }

    /// Fits the current state into a regular [`Analysis`]. Cheap enough to
    /// call periodically; the folds are not consumed.
    pub fn snapshot(&self) -> Analysis {
        let _sp = phasefold_obs::span!("online.snapshot");
        let mut models = Vec::new();
        // Stream-level quarantines come first: they happened first.
        let mut faults = self.stream_faults.clone();
        let mut labels_placeholder = Vec::new();
        for (cluster, fold) in self.folds.iter().enumerate() {
            let cluster_fold = ClusterFold {
                cluster,
                profiles: std::array::from_fn(|i| {
                    FoldedProfile::from_points(
                        &fold.points[i],
                        fold.totals[i] / fold.instances.max(1) as f64,
                    )
                }),
                stacks: fold.stacks.clone(),
                mean_duration_s: fold.total_dur_s / fold.instances.max(1) as f64,
                instances_used: fold.instances as usize,
                instances_pruned: 0,
                samples: fold.samples,
            };
            if let Some(model) =
                crate::pipeline::build_model_checked(&cluster_fold, &self.config, &mut faults.faults)
            {
                models.push(model);
            }
            labels_placeholder.push(Some(cluster));
        }
        crate::pipeline::sort_models_by_total_time(&mut models);
        Analysis {
            clustering: Clustering {
                labels: labels_placeholder,
                num_clusters: self.folds.len(),
                eps: self.frozen.as_ref().map_or(0.0, |f| f.eps),
                spmd_score: 1.0,
            },
            num_bursts: self.bursts_seen,
            models,
            faults,
        }
    }

    /// Serializes the complete session into a versioned, length-prefixed,
    /// checksummed frame (see the module docs). The analysis *config* is
    /// deliberately not serialized — the daemon owns it and re-supplies it
    /// on [`OnlineAnalyzer::restore_checkpoint`], so a config upgrade does
    /// not invalidate old checkpoints.
    pub fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_usize(self.warmup_bursts);
        w.put_usize(self.max_ranks);
        w.put_usize(self.reservoir_cap);
        w.put_u64(self.seed);
        w.put_u64(self.rng);
        w.put_usize(self.bursts_seen);
        w.put_usize(self.noise_bursts);
        w.put_usize(self.records_quarantined);
        w.put_usize(self.stream_faults.faults.len());
        for fault in &self.stream_faults.faults {
            codec::put_fault(&mut w, fault);
        }
        w.put_usize(self.streams.len());
        for s in &self.streams {
            match s.last_time {
                None => w.put_bool(false),
                Some(t) => {
                    w.put_bool(true);
                    w.put_u64(t.0);
                }
            }
            w.put_usize(s.bursts_seen);
            codec::put_extractor(&mut w, &s.extractor);
            w.put_usize(s.buf.len());
            for r in s.buf.records() {
                codec::put_record(&mut w, r);
            }
        }
        w.put_usize(self.warmup.len());
        for b in &self.warmup {
            codec::put_burst(&mut w, b);
        }
        match &self.frozen {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                w.put_usize(f.centroids.len());
                for c in &f.centroids {
                    w.put_f64(c[0]);
                    w.put_f64(c[1]);
                }
                for (lo, hi) in &f.ranges {
                    w.put_f64(*lo);
                    w.put_f64(*hi);
                }
                w.put_f64(f.eps);
            }
        }
        w.put_usize(self.folds.len());
        for fold in &self.folds {
            for i in 0..NUM_COUNTERS {
                w.put_usize(fold.points[i].len());
                for p in &fold.points[i] {
                    w.put_f64(p.x);
                    w.put_f64(p.y);
                    w.put_u32(p.instance);
                }
                w.put_u64(fold.points_seen[i]);
            }
            w.put_usize(fold.stacks.len());
            for (x, stack) in &fold.stacks {
                w.put_f64(*x);
                codec::put_callstack(&mut w, stack);
            }
            w.put_u64(fold.stacks_seen);
            for t in &fold.totals {
                w.put_f64(*t);
            }
            w.put_f64(fold.total_dur_s);
            w.put_u32(fold.instances);
            w.put_usize(fold.samples);
        }
        codec::frame(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &w.into_bytes())
    }

    /// Rebuilds a session from [`OnlineAnalyzer::encode_checkpoint`] bytes.
    /// The restored analyzer is behaviorally identical to the one that was
    /// encoded: identical subsequent input yields identical snapshots.
    /// Torn, corrupt, or foreign bytes come back as a single
    /// [`FaultKind::Io`] fault (severity [`Severity::Error`]) for the
    /// caller to quarantine — never a panic.
    pub fn restore_checkpoint(
        config: AnalysisConfig,
        bytes: &[u8],
    ) -> Result<OnlineAnalyzer, Fault> {
        Self::decode_checkpoint(config, bytes).map_err(|e| {
            Fault::new(FaultKind::Io, format!("checkpoint rejected: {e}"))
                .severity(Severity::Error)
        })
    }

    fn decode_checkpoint(
        config: AnalysisConfig,
        bytes: &[u8],
    ) -> Result<OnlineAnalyzer, CodecError> {
        let (_version, payload) = codec::unframe(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, bytes)?;
        let r = &mut Reader::new(payload);
        let mut a = OnlineAnalyzer::new(config, 8);
        a.warmup_bursts = r.get_u64()? as usize;
        a.max_ranks = (r.get_u64()? as usize).max(1);
        a.reservoir_cap = r.get_u64()? as usize;
        a.seed = r.get_u64()?;
        a.rng = r.get_u64()?;
        a.bursts_seen = r.get_u64()? as usize;
        a.noise_bursts = r.get_u64()? as usize;
        a.records_quarantined = r.get_u64()? as usize;
        let n_faults = r.get_count(2)?;
        for _ in 0..n_faults {
            a.stream_faults.push(codec::get_fault(r)?);
        }
        let n_streams = r.get_count(1)?;
        for _ in 0..n_streams {
            let last_time = if r.get_bool()? { Some(TimeNs(r.get_u64()?)) } else { None };
            let bursts_seen = r.get_u64()? as usize;
            let extractor = codec::get_extractor(r)?;
            let n_records = r.get_count(9)?;
            let mut buf = RankTrace::new();
            for _ in 0..n_records {
                let record = codec::get_record(r)?;
                buf.push(record).map_err(|e| {
                    CodecError::Malformed(format!("buffered records out of order: {e}"))
                })?;
            }
            a.streams.push(RankStream { buf, last_time, extractor, bursts_seen });
        }
        let n_warmup = r.get_count(8)?;
        for _ in 0..n_warmup {
            a.warmup.push(codec::get_burst(r)?);
        }
        if r.get_bool()? {
            let n_centroids = r.get_count(16)?;
            let mut centroids = Vec::with_capacity(n_centroids);
            for _ in 0..n_centroids {
                centroids.push([r.get_f64()?, r.get_f64()?]);
            }
            let mut ranges = [(0.0f64, 0.0f64); 2];
            for range in &mut ranges {
                *range = (r.get_f64()?, r.get_f64()?);
            }
            let eps = r.get_f64()?;
            a.frozen = Some(FrozenClustering { centroids, ranges, eps });
        }
        let n_folds = r.get_count(8)?;
        for _ in 0..n_folds {
            let mut fold = OnlineFold::default();
            for i in 0..NUM_COUNTERS {
                let n_points = r.get_count(20)?;
                fold.points[i].reserve(n_points);
                for _ in 0..n_points {
                    fold.points[i].push(FoldedPoint {
                        x: r.get_f64()?,
                        y: r.get_f64()?,
                        instance: r.get_u32()?,
                    });
                }
                fold.points_seen[i] = r.get_u64()?;
            }
            let n_stacks = r.get_count(8)?;
            for _ in 0..n_stacks {
                let x = r.get_f64()?;
                let stack = codec::get_callstack(r)?;
                fold.stacks.push((x, std::sync::Arc::new(stack)));
            }
            fold.stacks_seen = r.get_u64()?;
            for t in &mut fold.totals {
                *t = r.get_f64()?;
            }
            fold.total_dur_s = r.get_f64()?;
            fold.instances = r.get_u32()?;
            fold.samples = r.get_u64()? as usize;
            a.folds.push(fold);
        }
        if !r.is_done() {
            return Err(CodecError::Malformed(format!(
                "{} trailing bytes after checkpoint payload",
                r.remaining()
            )));
        }
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
    use phasefold_simapp::{simulate, SimConfig};
    use phasefold_tracer::{trace_run, TracerConfig};

    fn traced() -> phasefold_model::Trace {
        let program = build(&SyntheticParams { iterations: 300, ..SyntheticParams::default() });
        let out = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
        trace_run(&program.registry, &out.timelines, &TracerConfig::default())
    }

    #[test]
    fn streaming_matches_batch_structure() {
        let trace = traced();
        let config = AnalysisConfig::default();
        let batch = crate::pipeline::analyze_trace(&trace, &config);

        let mut online = OnlineAnalyzer::new(config, 100);
        // Feed records in chunks of 50 per rank, interleaved.
        let streams: Vec<_> = trace.iter_ranks().collect();
        let max_len = streams.iter().map(|(_, s)| s.len()).max().unwrap();
        let mut offset = 0;
        while offset < max_len {
            for (rank, stream) in &streams {
                let records = stream.records();
                let end = (offset + 50).min(records.len());
                if offset < end {
                    online.push_records(*rank, &records[offset..end]);
                }
            }
            offset += 50;
        }
        assert!(online.is_warm());
        let snap = online.snapshot();
        assert_eq!(snap.models.len(), batch.models.len());
        let bm = batch.dominant_model().unwrap();
        let om = snap.dominant_model().unwrap();
        assert_eq!(om.phases.len(), bm.phases.len());
        for (a, b) in om.breakpoints().iter().zip(bm.breakpoints()) {
            assert!((a - b).abs() < 0.02, "online {a} vs batch {b}");
        }
    }

    #[test]
    fn snapshot_before_warmup_is_empty() {
        let trace = traced();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 1_000_000);
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        online.push_records(rank, &stream.records()[..200]);
        assert!(!online.is_warm());
        let snap = online.snapshot();
        assert!(snap.models.is_empty());
        assert!(online.bursts_seen() > 0);
    }

    #[test]
    fn snapshots_sharpen_with_more_data() {
        let trace = traced();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 80);
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        let records = stream.records();
        online.push_records(rank, &records[..records.len() / 2]);
        let early = online.snapshot();
        online.push_records(rank, &records[records.len() / 2..]);
        let late = online.snapshot();
        let early_samples = early.models.first().map_or(0, |m| m.folded_samples);
        let late_samples = late.models.first().map_or(0, |m| m.folded_samples);
        assert!(late_samples > early_samples);
    }

    #[test]
    fn lenient_stream_quarantines_out_of_order_records() {
        let trace = traced();
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        let records = stream.records();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 80);
        // Interleave a corrupt batch: records [100..200] replayed after
        // [0..300] all carry stale timestamps.
        online.push_records(rank, &records[..300]);
        online.push_records(rank, &records[100..200]);
        assert_eq!(online.records_quarantined(), 100);
        assert_eq!(online.stream_faults().len(), 100);
        assert_eq!(
            online.stream_faults().faults[0].kind,
            phasefold_model::FaultKind::NonMonotonicTime
        );
        assert_eq!(online.stream_faults().faults[0].provenance.rank, Some(rank.0));
        // The session is not poisoned: the rest of the stream still folds
        // and the snapshot carries the quarantine report.
        online.push_records(rank, &records[300..]);
        assert!(online.is_warm());
        let snap = online.snapshot();
        assert!(!snap.models.is_empty());
        assert!(snap.faults.len() >= 100);
        assert_eq!(
            snap.faults.faults[0].kind,
            phasefold_model::FaultKind::NonMonotonicTime
        );
    }

    #[test]
    fn strict_stream_aborts_on_first_bad_record() {
        use phasefold_model::FaultPolicy;
        let trace = traced();
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        let records = stream.records();
        let config =
            AnalysisConfig { fault_policy: FaultPolicy::Strict, ..AnalysisConfig::default() };
        let mut online = OnlineAnalyzer::new(config, 80);
        assert_eq!(online.try_push_records(rank, &records[..200]).unwrap(), 200);
        let err = online.try_push_records(rank, &records[..50]).unwrap_err();
        assert_eq!(err.kind, phasefold_model::FaultKind::NonMonotonicTime);
        assert_eq!(err.provenance.rank, Some(rank.0));
        // Nothing was quarantined silently under strict.
        assert_eq!(online.records_quarantined(), 0);
        // The session keeps working with well-formed batches.
        assert_eq!(
            online.try_push_records(rank, &records[200..]).unwrap(),
            records.len() - 200
        );
    }

    #[test]
    fn hostile_rank_id_faults_instead_of_allocating() {
        use phasefold_model::FaultPolicy;
        let trace = traced();
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        let records = stream.records();

        // Lenient (default): the batch is quarantined wholesale, nothing
        // is allocated for the bogus rank, and the session stays usable.
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 80);
        online.push_records(RankId(u32::MAX), &records[..50]);
        assert_eq!(online.records_quarantined(), 50);
        assert_eq!(
            online.stream_faults().faults[0].kind,
            phasefold_model::FaultKind::MalformedTrace
        );
        assert_eq!(online.stream_faults().faults[0].provenance.rank, Some(u32::MAX));
        online.push_records(rank, records);
        assert!(online.is_warm());

        // Strict: the batch aborts with the fault; later batches work.
        let config =
            AnalysisConfig { fault_policy: FaultPolicy::Strict, ..AnalysisConfig::default() };
        let mut strict = OnlineAnalyzer::new(config, 80).with_max_ranks(4);
        let err = strict.try_push_records(RankId(4), &records[..10]).unwrap_err();
        assert_eq!(err.kind, phasefold_model::FaultKind::MalformedTrace);
        assert_eq!(strict.try_push_records(RankId(3), &records[..10]).unwrap(), 10);
    }

    #[test]
    fn noise_bursts_counted_not_crashed() {
        let trace = traced();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 50);
        for (rank, stream) in trace.iter_ranks() {
            online.push_records(rank, stream.records());
        }
        // Outlier bursts exist under quiet noise; they become noise or get
        // absorbed — either way, accounting must close.
        let snap = online.snapshot();
        let folded: usize = snap.models.iter().map(|m| m.instances).sum();
        assert!(folded + online.noise_bursts() <= online.bursts_seen());
    }

    #[test]
    fn buffers_compact_after_freeze() {
        let trace = traced();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 50);
        let mut total_streamed = 0usize;
        for (rank, stream) in trace.iter_ranks() {
            total_streamed += stream.len();
            online.push_records(rank, stream.records());
        }
        assert!(online.is_warm());
        let retained: usize = online.streams.iter().map(|s| s.buf.len()).sum();
        // Only the open-burst tail may remain — a handful of records, not
        // the stream. (The pre-compaction behavior retained everything.)
        assert!(
            retained * 10 < total_streamed,
            "retained {retained} of {total_streamed} records"
        );
        // The estimate must reflect the compacted footprint, not the
        // full stream (~96 bytes/record streamed).
        assert!(online.resident_bytes() < total_streamed * 96);
    }

    /// Digest of everything a snapshot asserts, bit-level for floats, so
    /// checkpoint/resume equivalence can demand exactness.
    fn snapshot_digest(a: &OnlineAnalyzer) -> String {
        use std::fmt::Write as _;
        let snap = a.snapshot();
        let mut out = String::new();
        let _ = write!(
            out,
            "bursts={} noise={} quarantined={} faults={} clusters={}",
            a.bursts_seen(),
            a.noise_bursts(),
            a.records_quarantined(),
            snap.faults.len(),
            snap.clustering.num_clusters,
        );
        for m in &snap.models {
            let _ = write!(out, " model[instances={} samples={}](", m.instances, m.folded_samples);
            for bp in m.breakpoints() {
                let _ = write!(out, "{:016x},", bp.to_bits());
            }
            let _ = write!(out, ")");
        }
        out
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_exact() {
        let trace = traced();
        let config = AnalysisConfig::default();
        let mut original = OnlineAnalyzer::new(config.clone(), 60).with_seed(42);
        let streams: Vec<_> = trace.iter_ranks().collect();
        // Stream the first half, checkpoint mid-stream (warm, open bursts,
        // non-trivial reservoir state), restore, then finish both.
        for (rank, stream) in &streams {
            let records = stream.records();
            original.push_records(*rank, &records[..records.len() / 2]);
        }
        assert!(original.is_warm(), "checkpoint must capture a frozen session");
        let bytes = original.encode_checkpoint();
        let mut restored =
            OnlineAnalyzer::restore_checkpoint(config, &bytes).expect("clean restore");
        assert_eq!(restored.seed(), 42);
        assert_eq!(restored.bursts_seen(), original.bursts_seen());
        for (rank, stream) in &streams {
            let records = stream.records();
            original.push_records(*rank, &records[records.len() / 2..]);
            restored.push_records(*rank, &records[records.len() / 2..]);
        }
        assert_eq!(snapshot_digest(&original), snapshot_digest(&restored));
    }

    #[test]
    fn checkpoint_rejects_corruption_with_fault_not_panic() {
        let trace = traced();
        let config = AnalysisConfig::default();
        let mut online = OnlineAnalyzer::new(config.clone(), 60);
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        online.push_records(rank, stream.records());
        let bytes = online.encode_checkpoint();
        // Flip one payload byte: checksum must catch it.
        let mut corrupt = bytes.clone();
        corrupt[bytes.len() / 2] ^= 0x20;
        let err = OnlineAnalyzer::restore_checkpoint(config.clone(), &corrupt).unwrap_err();
        assert_eq!(err.kind, FaultKind::Io);
        assert!(err.detail.contains("checksum"), "got: {}", err.detail);
        // Truncation (torn write) is equally typed.
        let err =
            OnlineAnalyzer::restore_checkpoint(config.clone(), &bytes[..bytes.len() - 5])
                .unwrap_err();
        assert_eq!(err.kind, FaultKind::Io);
        // And an empty file.
        assert!(OnlineAnalyzer::restore_checkpoint(config, &[]).is_err());
    }

    #[test]
    fn reservoir_caps_points_and_stays_deterministic() {
        let trace = traced();
        let config = AnalysisConfig::default();
        let run = |cap: usize, seed: u64| {
            let mut online =
                OnlineAnalyzer::new(config.clone(), 60).with_reservoir_cap(cap).with_seed(seed);
            for (rank, stream) in trace.iter_ranks() {
                online.push_records(rank, stream.records());
            }
            online
        };
        let capped = run(64, 7);
        for fold in &capped.folds {
            for pts in &fold.points {
                assert!(pts.len() <= 64, "stratum overflowed: {}", pts.len());
            }
            assert!(fold.stacks.len() <= 64);
        }
        // Sampling dropped points without touching the accounting.
        let unbounded = run(0, 7);
        assert_eq!(capped.bursts_seen(), unbounded.bursts_seen());
        assert_eq!(capped.noise_bursts(), unbounded.noise_bursts());
        let sampled_pts: usize =
            capped.folds.iter().flat_map(|f| f.points.iter()).map(Vec::len).sum();
        let full_pts: usize =
            unbounded.folds.iter().flat_map(|f| f.points.iter()).map(Vec::len).sum();
        assert!(sampled_pts < full_pts, "cap 64 must actually thin ({full_pts} points)");
        for (cf, uf) in capped.folds.iter().zip(&unbounded.folds) {
            assert_eq!(cf.instances, uf.instances);
            assert_eq!(cf.samples, uf.samples);
            assert_eq!(cf.points_seen, uf.points_seen);
            assert_eq!(cf.totals, uf.totals);
        }
        // Same seed → identical retained sample; snapshots bit-identical.
        assert_eq!(snapshot_digest(&run(64, 7)), snapshot_digest(&capped));
    }
}
