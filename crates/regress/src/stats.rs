//! Descriptive statistics used throughout the pipeline: streaming moments
//! (Welford), order statistics, robust scale (MAD), and error metrics.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// A fresh accumulator.
    pub fn new() -> Moments {
        Moments::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
    }
}

/// `q`-quantile (0 ≤ q ≤ 1) of a slice by linear interpolation between order
/// statistics. Returns `None` for an empty slice; does not require `data`
/// to be sorted.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(quantile_sorted(&sorted, q))
}

/// `q`-quantile of an already-sorted slice (panics on empty input).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median; `None` for an empty slice.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Median absolute deviation (raw, not scaled to σ); `None` if empty.
///
/// Used to prune outlier instances before folding: instances whose duration
/// deviates from the median by more than `k·MAD` are dropped.
pub fn mad(data: &[f64]) -> Option<f64> {
    let med = median(data)?;
    let deviations: Vec<f64> = data.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// Root mean square error between two equal-length series.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let sse: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sse / a.len() as f64).sqrt()
}

/// Mean absolute error between two equal-length series.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Mean absolute *relative* error `mean(|a−b| / max(|b|, floor))`.
///
/// This is the "absolute mean difference" metric the folding papers report
/// (folded vs fine-grain profiles, claimed < 5 %).
pub fn mean_abs_rel_error(estimate: &[f64], reference: &[f64], floor: f64) -> f64 {
    assert_eq!(estimate.len(), reference.len());
    if estimate.is_empty() {
        return 0.0;
    }
    estimate
        .iter()
        .zip(reference)
        .map(|(e, r)| (e - r).abs() / r.abs().max(floor))
        .sum::<f64>()
        / estimate.len() as f64
}

/// Coefficient of determination R² of predictions vs observations.
/// Returns 1.0 when the observations have zero variance and the
/// predictions match them exactly, 0.0 when they do not.
pub fn r_squared(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len());
    if observed.is_empty() {
        return 1.0;
    }
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    let ss_tot: f64 = observed.iter().map(|y| (y - mean) * (y - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(observed)
        .map(|(p, y)| (y - p) * (y - p))
        .sum();
    if ss_tot <= 0.0 {
        if ss_res <= 1e-30 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &data {
            m.push(x);
        }
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Moments::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Moments::new();
        let mut b = Moments::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Moments::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.mean(), a.variance(), a.count());
        a.merge(&Moments::new());
        assert_eq!((a.mean(), a.variance(), a.count()), before);

        let mut empty = Moments::new();
        empty.merge(&a);
        assert_eq!((empty.mean(), empty.variance(), empty.count()), before);
    }

    #[test]
    fn quantiles() {
        let data = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(median(&data), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
        // Interpolation: q=0.25 over [1,2,3,4] -> 1.75
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[5.0, 5.0, 5.0]), Some(0.0));
        assert_eq!(mad(&[]), None);
    }

    #[test]
    fn mad_known_value() {
        // data: 1 2 3 4 100; median 3, |dev| = 2 1 0 1 97, MAD = 1
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 100.0]), Some(1.0));
    }

    #[test]
    fn error_metrics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 5.0];
        assert!((rmse(&a, &b) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((mean_abs_rel_error(&a, &b, 1e-9) - (2.0 / 5.0) / 3.0).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &y).abs() < 1e-12);
        // Constant observations.
        assert_eq!(r_squared(&[7.0, 7.0], &[7.0, 7.0]), 1.0);
        assert_eq!(r_squared(&[7.0, 8.0], &[7.0, 7.0]), 0.0);
    }
}
