//! Panic isolation in the work-stealing pool: one panicking task among
//! many real ones must not abort, deadlock, or take neighbouring tasks
//! down — at any thread count — and the casualty must be visible both in
//! the returned [`TaskPanic`] list and the `pool.task_panics` counter.
//!
//! Runs in its own process (integration test) because the `phasefold-obs`
//! counters are process-global.

use phasefold::pool::{run, Job};
use phasefold_obs::metrics::counter_value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serialises the tests in this file: each toggles the global obs switch.
static OBS_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn one_panicking_task_among_hundred_is_isolated_at_every_thread_count() {
    let _guard = OBS_LOCK.lock().unwrap();
    for threads in [1usize, 2, 8] {
        phasefold_obs::reset();
        phasefold_obs::set_enabled(true);
        let done = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..101)
            .map(|i| -> Job<'_> {
                if i == 37 {
                    Box::new(move |_| panic!("chaos task {i}"))
                } else {
                    Box::new(|_| {
                        // A little real work so parallel workers overlap
                        // with the panicking task instead of outrunning it.
                        let mut acc = 1u64;
                        for _ in 0..2_000 {
                            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                        }
                        std::hint::black_box(acc);
                        done.fetch_add(1, Ordering::SeqCst);
                    })
                }
            })
            .collect();
        let panics = run(threads, jobs);
        phasefold_obs::set_enabled(false);

        assert_eq!(
            done.load(Ordering::SeqCst),
            100,
            "threads={threads}: every healthy task must still run"
        );
        assert_eq!(panics.len(), 1, "threads={threads}: exactly one casualty");
        assert_eq!(panics[0].message, "chaos task 37");
        assert!(panics[0].worker < threads.max(1));
        assert_eq!(
            counter_value("pool.task_panics"),
            1,
            "threads={threads}: the casualty must be counted"
        );
        assert_eq!(
            counter_value("pool.tasks_completed"),
            101,
            "threads={threads}: a panicking task still completes (as a fault)"
        );
    }
}

#[test]
fn panics_in_spawned_children_are_isolated_too() {
    let _guard = OBS_LOCK.lock().unwrap();
    for threads in [1usize, 4] {
        phasefold_obs::reset();
        phasefold_obs::set_enabled(true);
        let done = AtomicUsize::new(0);
        let done = &done;
        let jobs: Vec<Job<'_>> = (0..8)
            .map(|i| -> Job<'_> {
                Box::new(move |sp| {
                    done.fetch_add(1, Ordering::SeqCst);
                    sp.spawn(move |_| {
                        if i == 3 {
                            panic!("child {i} down");
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        let panics = run(threads, jobs);
        phasefold_obs::set_enabled(false);

        assert_eq!(done.load(Ordering::SeqCst), 8 + 7, "threads={threads}");
        assert_eq!(panics.len(), 1, "threads={threads}");
        assert_eq!(panics[0].message, "child 3 down");
        assert_eq!(counter_value("pool.task_panics"), 1, "threads={threads}");
    }
}
