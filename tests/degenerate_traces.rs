//! Robustness: the analysis must degrade gracefully — never panic — on
//! degenerate or adversarial traces (no communication, samples only,
//! unbalanced markers, single burst, zero-duration artifacts), and on
//! corrupted inputs the fault policy decides: `Lenient` quarantines the
//! damage into the analysis' `FaultReport` and keeps going, `Strict`
//! surfaces the first typed error.

use phasefold::{analyze_trace, try_analyze_trace, AnalysisConfig};
use phasefold_model::{
    prv, CallStack, CommKind, CounterKind, CounterSet, FaultKind, FaultPolicy, PartialCounterSet,
    RankId, Record, Sample, SourceRegistry, TimeNs, Trace,
};

fn counters(ins: f64) -> CounterSet {
    let mut c = CounterSet::ZERO;
    c[CounterKind::Instructions] = ins;
    c[CounterKind::Cycles] = ins * 2.0;
    c
}

fn sample(t: u64, ins: f64) -> Record {
    Record::Sample(Sample {
        time: TimeNs(t),
        counters: PartialCounterSet::from_full(&counters(ins)),
        callstack: CallStack::empty(),
    })
}

#[test]
fn empty_trace() {
    let trace = Trace::default();
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert_eq!(analysis.num_bursts, 0);
    assert!(analysis.models.is_empty());
}

#[test]
fn samples_only_no_communication() {
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    for i in 0..100u64 {
        stream.push(sample(i * 1_000_000, i as f64 * 1000.0)).unwrap();
    }
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    // No boundaries -> no bursts -> no models, but no panic either.
    assert_eq!(analysis.num_bursts, 0);
    assert!(analysis.models.is_empty());
}

#[test]
fn single_burst_is_not_enough_to_fold() {
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    stream
        .push(Record::CommExit { time: TimeNs(0), kind: CommKind::Wait, counters: counters(0.0) })
        .unwrap();
    stream.push(sample(500_000, 500.0)).unwrap();
    stream
        .push(Record::CommEnter {
            time: TimeNs(1_000_000),
            kind: CommKind::Wait,
            counters: counters(1000.0),
        })
        .unwrap();
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert_eq!(analysis.num_bursts, 1);
    assert!(analysis.models.is_empty());
}

#[test]
fn unbalanced_region_markers_are_tolerated() {
    let mut registry = SourceRegistry::new();
    let r0 = registry.intern("f", phasefold_model::RegionKind::Function, "f.c", 1);
    let mut trace = Trace::with_ranks(registry, 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    // Exit without enter, then enter without exit, wrapped around bursts.
    stream
        .push(Record::RegionExit { time: TimeNs(0), region: r0 })
        .unwrap();
    for i in 0..40u64 {
        let t0 = 1_000_000 * (2 * i + 1);
        let t1 = 1_000_000 * (2 * i + 2);
        stream
            .push(Record::CommExit {
                time: TimeNs(t0),
                kind: CommKind::Collective,
                counters: counters(i as f64 * 1000.0),
            })
            .unwrap();
        stream.push(sample(t0 + 500_000, i as f64 * 1000.0 + 500.0)).unwrap();
        stream
            .push(Record::CommEnter {
                time: TimeNs(t1),
                kind: CommKind::Collective,
                counters: counters((i + 1) as f64 * 1000.0),
            })
            .unwrap();
    }
    stream
        .push(Record::RegionEnter { time: TimeNs(200_000_000), region: r0 })
        .unwrap();
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert_eq!(analysis.num_bursts, 40);
    // Identical 1 ms bursts with linear counters: one cluster, one phase.
    assert_eq!(analysis.models.len(), 1);
    assert_eq!(analysis.models[0].phases.len(), 1);
}

#[test]
fn counters_frozen_at_boundaries_yield_no_model_but_no_panic() {
    // Bursts whose counter totals are all zero (e.g. counters unavailable).
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    for i in 0..30u64 {
        let t0 = 1_000_000 * (2 * i);
        let t1 = 1_000_000 * (2 * i + 1);
        stream
            .push(Record::CommExit {
                time: TimeNs(t0),
                kind: CommKind::Collective,
                counters: CounterSet::ZERO,
            })
            .unwrap();
        stream
            .push(Record::Sample(Sample {
                time: TimeNs(t0 + 500_000),
                counters: PartialCounterSet::from_full(&CounterSet::ZERO),
                callstack: CallStack::empty(),
            }))
            .unwrap();
        stream
            .push(Record::CommEnter {
                time: TimeNs(t1),
                kind: CommKind::Collective,
                counters: CounterSet::ZERO,
            })
            .unwrap();
    }
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    // Zero totals mean no foldable points -> no models.
    assert!(analysis.models.is_empty());
    assert_eq!(analysis.num_bursts, 30);
}

// ---------------------------------------------------------------------------
// Corrupted inputs and the fault policy
// ---------------------------------------------------------------------------

/// A realistic multi-phase trace in text form, the substrate the
/// corruption tests damage in controlled ways.
fn workload_text() -> String {
    use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
    let program = build(&SyntheticParams { iterations: 120, ..SyntheticParams::default() });
    let sim = phasefold_simapp::simulate(
        &program,
        &phasefold_simapp::SimConfig { ranks: 2, ..phasefold_simapp::SimConfig::default() },
    );
    let trace = phasefold_tracer::trace_run(
        &program.registry,
        &sim.timelines,
        &phasefold_tracer::TracerConfig::default(),
    );
    prv::write_trace(&trace)
}

/// Line index (0-based) of the `n`-th body line satisfying `pred`.
fn nth_body_line(text: &str, n: usize, pred: impl Fn(&str) -> bool) -> usize {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.starts_with('#') && pred(l))
        .map(|(i, _)| i)
        .nth(n)
        .expect("trace has enough matching body lines")
}

#[test]
fn truncated_line_lenient_partial_strict_error() {
    let text = workload_text();
    let idx = nth_body_line(&text, 3, |l| l.starts_with("S "));
    let mut lines: Vec<&str> = text.lines().collect();
    lines[idx] = "S 0"; // record cut mid-flush
    let corrupted = lines.join("\n");

    // Strict parsing rejects the trace at exactly that line.
    let err = prv::parse_trace(&corrupted).unwrap_err();
    assert!(matches!(err, phasefold_model::ModelError::Parse { line, .. } if line == idx + 1));

    // Lenient parsing quarantines the one record and the rest analyses.
    let (trace, report) = prv::parse_trace_lenient(&corrupted).unwrap();
    assert_eq!(report.len(), 1);
    let fault = &report.faults[0];
    assert_eq!(fault.kind, FaultKind::MalformedTrace);
    assert_eq!(fault.provenance.line, Some(idx + 1));
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert!(!analysis.models.is_empty(), "one lost sample must not kill the analysis");
}

#[test]
fn reversed_timestamps_are_quarantined_as_non_monotonic() {
    let text = workload_text();
    // Swap the timestamps of two consecutive rank-0 samples.
    let a = nth_body_line(&text, 5, |l| l.starts_with("S 0 "));
    let b = nth_body_line(&text, 6, |l| l.starts_with("S 0 "));
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let mut fa: Vec<String> = lines[a].split_whitespace().map(str::to_string).collect();
    let mut fb: Vec<String> = lines[b].split_whitespace().map(str::to_string).collect();
    std::mem::swap(&mut fa[2], &mut fb[2]);
    lines[a] = fa.join(" ");
    lines[b] = fb.join(" ");
    let corrupted = lines.join("\n");

    let err = prv::parse_trace(&corrupted).unwrap_err();
    assert!(matches!(err, phasefold_model::ModelError::OutOfOrder { .. }));

    let (trace, report) = prv::parse_trace_lenient(&corrupted).unwrap();
    assert!(
        report.of_kind(FaultKind::NonMonotonicTime).count() >= 1,
        "reversed timestamps must be reported: {}",
        report.render()
    );
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert!(!analysis.models.is_empty());
}

/// The acceptance-criteria golden test: poisoning every sampled Cycles
/// value must leave every *other* counter's result bit-identical to the
/// clean run, zero the Cycles rates, and name the quarantined counter.
#[test]
fn all_nan_cycles_counter_is_quarantined_others_bit_identical() {
    let text = workload_text();
    // Rewrite only the sampled CYC values; comm boundaries, timestamps and
    // every other counter stay untouched, so clustering and folding see
    // the exact same structure.
    let corrupted: String = text
        .lines()
        .map(|l| {
            if !l.starts_with("S ") {
                return format!("{l}\n");
            }
            let out: String = l
                .split(' ')
                .map(|tok| {
                    if !tok.contains("CYC:") {
                        return tok.to_string();
                    }
                    tok.split(',')
                        .map(|pair| match pair.split_once(':') {
                            Some(("CYC", _)) => "CYC:NaN".to_string(),
                            _ => pair.to_string(),
                        })
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join(" ");
            format!("{out}\n")
        })
        .collect();
    assert_ne!(corrupted, text, "the workload must sample Cycles");

    let clean_trace = prv::parse_trace(&text).unwrap();
    let (bad_trace, parse_report) = prv::parse_trace_lenient(&corrupted).unwrap();
    assert!(parse_report.is_empty(), "NaN is a value defect, not a parse defect");

    let config = AnalysisConfig::default();
    let clean = analyze_trace(&clean_trace, &config);
    let dirty = analyze_trace(&bad_trace, &config);

    // The damage is named, with full provenance.
    let nan_faults: Vec<_> = dirty.faults.of_kind(FaultKind::NanSamples).collect();
    assert!(!nan_faults.is_empty(), "report:\n{}", dirty.faults.render());
    for f in &nan_faults {
        assert_eq!(f.provenance.counter, Some(CounterKind::Cycles));
        assert!(f.provenance.cluster.is_some());
    }

    // Clean counters are bit-identical; the poisoned one degrades to zero.
    assert_eq!(clean.models.len(), dirty.models.len());
    for (cm, dm) in clean.models.iter().zip(&dirty.models) {
        assert_eq!(cm.breakpoints(), dm.breakpoints(), "structure must not move");
        assert_eq!(cm.phases.len(), dm.phases.len());
        for (cp, dp) in cm.phases.iter().zip(&dm.phases) {
            for kind in CounterKind::ALL {
                if kind == CounterKind::Cycles {
                    assert_eq!(dp.rates[kind], 0.0, "poisoned counter must be zeroed");
                } else {
                    assert_eq!(
                        cp.rates[kind].to_bits(),
                        dp.rates[kind].to_bits(),
                        "cluster {} {kind:?} rate must be bit-identical",
                        cm.cluster
                    );
                }
            }
        }
    }

    // Strict mode refuses the same trace with the same typed fault.
    let strict = AnalysisConfig { fault_policy: FaultPolicy::Strict, ..AnalysisConfig::default() };
    let err = try_analyze_trace(&bad_trace, &strict).unwrap_err();
    assert_eq!(err.kind, FaultKind::NanSamples);
    assert_eq!(err.provenance.counter, Some(CounterKind::Cycles));
}

#[test]
fn zero_sample_fold_is_a_degenerate_fold_fault() {
    // Comm boundaries with healthy counter totals but no samples between
    // them: the bursts cluster, but the fold has nothing to fit.
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    for i in 0..30u64 {
        let t0 = 1_000_000 * (2 * i);
        let t1 = 1_000_000 * (2 * i + 1);
        stream
            .push(Record::CommExit {
                time: TimeNs(t0),
                kind: CommKind::Collective,
                counters: counters(i as f64 * 1000.0),
            })
            .unwrap();
        stream
            .push(Record::CommEnter {
                time: TimeNs(t1),
                kind: CommKind::Collective,
                counters: counters((i + 1) as f64 * 1000.0),
            })
            .unwrap();
    }

    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert!(analysis.models.is_empty());
    let degenerate: Vec<_> = analysis.faults.of_kind(FaultKind::DegenerateFold).collect();
    assert!(!degenerate.is_empty(), "report:\n{}", analysis.faults.render());
    assert!(degenerate[0].provenance.cluster.is_some());
    assert!(degenerate[0].detail.contains("zero samples"), "{}", degenerate[0]);

    let strict = AnalysisConfig { fault_policy: FaultPolicy::Strict, ..AnalysisConfig::default() };
    let err = try_analyze_trace(&trace, &strict).unwrap_err();
    assert_eq!(err.kind, FaultKind::DegenerateFold);
}

#[test]
fn many_ranks_few_records_each() {
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 64);
    for r in 0..64u32 {
        let stream = trace.rank_mut(RankId(r)).unwrap();
        stream
            .push(Record::CommExit {
                time: TimeNs(0),
                kind: CommKind::Collective,
                counters: counters(0.0),
            })
            .unwrap();
        stream.push(sample(500_000, 500.0)).unwrap();
        stream
            .push(Record::CommEnter {
                time: TimeNs(1_000_000),
                kind: CommKind::Collective,
                counters: counters(1000.0),
            })
            .unwrap();
    }
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    // 64 identical bursts pooled across ranks fold fine.
    assert_eq!(analysis.num_bursts, 64);
    assert_eq!(analysis.models.len(), 1);
    assert_eq!(analysis.models[0].instances, 64);
}
