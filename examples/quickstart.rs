//! Quickstart: analyse a conjugate-gradient solver and print the phase
//! report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the paper's whole mechanism in one call: the simulated CG
//! application runs on 8 ranks, the tracer records communication
//! boundaries plus coarse 10 ms samples, and the analysis folds the
//! samples per burst cluster, fits piece-wise linear regressions, and maps
//! each detected phase back to the source line that produced it.

use phasefold::report::{render_report, suggest_optimization};
use phasefold::{run_study, AnalysisConfig};
use phasefold_simapp::workloads::cg::{build, CgParams};
use phasefold_simapp::SimConfig;
use phasefold_tracer::TracerConfig;

fn main() {
    let program = build(&CgParams::default());
    println!("simulating + tracing + analysing `{}` ...\n", program.name);

    let study = run_study(
        &program,
        &SimConfig { ranks: 8, ..SimConfig::default() },
        &TracerConfig::default(),
        &AnalysisConfig::default(),
    );

    println!("{}", render_report(&study.analysis, &study.trace.registry));

    if let Some(hint) = suggest_optimization(&study.analysis, &study.trace.registry) {
        println!("suggested optimisation target:\n  {hint}");
    }

    // How good was the detection? The simulator knows the truth: match
    // each analysed cluster to its ground-truth burst template and score
    // the detected breakpoints.
    let truth = &study.sim.ground_truth;
    for (mi, ti) in phasefold::match_models_to_templates(&study.analysis.models, truth) {
        let model = &study.analysis.models[mi];
        let template = &truth.templates[ti];
        let score = phasefold::score_boundaries(model.breakpoints(), &template.boundaries(), 0.05);
        println!(
            "ground-truth check (cluster {}): {} phases detected vs {} true, boundary F1 = {:.2}",
            model.cluster,
            model.phases.len(),
            template.num_phases(),
            score.f1(),
        );
    }
}
