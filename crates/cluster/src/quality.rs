//! External clustering quality metrics against ground-truth labels:
//! adjusted Rand index and purity. The simulator knows each burst's true
//! template, so structure-detection accuracy (experiment E4) is exact.

use std::collections::HashMap;

/// Contingency table between predicted labels (`None` = noise) and truth.
fn contingency(
    predicted: &[Option<usize>],
    truth: &[usize],
) -> (HashMap<(usize, usize), usize>, HashMap<usize, usize>, HashMap<usize, usize>) {
    assert_eq!(predicted.len(), truth.len());
    let mut joint: HashMap<(usize, usize), usize> = HashMap::new();
    let mut pred_sizes: HashMap<usize, usize> = HashMap::new();
    let mut true_sizes: HashMap<usize, usize> = HashMap::new();
    for (p, &t) in predicted.iter().zip(truth) {
        // Treat noise as a singleton-ish pseudo-cluster keyed distinctly:
        // conservative and standard when scoring DBSCAN outputs.
        let p = p.map_or(usize::MAX, |v| v);
        *joint.entry((p, t)).or_default() += 1;
        *pred_sizes.entry(p).or_default() += 1;
        *true_sizes.entry(t).or_default() += 1;
    }
    (joint, pred_sizes, true_sizes)
}

fn comb2(n: usize) -> f64 {
    let n = n as f64;
    n * (n - 1.0) / 2.0
}

/// Adjusted Rand index ∈ [-1, 1]; 1 = identical partitions, ~0 = random.
pub fn adjusted_rand_index(predicted: &[Option<usize>], truth: &[usize]) -> f64 {
    if predicted.is_empty() {
        return 1.0;
    }
    let (joint, pred_sizes, true_sizes) = contingency(predicted, truth);
    let sum_joint: f64 = joint.values().map(|&n| comb2(n)).sum();
    let sum_pred: f64 = pred_sizes.values().map(|&n| comb2(n)).sum();
    let sum_true: f64 = true_sizes.values().map(|&n| comb2(n)).sum();
    let total = comb2(predicted.len());
    if total == 0.0 {
        return 1.0;
    }
    let expected = sum_pred * sum_true / total;
    let max_index = 0.5 * (sum_pred + sum_true);
    if (max_index - expected).abs() < 1e-30 {
        return 1.0;
    }
    (sum_joint - expected) / (max_index - expected)
}

/// Purity ∈ [0, 1]: fraction of points whose predicted cluster's majority
/// truth label matches their own. Noise points count as wrong.
pub fn purity(predicted: &[Option<usize>], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 1.0;
    }
    let mut per_cluster: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for (p, &t) in predicted.iter().zip(truth) {
        if let Some(c) = p {
            *per_cluster.entry(*c).or_default().entry(t).or_default() += 1;
        }
    }
    let correct: usize = per_cluster
        .values()
        .map(|counts| counts.values().copied().max().unwrap_or(0))
        .sum();
    correct as f64 / predicted.len() as f64
}

/// Mean silhouette coefficient ∈ [-1, 1]: internal cluster quality without
/// ground truth (1 = tight, well-separated clusters). Noise points are
/// excluded; clusters of size 1 contribute 0 (the standard convention).
///
/// O(n²); for the burst-set sizes the pipeline produces (≤ tens of
/// thousands) this is fine as an offline diagnostic.
pub fn silhouette<const D: usize>(points: &[[f64; D]], labels: &[Option<usize>]) -> f64 {
    assert_eq!(points.len(), labels.len());
    let dist = |a: &[f64; D], b: &[f64; D]| -> f64 {
        let mut s = 0.0;
        for d in 0..D {
            let diff = a[d] - b[d];
            s += diff * diff;
        }
        s.sqrt()
    };
    // Cluster membership lists.
    let num_clusters = labels.iter().flatten().copied().max().map_or(0, |m| m + 1);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            members[*c].push(i);
        }
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for (c, own) in members.iter().enumerate() {
        for &i in own {
            count += 1;
            if own.len() < 2 {
                continue; // contributes 0
            }
            let a: f64 = own
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| dist(&points[i], &points[j]))
                .sum::<f64>()
                / (own.len() - 1) as f64;
            let mut b = f64::INFINITY;
            for (oc, others) in members.iter().enumerate() {
                if oc == c || others.is_empty() {
                    continue;
                }
                let d: f64 = others
                    .iter()
                    .map(|&j| dist(&points[i], &points[j]))
                    .sum::<f64>()
                    / others.len() as f64;
                b = b.min(d);
            }
            if b.is_finite() {
                sum += (b - a) / a.max(b).max(1e-300);
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let pred = vec![Some(0), Some(0), Some(1), Some(1)];
        let truth = vec![7, 7, 9, 9];
        assert!((adjusted_rand_index(&pred, &truth) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&pred, &truth), 1.0);
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        let pred = vec![Some(1), Some(1), Some(0), Some(0)];
        let truth = vec![0, 0, 1, 1];
        assert!((adjusted_rand_index(&pred, &truth) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&pred, &truth), 1.0);
    }

    #[test]
    fn merged_clusters_lose_ari() {
        let pred = vec![Some(0); 6];
        let truth = vec![0, 0, 0, 1, 1, 1];
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari < 0.5, "ari = {ari}");
        assert!((purity(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noise_counts_against_purity() {
        let pred = vec![Some(0), Some(0), None, None];
        let truth = vec![0, 0, 1, 1];
        assert_eq!(purity(&pred, &truth), 0.5);
    }

    #[test]
    fn split_cluster_keeps_purity_but_not_ari() {
        // One true cluster split into two predicted ones: purity stays 1,
        // ARI drops below 1.
        let pred = vec![Some(0), Some(0), Some(1), Some(1)];
        let truth = vec![3, 3, 3, 3];
        assert_eq!(purity(&pred, &truth), 1.0);
        assert!(adjusted_rand_index(&pred, &truth) < 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(purity(&[], &[]), 1.0);
    }

    #[test]
    fn silhouette_separated_blobs_near_one() {
        let mut points: Vec<[f64; 2]> = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            points.push([0.0 + 0.001 * i as f64, 0.0]);
            labels.push(Some(0));
            points.push([10.0 + 0.001 * i as f64, 10.0]);
            labels.push(Some(1));
        }
        let s = silhouette(&points, &labels);
        assert!(s > 0.99, "s = {s}");
    }

    #[test]
    fn silhouette_merged_blobs_is_low() {
        // One blob split arbitrarily into two labels: silhouette ~ 0.
        let points: Vec<[f64; 2]> = (0..40).map(|i| [(i % 7) as f64 * 0.01, 0.0]).collect();
        let labels: Vec<Option<usize>> = (0..40).map(|i| Some(i % 2)).collect();
        let s = silhouette(&points, &labels);
        assert!(s < 0.3, "s = {s}");
    }

    #[test]
    fn silhouette_edge_cases() {
        // All noise.
        assert_eq!(silhouette::<2>(&[[0.0, 0.0]], &[None]), 0.0);
        // Single cluster (no "other" cluster): contributes 0.
        let points = vec![[0.0, 0.0], [1.0, 1.0]];
        assert_eq!(silhouette(&points, &[Some(0), Some(0)]), 0.0);
        // Empty input.
        assert_eq!(silhouette::<2>(&[], &[]), 0.0);
    }

    #[test]
    fn random_vs_truth_is_near_zero() {
        // Alternating predictions against block truth: ARI ≈ small.
        let pred: Vec<Option<usize>> = (0..40).map(|i| Some(i % 2)).collect();
        let truth: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari.abs() < 0.15, "ari = {ari}");
    }
}
