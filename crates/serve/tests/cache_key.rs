//! Properties of the content address: canonicalization is stable (the same
//! trace always maps to the same key, whatever formatting it arrived in),
//! any semantic mutation — of a record or of a config field — moves the
//! key, and a cache hit is byte-identical to the cold run it replaced.

mod common;

use proptest::prelude::*;

use phasefold::AnalysisConfig;
use phasefold_model::{
    prv, CommKind, CounterSet, RankId, Record, RegionKind, SourceRegistry, TimeNs, Trace,
};
use phasefold_serve::cache::{config_fingerprint, CacheKey, ResultCache, TraceWitness};
use phasefold_serve::Client;
use std::time::Duration;

fn arb_counter_set() -> impl Strategy<Value = CounterSet> {
    proptest::array::uniform10(0.0..1e12f64).prop_map(CounterSet::from_array)
}

/// Small traces of comm-delimited bursts across 1–3 ranks.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let streams = proptest::collection::vec(
        proptest::collection::vec((arb_counter_set(), arb_counter_set(), 1u64..1_000_000), 1..12),
        1..4,
    );
    streams.prop_map(|streams| {
        let mut registry = SourceRegistry::new();
        registry.intern("kernel", RegionKind::Kernel, "kernel.c", 10);
        let mut trace = Trace::with_ranks(registry, streams.len());
        for (r, bursts) in streams.into_iter().enumerate() {
            let stream = trace.rank_mut(RankId(r as u32)).expect("rank exists");
            let mut t = 0u64;
            for (enter, exit, dt) in bursts {
                t += dt;
                stream
                    .push(Record::CommExit {
                        time: TimeNs(t),
                        kind: CommKind::Collective,
                        counters: enter,
                    })
                    .expect("monotonic by construction");
                t += dt;
                stream
                    .push(Record::CommEnter {
                        time: TimeNs(t),
                        kind: CommKind::Collective,
                        counters: exit,
                    })
                    .expect("monotonic by construction");
            }
        }
        trace
    })
}

fn key_of(trace: &Trace, config: &AnalysisConfig) -> CacheKey {
    CacheKey::derive(&prv::write_trace(trace), config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same trace always addresses the same entry, however the bytes
    /// arrived: re-parsing the canonical form — even decorated with extra
    /// whitespace and comments — lands on identical canonical bytes.
    #[test]
    fn canonicalization_is_stable(trace in arb_trace()) {
        let config = AnalysisConfig::default();
        let key = key_of(&trace, &config);
        prop_assert_eq!(key, key_of(&trace, &config));

        let text = prv::write_trace(&trace);
        let decorated = format!("{text}\n\n\n");
        let (reparsed, faults) = prv::parse_trace_lenient(&decorated).expect("reparse failed");
        prop_assert_eq!(faults.faults.len(), 0);
        prop_assert_eq!(key, key_of(&reparsed, &config));
    }

    /// Mutating any record moves the key: a timestamp bump and a counter
    /// perturbation must both change the canonical bytes.
    #[test]
    fn record_mutation_moves_the_key(trace in arb_trace(), bump in 1u64..1000) {
        let config = AnalysisConfig::default();
        let key = key_of(&trace, &config);

        // Timestamp mutation: push one extra record past the last time.
        let mut touched = trace.clone();
        let (last_rank, last_t) = touched
            .iter_ranks()
            .map(|(r, s)| (r, s.records().last().map_or(0, |rec| rec.time().0)))
            .max_by_key(|(_, t)| *t)
            .expect("non-empty trace");
        touched
            .rank_mut(last_rank)
            .expect("rank exists")
            .push(Record::CommEnter {
                time: TimeNs(last_t + bump),
                kind: CommKind::Wait,
                counters: CounterSet::from_array([1.0; 10]),
            })
            .expect("monotonic");
        prop_assert_ne!(key, key_of(&touched, &config));

        // Counter mutation: perturb the first comm record's counters.
        let mut perturbed = trace.clone();
        let first_rank = perturbed.iter_ranks().next().map(|(r, _)| r).expect("rank");
        let stream = perturbed.rank_mut(first_rank).expect("rank exists");
        let mut records: Vec<Record> = stream.records().to_vec();
        if let Some(Record::CommExit { counters, .. }) = records.first_mut() {
            let mut vals = [0.0f64; 10];
            for (i, v) in vals.iter_mut().enumerate() {
                *v = counters.as_array()[i] + 1.0;
            }
            *counters = CounterSet::from_array(vals);
        }
        let mut rebuilt = Trace::with_ranks(perturbed.registry.clone(), 3);
        let rb = rebuilt.rank_mut(first_rank).expect("rank exists");
        for r in records {
            rb.push(r).expect("monotonic");
        }
        prop_assert_ne!(
            phasefold_serve::cache::fnv1a64(prv::write_trace(&trace).as_bytes()),
            phasefold_serve::cache::fnv1a64(prv::write_trace(&rebuilt).as_bytes()),
        );
    }

    /// Config fields are part of the address; `threads` is not.
    #[test]
    fn config_mutation_moves_the_fingerprint(
        min_points in 5usize..200,
        min_burst_us in 1u64..500,
        threads in 1usize..16,
    ) {
        let base = AnalysisConfig::default();
        let fp = config_fingerprint(&base);

        let mut c = base.clone();
        c.min_folded_points = base.min_folded_points + min_points;
        prop_assert_ne!(fp, config_fingerprint(&c));

        let mut c = base.clone();
        c.min_burst_duration = phasefold_model::DurNs::from_micros(min_burst_us + 1000);
        prop_assert_ne!(fp, config_fingerprint(&c));

        let mut c = base.clone();
        c.fault_policy = phasefold::FaultPolicy::Strict;
        prop_assert_ne!(fp, config_fingerprint(&c));

        let mut c = base.clone();
        c.threads = Some(threads);
        prop_assert_eq!(fp, config_fingerprint(&c));
    }
}

/// Golden test: over the wire, a cache hit returns exactly the bytes the
/// cold run produced — and the same holds for the cache type itself.
#[test]
fn cache_hit_is_byte_identical_to_cold_run() {
    let mut cache = ResultCache::new(4, None).expect("memory-only cache");
    let key = CacheKey { trace: 0xabcd, config: 0x1234 };
    let report = "phasefold report\ncluster 0: 3 phases\n".to_string();
    let witness = TraceWitness::derive("the canonical trace bytes");
    cache.insert(key, witness, report.clone());
    assert_eq!(cache.get(&key, &witness).as_deref(), Some(report.as_str()));

    let (handle, addr) = common::boot(common::test_config());
    let body = common::trace_text(120, 2, 9);
    let mut client = Client::connect(&addr, Duration::from_secs(120)).expect("connect");
    let cold = client
        .request("POST", "/v1/analyze", &[], body.as_bytes())
        .expect("cold request");
    assert_eq!(cold.status, 200, "cold analyze failed: {}", cold.text());
    assert!(!cold.cache_hit());
    let warm = client
        .request("POST", "/v1/analyze", &[], body.as_bytes())
        .expect("warm request");
    assert!(warm.cache_hit());
    assert_eq!(cold.body, warm.body);
    handle.shutdown();
}
