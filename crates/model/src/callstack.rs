//! Interned source-code regions and sampled call stacks.
//!
//! The paper's headline capability is mapping detected performance phases
//! back onto the *syntactical structure* of the application: every sample
//! carries a call stack whose leaf frame names a source file and line.
//! Regions (functions, loops, kernels) are interned once in a
//! [`SourceRegistry`]; the rest of the system passes around compact
//! [`RegionId`]s.

use std::collections::HashMap;
use std::fmt;

/// Compact handle for an interned region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Sentinel for "outside any known region" (e.g. runtime/idle).
    pub const UNKNOWN: RegionId = RegionId(u32::MAX);
}

/// What kind of syntactic construct a region is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A function / subroutine.
    Function,
    /// A loop nest inside a function.
    Loop,
    /// A straight-line computational kernel (innermost body).
    Kernel,
    /// A communication operation (MPI-like).
    Communication,
}

impl RegionKind {
    /// Stable single-letter tag used by the trace format.
    pub fn tag(self) -> char {
        match self {
            RegionKind::Function => 'F',
            RegionKind::Loop => 'L',
            RegionKind::Kernel => 'K',
            RegionKind::Communication => 'C',
        }
    }

    /// Parses the tag produced by [`RegionKind::tag`].
    pub fn from_tag(c: char) -> Option<RegionKind> {
        match c {
            'F' => Some(RegionKind::Function),
            'L' => Some(RegionKind::Loop),
            'K' => Some(RegionKind::Kernel),
            'C' => Some(RegionKind::Communication),
            _ => None,
        }
    }
}

/// A point in the application source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceLocation {
    /// Source file path (as the compiler would report it).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for SourceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// Metadata for an interned region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionInfo {
    /// Human-readable name (function or loop label).
    pub name: String,
    /// Kind of syntactic construct.
    pub kind: RegionKind,
    /// Where the region starts in the source.
    pub location: SourceLocation,
}

/// Intern table mapping [`RegionId`] ⇄ [`RegionInfo`].
///
/// The registry is append-only; ids are dense indices in insertion order,
/// which the trace format exploits.
#[derive(Debug, Clone, Default)]
pub struct SourceRegistry {
    regions: Vec<RegionInfo>,
    by_name: HashMap<String, RegionId>,
}

impl SourceRegistry {
    /// An empty registry.
    pub fn new() -> SourceRegistry {
        SourceRegistry::default()
    }

    /// Interns a region, returning its id. Re-interning the same `name`
    /// returns the existing id (names are unique keys; callers qualify
    /// names hierarchically, e.g. `"solve/spmv"`).
    pub fn intern(&mut self, name: &str, kind: RegionKind, file: &str, line: u32) -> RegionId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionInfo {
            name: name.to_string(),
            kind,
            location: SourceLocation { file: file.to_string(), line },
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Metadata for `id`, or `None` for unknown/sentinel ids.
    pub fn get(&self, id: RegionId) -> Option<&RegionInfo> {
        self.regions.get(id.0 as usize)
    }

    /// Id registered for `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<RegionId> {
        self.by_name.get(name).copied()
    }

    /// Display name for `id` (`"<unknown>"` for the sentinel).
    pub fn name(&self, id: RegionId) -> &str {
        self.get(id).map_or("<unknown>", |r| r.name.as_str())
    }

    /// Number of interned regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterates `(id, info)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &RegionInfo)> {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| (RegionId(i as u32), r))
    }
}

/// A sampled call stack: outermost frame first, leaf last.
///
/// Frames are region ids; the leaf additionally carries the precise source
/// line the program counter was at, which may differ from the region's
/// declaration line.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CallStack {
    /// Region ids, outermost first.
    pub frames: Vec<RegionId>,
    /// Source line of the leaf program counter (0 if unknown).
    pub leaf_line: u32,
}

impl CallStack {
    /// An empty (unresolved) call stack.
    pub fn empty() -> CallStack {
        CallStack::default()
    }

    /// Builds a stack from outermost-first frames and a leaf line.
    pub fn new(frames: Vec<RegionId>, leaf_line: u32) -> CallStack {
        CallStack { frames, leaf_line }
    }

    /// The innermost frame, if the stack is non-empty.
    pub fn leaf(&self) -> Option<RegionId> {
        self.frames.last().copied()
    }

    /// Stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True if no frames were captured.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Renders the stack as `outer>inner@line` using `registry` names.
    pub fn render(&self, registry: &SourceRegistry) -> String {
        let mut s = String::new();
        for (i, f) in self.frames.iter().enumerate() {
            if i > 0 {
                s.push('>');
            }
            s.push_str(registry.name(*f));
        }
        if self.leaf_line != 0 {
            s.push('@');
            s.push_str(&self.leaf_line.to_string());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        r.intern("main", RegionKind::Function, "main.c", 1);
        r.intern("solve", RegionKind::Function, "solve.c", 10);
        r.intern("solve/spmv", RegionKind::Kernel, "solve.c", 42);
        r
    }

    #[test]
    fn intern_is_idempotent() {
        let mut r = sample_registry();
        let id1 = r.lookup("solve").unwrap();
        let id2 = r.intern("solve", RegionKind::Function, "other.c", 99);
        assert_eq!(id1, id2);
        assert_eq!(r.len(), 3);
        // First interning wins: metadata unchanged.
        assert_eq!(r.get(id1).unwrap().location.file, "solve.c");
    }

    #[test]
    fn ids_are_dense_insertion_order() {
        let r = sample_registry();
        let ids: Vec<u32> = r.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn unknown_id_renders_placeholder() {
        let r = sample_registry();
        assert_eq!(r.name(RegionId::UNKNOWN), "<unknown>");
        assert!(r.get(RegionId::UNKNOWN).is_none());
    }

    #[test]
    fn callstack_render() {
        let r = sample_registry();
        let cs = CallStack::new(
            vec![r.lookup("main").unwrap(), r.lookup("solve").unwrap(), r.lookup("solve/spmv").unwrap()],
            44,
        );
        assert_eq!(cs.render(&r), "main>solve>solve/spmv@44");
        assert_eq!(cs.leaf(), r.lookup("solve/spmv"));
        assert_eq!(cs.depth(), 3);
    }

    #[test]
    fn region_kind_tags_roundtrip() {
        for k in [
            RegionKind::Function,
            RegionKind::Loop,
            RegionKind::Kernel,
            RegionKind::Communication,
        ] {
            assert_eq!(RegionKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(RegionKind::from_tag('x'), None);
    }

    #[test]
    fn empty_stack() {
        let cs = CallStack::empty();
        assert!(cs.is_empty());
        assert_eq!(cs.leaf(), None);
        assert_eq!(cs.render(&sample_registry()), "");
    }
}
