//! Instance collection: attach each trace sample to the computation burst
//! it fell into, grouped by cluster.

use phasefold_cluster::Clustering;
use phasefold_model::{burst::samples_within, Burst, CallStack, PartialCounterSet, Trace};
use std::sync::Arc;

/// One sample inside one burst instance, with times made burst-relative.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSample {
    /// Fraction of the burst at which the sample fired (`x` axis).
    pub x: f64,
    /// Accumulated counters at the sample instant (absolute readings).
    pub counters: PartialCounterSet,
    /// Captured call stack, shared rather than deep-copied: downstream
    /// stages (folding, snapshots) alias the same frames instead of
    /// re-cloning the frame vector per stage.
    pub callstack: Arc<CallStack>,
}

/// One burst instance prepared for folding.
#[derive(Debug, Clone)]
pub struct FoldInstance {
    /// Index of the burst in the input burst slice.
    pub burst_index: usize,
    /// Burst duration in seconds.
    pub dur_s: f64,
    /// Samples that fell inside the burst (possibly none).
    pub samples: Vec<InstanceSample>,
}

/// Collects, for every cluster, its burst instances with their samples.
///
/// Returns `per_cluster[c]` = instances of cluster `c`. Noise bursts are
/// ignored. `bursts` and `clustering.labels` must be parallel slices.
pub fn collect_instances(
    trace: &Trace,
    bursts: &[Burst],
    clustering: &Clustering,
) -> Vec<Vec<FoldInstance>> {
    assert_eq!(bursts.len(), clustering.labels.len());
    let mut per_cluster: Vec<Vec<FoldInstance>> = vec![Vec::new(); clustering.num_clusters];
    for (i, (burst, label)) in bursts.iter().zip(&clustering.labels).enumerate() {
        let Some(cluster) = label else { continue };
        let Some(stream) = trace.rank(burst.id.rank) else { continue };
        let samples = samples_within(stream, burst.start, burst.end)
            .map(|s| InstanceSample {
                x: s.time.normalized_within(burst.start, burst.end),
                counters: s.counters,
                callstack: Arc::new(s.callstack.clone()),
            })
            .collect();
        per_cluster[*cluster].push(FoldInstance {
            burst_index: i,
            dur_s: burst.duration().as_secs_f64(),
            samples,
        });
    }
    per_cluster
}

#[cfg(test)]
mod tests {
    use super::*;
    use phasefold_model::{
        CommKind, CounterKind, CounterSet, RankId, Record, Sample, SourceRegistry, TimeNs,
    };

    fn counters(ins: f64) -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[CounterKind::Instructions] = ins;
        c
    }

    fn build_trace() -> (Trace, Vec<Burst>, Clustering) {
        let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
        let stream = trace.rank_mut(RankId(0)).unwrap();
        let mut push = |r: Record| stream.push(r).unwrap();
        // Two bursts: [100, 200) and [300, 500), one sample each + one
        // sample inside communication (must not be collected).
        push(Record::CommExit { time: TimeNs(100), kind: CommKind::Collective, counters: counters(0.0) });
        push(Record::Sample(Sample {
            time: TimeNs(150),
            counters: PartialCounterSet::from_full(&counters(55.0)),
            callstack: CallStack::empty(),
        }));
        push(Record::CommEnter { time: TimeNs(200), kind: CommKind::Collective, counters: counters(100.0) });
        push(Record::Sample(Sample {
            time: TimeNs(250),
            counters: PartialCounterSet::from_full(&counters(100.0)),
            callstack: CallStack::empty(),
        }));
        push(Record::CommExit { time: TimeNs(300), kind: CommKind::Collective, counters: counters(100.0) });
        push(Record::Sample(Sample {
            time: TimeNs(400),
            counters: PartialCounterSet::from_full(&counters(150.0)),
            callstack: CallStack::empty(),
        }));
        push(Record::CommEnter { time: TimeNs(500), kind: CommKind::Collective, counters: counters(200.0) });
        let bursts = phasefold_model::extract_bursts(&trace, phasefold_model::DurNs::ZERO);
        let clustering = Clustering {
            labels: vec![Some(0), Some(0)],
            num_clusters: 1,
            eps: 0.1,
            spmd_score: 1.0,
        };
        (trace, bursts, clustering)
    }

    #[test]
    fn samples_attach_to_their_bursts() {
        let (trace, bursts, clustering) = build_trace();
        let per_cluster = collect_instances(&trace, &bursts, &clustering);
        assert_eq!(per_cluster.len(), 1);
        let instances = &per_cluster[0];
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].samples.len(), 1);
        assert_eq!(instances[1].samples.len(), 1);
        // Sample at t=150 in burst [100,200) -> x = 0.5.
        assert!((instances[0].samples[0].x - 0.5).abs() < 1e-9);
        // Sample at t=400 in burst [300,500) -> x = 0.5.
        assert!((instances[1].samples[0].x - 0.5).abs() < 1e-9);
        assert!((instances[0].dur_s - 100e-9).abs() < 1e-15);
    }

    #[test]
    fn noise_bursts_are_skipped() {
        let (trace, bursts, mut clustering) = build_trace();
        clustering.labels[1] = None;
        let per_cluster = collect_instances(&trace, &bursts, &clustering);
        assert_eq!(per_cluster[0].len(), 1);
    }

    #[test]
    fn multiple_clusters_are_separated() {
        let (trace, bursts, mut clustering) = build_trace();
        clustering.labels = vec![Some(0), Some(1)];
        clustering.num_clusters = 2;
        let per_cluster = collect_instances(&trace, &bursts, &clustering);
        assert_eq!(per_cluster.len(), 2);
        assert_eq!(per_cluster[0].len(), 1);
        assert_eq!(per_cluster[1].len(), 1);
        assert_eq!(per_cluster[0][0].burst_index, 0);
        assert_eq!(per_cluster[1][0].burst_index, 1);
    }

    #[test]
    fn instance_without_samples_is_kept() {
        // Coarse sampling means many instances carry zero samples; they
        // still count toward duration statistics.
        let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
        let stream = trace.rank_mut(RankId(0)).unwrap();
        stream
            .push(Record::CommExit { time: TimeNs(0), kind: CommKind::Wait, counters: counters(0.0) })
            .unwrap();
        stream
            .push(Record::CommEnter { time: TimeNs(100), kind: CommKind::Wait, counters: counters(10.0) })
            .unwrap();
        let bursts = phasefold_model::extract_bursts(&trace, phasefold_model::DurNs::ZERO);
        let clustering = Clustering {
            labels: vec![Some(0)],
            num_clusters: 1,
            eps: 0.1,
            spmd_score: 1.0,
        };
        let per_cluster = collect_instances(&trace, &bursts, &clustering);
        assert_eq!(per_cluster[0].len(), 1);
        assert!(per_cluster[0][0].samples.is_empty());
    }
}
