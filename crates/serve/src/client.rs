//! Std-only HTTP/1.1 client for the daemon.
//!
//! Shared by the integration tests, the chaos harness, the load
//! generator (`exp_serve_load`), and the CLI — one implementation, so a
//! protocol change breaks loudly everywhere at once. Keep-alive is the
//! default: one [`Client`] maps to one TCP connection reused across
//! requests, which is what the closed-loop load test needs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 503, …).
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a (lower-case) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as (lossy) text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// True when the server marked this answer as served from cache.
    pub fn cache_hit(&self) -> bool {
        self.header("x-cache") == Some("hit")
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    last_request_id: Option<String>,
}

impl Client {
    /// Connects to `addr` (`host:port`) with a read timeout so a wedged
    /// server fails the caller instead of hanging it.
    pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { writer: stream, reader, last_request_id: None })
    }

    /// The `x-request-id` the server stamped on the last response read on
    /// this connection (`None` before the first response). Lets tests and
    /// tools correlate a response with the daemon's access log and
    /// `/debug/trace/{id}`.
    pub fn last_request_id(&self) -> Option<&str> {
        self.last_request_id.as_deref()
    }

    /// Sends one request with a `Content-Length` body and reads the
    /// response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<Response> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: phasefold\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends one request with a `Transfer-Encoding: chunked` body, one
    /// chunk per slice — how streamed PRV batches go over the wire.
    pub fn request_chunked(
        &mut self,
        method: &str,
        path: &str,
        chunks: &[&[u8]],
    ) -> std::io::Result<Response> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: phasefold\r\ntransfer-encoding: chunked\r\n\r\n"
        );
        self.writer.write_all(head.as_bytes())?;
        for chunk in chunks.iter().filter(|c| !c.is_empty()) {
            self.writer.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
            self.writer.write_all(chunk)?;
            self.writer.write_all(b"\r\n")?;
        }
        self.writer.write_all(b"0\r\n\r\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let status_line = self.read_line()?;
        let mut parts = status_line.split_whitespace();
        let _version = parts.next();
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_data(format!("bad status line {status_line:?}")))?;

        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad_data(format!("bad header {line:?}")))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| bad_data(format!("bad content-length {value:?}")))?;
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let response = Response { status, headers, body };
        self.last_request_id = response.header("x-request-id").map(str::to_string);
        Ok(response)
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Convenience: one request over a fresh connection.
pub fn one_shot(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<Response> {
    let mut client = Client::connect(addr, Duration::from_secs(30))?;
    client.request(method, path, &[], body)
}
