//! The tracer proper: turns simulated ground-truth timelines into the trace
//! an Extrae-like tool would record — instrumented communication boundaries
//! (with exact counter reads), function enter/exit markers, and coarse
//! periodic samples, all perturbed by the instrumentation overhead model.

use crate::config::{MultiplexMode, TracerConfig};
use phasefold_model::{
    CallStack, PartialCounterSet, RankId, RankTrace, Record, Sample, SourceRegistry, TimeNs,
    Trace,
};
use phasefold_simapp::timeline::{RankTimeline, SegmentKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Traces one simulated run.
///
/// `registry` is the program's region table (cloned into the trace);
/// `timelines` are the per-rank ground truths from
/// [`phasefold_simapp::simulate`].
pub fn trace_run(
    registry: &SourceRegistry,
    timelines: &[RankTimeline],
    config: &TracerConfig,
) -> Trace {
    let _sp = phasefold_obs::span!("tracer.trace_run");
    config.validate();
    let mut trace = Trace::with_ranks(registry.clone(), timelines.len());
    for (r, timeline) in timelines.iter().enumerate() {
        let rank = RankId(r as u32);
        let stream = trace_rank(timeline, config, r as u64);
        // `with_ranks(timelines.len())` guarantees the slot exists; if the
        // invariant ever breaks, drop the rank instead of aborting the run.
        match trace.rank_mut(rank) {
            Some(slot) => *slot = stream,
            None => {
                phasefold_obs::counter!("tracer.ranks_dropped", 1);
            }
        }
    }
    if phasefold_obs::enabled() {
        // Sampling-overhead gauges: how much data the tracer produced and
        // how far its overhead model dilated the run.
        let (mut samples, mut events) = (0usize, 0usize);
        for (_, stream) in trace.iter_ranks() {
            for r in stream.records() {
                if r.is_sample() {
                    samples += 1;
                } else {
                    events += 1;
                }
            }
        }
        let base_wall_s =
            timelines.iter().map(|t| t.end_time().as_secs_f64()).fold(0.0, f64::max);
        let dilated_wall_s = trace.end_time().as_secs_f64();
        phasefold_obs::gauge!("tracer.samples", samples);
        phasefold_obs::gauge!("tracer.events", events);
        phasefold_obs::gauge!(
            "tracer.sampling_period_s",
            config.sampling_period.as_secs_f64()
        );
        phasefold_obs::gauge!(
            "tracer.relative_dilation",
            if base_wall_s > 0.0 { (dilated_wall_s - base_wall_s) / base_wall_s } else { 0.0 }
        );
    }
    trace
}

/// Overhead statistics of a traced run (experiment E5).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadReport {
    /// Samples taken across all ranks.
    pub samples: usize,
    /// Instrumented events across all ranks.
    pub events: usize,
    /// Un-dilated wall time of the longest rank (seconds).
    pub base_wall_s: f64,
    /// Dilated wall time of the longest rank (seconds).
    pub dilated_wall_s: f64,
}

impl OverheadReport {
    /// Relative dilation (`0.01` = 1 % slower).
    pub fn relative_dilation(&self) -> f64 {
        if self.base_wall_s <= 0.0 {
            0.0
        } else {
            (self.dilated_wall_s - self.base_wall_s) / self.base_wall_s
        }
    }
}

/// Traces a run and also reports the overhead it would have imposed.
pub fn trace_run_with_overhead(
    registry: &SourceRegistry,
    timelines: &[RankTimeline],
    config: &TracerConfig,
) -> (Trace, OverheadReport) {
    let trace = trace_run(registry, timelines, config);
    let mut report = OverheadReport::default();
    for (_, stream) in trace.iter_ranks() {
        report.samples += stream.records().iter().filter(|r| r.is_sample()).count();
        report.events += stream.records().iter().filter(|r| !r.is_sample()).count();
    }
    report.base_wall_s = timelines
        .iter()
        .map(|t| t.end_time().as_secs_f64())
        .fold(0.0, f64::max);
    report.dilated_wall_s = trace.end_time().as_secs_f64();
    (trace, report)
}

/// Builds one rank's record stream.
fn trace_rank(timeline: &RankTimeline, config: &TracerConfig, rank_salt: u64) -> RankTrace {
    let mut rng = StdRng::seed_from_u64(config.seed ^ rank_salt.wrapping_mul(0x9E37_79B9));
    let end = timeline.end_time();

    // 1. Sampling instants with jitter.
    let mut sample_times: Vec<TimeNs> = Vec::new();
    let period = config.sampling_period.as_secs_f64();
    let mut t = 0.0f64;
    loop {
        let jitter = if config.jitter_fraction > 0.0 {
            period * config.jitter_fraction * (rng.gen::<f64>() * 2.0 - 1.0)
        } else {
            0.0
        };
        t += (period + jitter).max(period * 0.01);
        let tn = TimeNs::from_secs_f64(t);
        if tn >= end {
            break;
        }
        sample_times.push(tn);
    }

    // 2. Merge three record sources in time order: markers, comm
    //    boundaries, samples. All carry *true* times first; overhead
    //    dilation shifts them afterwards.
    #[derive(Debug)]
    enum Raw {
        Marker { at: TimeNs, region: phasefold_model::RegionId, enter: bool },
        CommEnter { at: TimeNs, kind: phasefold_model::CommKind },
        CommExit { at: TimeNs, kind: phasefold_model::CommKind },
        Sample { at: TimeNs },
    }
    let mut raw: Vec<Raw> = Vec::new();
    for &(at, region, enter) in timeline.markers() {
        raw.push(Raw::Marker { at, region, enter });
    }
    for seg in timeline.segments() {
        if let SegmentKind::Comm { kind } = seg.kind {
            raw.push(Raw::CommEnter { at: seg.start, kind });
            raw.push(Raw::CommExit { at: seg.end, kind });
        }
    }
    for &at in &sample_times {
        raw.push(Raw::Sample { at });
    }
    raw.sort_by_key(|r| match r {
        Raw::Marker { at, .. }
        | Raw::CommEnter { at, .. }
        | Raw::CommExit { at, .. }
        | Raw::Sample { at } => *at,
    });

    // 3. Emit records, accumulating overhead dilation.
    let mut stream = RankTrace::new();
    let mut shift_s = 0.0f64;
    let mut mux_round = 0usize;
    for r in raw {
        let result = match r {
            Raw::Marker { at, region, enter } => {
                shift_s += config.overhead.per_event_s;
                let time = dilate(at, shift_s);
                if enter {
                    stream.push(Record::RegionEnter { time, region })
                } else {
                    stream.push(Record::RegionExit { time, region })
                }
            }
            Raw::CommEnter { at, kind } => {
                shift_s += config.overhead.per_event_s;
                let counters = timeline.counters_at(at);
                stream.push(Record::CommEnter { time: dilate(at, shift_s), kind, counters })
            }
            Raw::CommExit { at, kind } => {
                shift_s += config.overhead.per_event_s;
                let counters = timeline.counters_at(at);
                stream.push(Record::CommExit { time: dilate(at, shift_s), kind, counters })
            }
            Raw::Sample { at } => {
                shift_s += config.overhead.per_sample_s;
                let full = timeline.counters_at(at);
                let counters = match &config.multiplex {
                    MultiplexMode::ReadAll => PartialCounterSet::from_full(&full),
                    MultiplexMode::RoundRobin(groups) => {
                        let group = &groups[mux_round % groups.len()];
                        mux_round += 1;
                        PartialCounterSet::project(&full, group)
                    }
                };
                let callstack = if config.capture_callstacks {
                    timeline.callstack_at(at)
                } else {
                    CallStack::empty()
                };
                stream.push(Record::Sample(Sample { time: dilate(at, shift_s), counters, callstack }))
            }
        };
        // Raw records are time-sorted and dilation is monotone, so pushes
        // cannot go backwards in time on the expected path; a breach (e.g.
        // float rounding at extreme dilations) drops the record rather than
        // aborting the whole tracing run.
        if result.is_err() {
            phasefold_obs::counter!("tracer.records_dropped", 1);
        }
    }
    stream
}

fn dilate(at: TimeNs, shift_s: f64) -> TimeNs {
    TimeNs::from_secs_f64(at.as_secs_f64() + shift_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phasefold_model::{extract_bursts, CounterKind, DurNs};
    use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
    use phasefold_simapp::{simulate, SimConfig};

    fn sim() -> (phasefold_simapp::Program, phasefold_simapp::SimOutput) {
        let program = build(&SyntheticParams { iterations: 50, ..SyntheticParams::default() });
        let out = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
        (program, out)
    }

    #[test]
    fn produces_records_for_every_rank() {
        let (program, out) = sim();
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        assert_eq!(trace.num_ranks(), 2);
        for (_, stream) in trace.iter_ranks() {
            assert!(stream.len() > 100, "only {} records", stream.len());
        }
    }

    #[test]
    fn comm_boundaries_enable_burst_extraction() {
        let (program, out) = sim();
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        let bursts = extract_bursts(&trace, DurNs::ZERO);
        // 50 iterations × 2 ranks, minus the prologue burst per rank.
        assert_eq!(bursts.len(), 2 * 49);
        for b in &bursts {
            assert!(b.counters[CounterKind::Instructions] > 0.0);
        }
    }

    #[test]
    fn sample_counts_scale_with_period() {
        let (program, out) = sim();
        let count = |period_ms: u64| {
            let cfg = TracerConfig {
                sampling_period: DurNs::from_millis(period_ms),
                ..TracerConfig::default()
            };
            let trace = trace_run(&program.registry, &out.timelines, &cfg);
            trace
                .rank(RankId(0))
                .unwrap()
                .records()
                .iter()
                .filter(|r| r.is_sample())
                .count()
        };
        let fine = count(2);
        let coarse = count(20);
        assert!(fine > 5 * coarse, "fine={fine} coarse={coarse}");
    }

    #[test]
    fn samples_carry_callstacks_in_compute() {
        let (program, out) = sim();
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        let with_stack = trace
            .rank(RankId(0))
            .unwrap()
            .samples()
            .filter(|s| !s.callstack.is_empty())
            .count();
        assert!(with_stack > 0);
    }

    #[test]
    fn multiplexing_limits_counters_per_sample() {
        let (program, out) = sim();
        let groups = vec![
            vec![CounterKind::Instructions, CounterKind::Cycles],
            vec![CounterKind::L1DMisses, CounterKind::L2Misses],
        ];
        let cfg = TracerConfig {
            multiplex: MultiplexMode::RoundRobin(groups),
            ..TracerConfig::default()
        };
        let trace = trace_run(&program.registry, &out.timelines, &cfg);
        for s in trace.rank(RankId(0)).unwrap().samples() {
            assert_eq!(s.counters.len(), 2);
        }
        // Alternating groups: roughly half the samples carry INS.
        let samples: Vec<_> = trace.rank(RankId(0)).unwrap().samples().collect();
        let with_ins = samples
            .iter()
            .filter(|s| s.counters.get(CounterKind::Instructions).is_some())
            .count();
        assert!(with_ins * 3 > samples.len() && with_ins * 3 < 2 * samples.len() + 3);
    }

    #[test]
    fn overhead_dilates_recorded_times() {
        let (program, out) = sim();
        let free = TracerConfig {
            overhead: crate::config::OverheadConfig::FREE,
            ..TracerConfig::default()
        };
        let costly = TracerConfig {
            sampling_period: DurNs::from_micros(200),
            overhead: crate::config::OverheadConfig { per_sample_s: 50e-6, per_event_s: 1e-6 },
            ..TracerConfig::default()
        };
        let t_free = trace_run(&program.registry, &out.timelines, &free);
        let t_costly = trace_run(&program.registry, &out.timelines, &costly);
        assert!(t_costly.end_time() > t_free.end_time());
    }

    #[test]
    fn overhead_report_reflects_sampling_rate() {
        let (program, out) = sim();
        let report_for = |period_us: u64| {
            let cfg = TracerConfig {
                sampling_period: DurNs::from_micros(period_us),
                overhead: crate::config::OverheadConfig {
                    per_sample_s: 10e-6,
                    per_event_s: 0.2e-6,
                },
                ..TracerConfig::default()
            };
            trace_run_with_overhead(&program.registry, &out.timelines, &cfg).1
        };
        let fine = report_for(100);
        let coarse = report_for(10_000);
        assert!(fine.relative_dilation() > 5.0 * coarse.relative_dilation());
        assert!(coarse.relative_dilation() < 0.01, "{}", coarse.relative_dilation());
        assert!(fine.samples > coarse.samples);
    }

    #[test]
    fn deterministic_given_seed() {
        let (program, out) = sim();
        let cfg = TracerConfig::default();
        let a = trace_run(&program.registry, &out.timelines, &cfg);
        let b = trace_run(&program.registry, &out.timelines, &cfg);
        for (rank, stream) in a.iter_ranks() {
            assert_eq!(stream.records(), b.rank(rank).unwrap().records());
        }
    }

    #[test]
    fn sample_counters_match_ground_truth_when_free() {
        let (program, out) = sim();
        let cfg = TracerConfig {
            overhead: crate::config::OverheadConfig::FREE,
            ..TracerConfig::default()
        };
        let trace = trace_run(&program.registry, &out.timelines, &cfg);
        for s in trace.rank(RankId(0)).unwrap().samples().take(20) {
            let truth = out.timelines[0].counters_at(s.time);
            let got = s.counters.get(CounterKind::Instructions).unwrap();
            assert!((got - truth[CounterKind::Instructions]).abs() < 1.0, "at {}", s.time);
        }
    }
}
