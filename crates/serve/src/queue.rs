//! Bounded job queue with panic isolation.
//!
//! Connection threads `try_submit` analysis jobs; a fixed pool of worker
//! threads executes them. The queue depth is a hard bound — a full queue
//! rejects immediately (the server turns that into `503` +
//! `Retry-After`), so a burst of submissions degrades into backpressure
//! instead of unbounded memory growth. Each job runs under
//! `catch_unwind`, mirroring the panic isolation of `phasefold::pool`:
//! one poisoned trace cannot take a worker (or the daemon) down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its configured depth; try again shortly.
    Full,
    /// The queue has been drained; the daemon is shutting down.
    ShuttingDown,
}

/// Locks a mutex, recovering from poisoning (a panicking holder must not
/// wedge the daemon; the guarded state stays internally consistent because
/// every critical section is a single field update).
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Fixed worker pool draining a bounded queue of boxed jobs.
pub struct JobQueue {
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Jobs queued or executing right now.
    in_flight: Arc<AtomicUsize>,
    /// Jobs whose closure panicked (isolated, worker survived).
    panicked: Arc<AtomicUsize>,
    /// Jobs that ran to completion.
    completed: Arc<AtomicUsize>,
}

impl JobQueue {
    /// Spawns `workers` threads behind a queue holding at most `depth`
    /// not-yet-started jobs.
    pub fn new(workers: usize, depth: usize) -> JobQueue {
        let (tx, rx) = mpsc::sync_channel::<Job>(depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let panicked = Arc::new(AtomicUsize::new(0));
        let completed = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let in_flight = Arc::clone(&in_flight);
                let panicked = Arc::clone(&panicked);
                let completed = Arc::clone(&completed);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        // Name the obs lane so request span trees show which
                        // worker executed the job.
                        phasefold_obs::span::set_lane_name(&format!("serve-worker-{i}"));
                        worker_loop(&rx, &in_flight, &panicked, &completed)
                    })
            })
            .filter_map(|h| h.ok())
            .collect();
        JobQueue {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            in_flight,
            panicked,
            completed,
        }
    }

    /// Submits a job without blocking. `Err(Full)` is the backpressure
    /// signal; the job is returned to the caller's stack unrun.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let guard = lock_recover(&self.tx);
        let Some(tx) = guard.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        // Count before sending so a worker that grabs the job instantly
        // still sees a non-zero in-flight figure.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                phasefold_obs::counter!("serve.queue_rejections", 1);
                Err(SubmitError::Full)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Jobs queued or executing right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Jobs that ran to completion.
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::SeqCst)
    }

    /// Jobs whose closure panicked.
    pub fn panicked(&self) -> usize {
        self.panicked.load(Ordering::SeqCst)
    }

    /// Drains the queue: stops accepting new jobs, lets queued and
    /// executing jobs finish, and joins every worker. Idempotent.
    pub fn drain(&self) {
        // Dropping the sender lets workers drain the channel then observe
        // the disconnect and exit.
        lock_recover(&self.tx).take();
        let handles: Vec<JoinHandle<()>> = lock_recover(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Deadline-aware [`JobQueue::drain`]: stops accepting new jobs, then
    /// waits for queued and executing jobs only until `deadline`. Workers
    /// still running a job at the deadline are detached — they finish (or
    /// the process exits) on their own; the daemon's shutdown must not
    /// block behind a slow or hung analysis. Returns the number of jobs
    /// still in flight when the drain gave up (0 = clean). Idempotent.
    pub fn drain_until(&self, deadline: std::time::Instant) -> usize {
        lock_recover(&self.tx).take();
        while self.in_flight() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let handles: Vec<JoinHandle<()>> = lock_recover(&self.workers).drain(..).collect();
        let timed_out = self.in_flight() > 0;
        for h in handles {
            // With no jobs left every worker observes the disconnect
            // immediately, so an unconditional join is prompt. After a
            // timeout only the already-idle workers are joined.
            if !timed_out || h.is_finished() {
                let _ = h.join();
            }
        }
        self.in_flight()
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<Job>>>,
    in_flight: &AtomicUsize,
    panicked: &AtomicUsize,
    completed: &AtomicUsize,
) {
    loop {
        // Hold the receiver lock only while waiting, never while running a
        // job, so workers execute in parallel.
        let job = match lock_recover(rx).recv() {
            Ok(job) => job,
            Err(_) => return, // sender dropped and queue empty: drained
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            panicked.fetch_add(1, Ordering::SeqCst);
            phasefold_obs::counter!("serve.jobs_panicked", 1);
        } else {
            completed.fetch_add(1, Ordering::SeqCst);
        }
        in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let q = JobQueue::new(2, 8);
        let (tx, rx) = channel();
        for i in 0..8 {
            let tx = tx.clone();
            q.try_submit(Box::new(move || tx.send(i).unwrap())).unwrap();
        }
        let mut got: Vec<i32> = (0..8)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        q.drain();
        assert_eq!(q.completed(), 8);
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = JobQueue::new(1, 1);
        let (block_tx, block_rx) = channel::<()>();
        // Occupy the single worker…
        q.try_submit(Box::new(move || {
            let _ = block_rx.recv_timeout(Duration::from_secs(5));
        }))
        .unwrap();
        // …fill the single queue slot (may need a moment for the worker to
        // pick up the first job)…
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match q.try_submit(Box::new(|| {})) {
                Ok(()) => break,
                Err(SubmitError::Full) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        // …now a further submission must bounce.
        let mut saw_full = false;
        for _ in 0..50 {
            if q.try_submit(Box::new(|| {})) == Err(SubmitError::Full) {
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "bounded queue never reported Full");
        block_tx.send(()).unwrap();
        q.drain();
    }

    #[test]
    fn panicking_job_is_isolated() {
        let q = JobQueue::new(1, 4);
        q.try_submit(Box::new(|| panic!("poisoned job"))).unwrap();
        let (tx, rx) = channel();
        q.try_submit(Box::new(move || tx.send(42u8).unwrap())).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        q.drain();
        assert_eq!(q.panicked(), 1);
        assert_eq!(q.completed(), 1);
    }

    #[test]
    fn drain_until_gives_up_on_overrunning_jobs() {
        use std::time::Instant;
        let q = JobQueue::new(1, 4);
        let (release_tx, release_rx) = channel::<()>();
        q.try_submit(Box::new(move || {
            let _ = release_rx.recv_timeout(Duration::from_secs(30));
        }))
        .unwrap();
        // Wait for the worker to pick the job up so in_flight is honest.
        let pickup = Instant::now() + Duration::from_secs(5);
        while q.in_flight() == 0 && Instant::now() < pickup {
            std::thread::sleep(Duration::from_millis(1));
        }
        let start = Instant::now();
        let left = q.drain_until(Instant::now() + Duration::from_millis(100));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drain_until blocked past its deadline"
        );
        assert_eq!(left, 1, "the hung job must be reported, not waited out");
        assert_eq!(q.try_submit(Box::new(|| {})), Err(SubmitError::ShuttingDown));
        // Release the detached worker so the test process exits cleanly.
        release_tx.send(()).unwrap();
    }

    #[test]
    fn drain_until_is_prompt_when_idle() {
        let q = JobQueue::new(2, 4);
        let (tx, rx) = channel();
        q.try_submit(Box::new(move || tx.send(1u8).unwrap())).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 1);
        let left = q.drain_until(std::time::Instant::now() + Duration::from_secs(30));
        assert_eq!(left, 0);
        assert_eq!(q.completed(), 1);
    }

    #[test]
    fn drain_rejects_new_work_and_is_idempotent() {
        let q = JobQueue::new(1, 4);
        q.drain();
        assert_eq!(q.try_submit(Box::new(|| {})), Err(SubmitError::ShuttingDown));
        q.drain();
    }
}
