//! Integration tests for the serve-path telemetry: request ids, latency
//! histograms, Prometheus exposition, the access log, and the flight
//! recorder's `/debug/*` endpoints.

mod common;

use common::{boot, test_config, trace_text};
use phasefold_serve::{one_shot, Client};
use std::time::Duration;

#[test]
fn every_response_carries_a_request_id() {
    let (handle, addr) = boot(test_config());
    let mut client = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
    assert_eq!(client.last_request_id(), None);
    let first = client.request("GET", "/healthz", &[], b"").expect("healthz");
    let first_id = first.header("x-request-id").expect("request id header").to_string();
    assert!(first_id.parse::<u64>().expect("numeric id") > 0);
    assert_eq!(client.last_request_id(), Some(first_id.as_str()));
    // Ids are unique per request, even a 404.
    let second = client.request("GET", "/no/such/path", &[], b"").expect("404");
    assert_eq!(second.status, 404);
    let second_id = second.header("x-request-id").expect("404 has an id too");
    assert_ne!(first_id, second_id);
    assert_eq!(client.last_request_id(), Some(second_id));
    handle.shutdown();
}

#[test]
fn healthz_reports_uptime_and_request_totals() {
    let (handle, addr) = boot(test_config());
    let resp = one_shot(&addr, "GET", "/healthz", b"").expect("healthz");
    let text = resp.text();
    assert!(text.contains("\"uptime_seconds\":"), "{text}");
    assert!(text.contains("\"requests_total\": 1"), "{text}");
    handle.shutdown();
}

#[test]
fn latency_histograms_appear_in_metrics_json() {
    let (handle, addr) = boot(test_config());
    let body = trace_text(40, 2, 1);
    let resp = one_shot(&addr, "POST", "/v1/analyze", body.as_bytes()).expect("analyze");
    assert_eq!(resp.status, 200);
    let metrics = one_shot(&addr, "GET", "/metrics", b"").expect("metrics").text();
    let line = metrics
        .lines()
        .find(|l| l.contains("\"serve.latency.analyze\""))
        .expect("analyze latency histogram exported");
    assert!(line.contains("\"count\": "), "{line}");
    assert!(line.contains("\"p99_ms\": "), "{line}");
    for h in ["serve.queue_wait", "serve.analyze_time", "serve.cache_lookup"] {
        assert!(metrics.lines().any(|l| l.contains(&format!("\"{h}\""))), "missing {h}");
    }
    handle.shutdown();
}

#[test]
fn prometheus_exposition_renders_buckets_and_server_series() {
    let (handle, addr) = boot(test_config());
    let body = trace_text(40, 2, 2);
    assert_eq!(
        one_shot(&addr, "POST", "/v1/analyze", body.as_bytes()).expect("analyze").status,
        200
    );
    let resp = one_shot(&addr, "GET", "/metrics?format=prom", b"").expect("prom");
    assert_eq!(resp.status, 200);
    assert!(resp.header("content-type").is_some_and(|t| t.starts_with("text/plain")));
    let prom = resp.text();
    assert!(prom.contains("# TYPE serve_requests counter"), "{prom}");
    assert!(prom.contains("# TYPE serve_uptime_seconds gauge"), "{prom}");
    assert!(prom.contains("# TYPE serve_latency_analyze histogram"), "{prom}");
    assert!(prom.lines().any(|l| l.starts_with("serve_latency_analyze_bucket{le=\"+Inf\"}")));
    assert!(prom.lines().any(|l| l.starts_with("serve_latency_analyze_count ")));
    assert!(prom.lines().any(|l| l.starts_with("serve_latency_analyze_sum ")));
    // Unknown formats are rejected, not silently JSON.
    assert_eq!(one_shot(&addr, "GET", "/metrics?format=xml", b"").expect("xml").status, 400);
    handle.shutdown();
}

#[test]
fn debug_requests_lists_recent_and_slowest() {
    let (handle, addr) = boot(test_config());
    let body = trace_text(40, 2, 3);
    let mut client = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
    assert_eq!(client.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap().status, 200);
    assert_eq!(client.request("GET", "/healthz", &[], b"").unwrap().status, 200);
    let debug = client.request("GET", "/debug/requests", &[], b"").expect("debug");
    assert_eq!(debug.status, 200);
    let text = debug.text();
    assert!(text.contains("\"schema\": \"phasefold-serve-debug/1\""), "{text}");
    assert!(text.contains("\"endpoint\": \"analyze\""), "{text}");
    assert!(text.contains("\"endpoint\": \"healthz\""), "{text}");
    assert!(text.contains("\"spans_retained\":"), "{text}");
    handle.shutdown();
}

#[test]
fn debug_trace_replays_a_slow_request_across_threads() {
    let (handle, addr) = boot(test_config());
    let body = trace_text(60, 2, 4);
    let mut client = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
    let resp = client.request("POST", "/v1/analyze", &[], body.as_bytes()).expect("analyze");
    assert_eq!(resp.status, 200);
    let id = client.last_request_id().expect("request id").to_string();

    let trace = client
        .request("GET", &format!("/debug/trace/{id}"), &[], b"")
        .expect("debug trace");
    assert_eq!(trace.status, 200, "{}", trace.text());
    let json = trace.text();
    assert!(json.trim_start().starts_with('['), "chrome-trace array: {json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    // Every span belongs to this request's trace id...
    assert!(json.contains(&format!("\"trace_id\":{id}")), "{json}");
    // ...and the tree crosses the connection/worker thread boundary: the
    // root request span and the analyze job span carry different tids.
    let tid_of = |name: &str| -> Option<String> {
        json.lines().find(|l| l.contains(name)).and_then(|l| {
            let rest = l.split("\"tid\":").nth(1)?;
            Some(rest.split(',').next()?.trim().to_string())
        })
    };
    let root_tid = tid_of("serve.request POST /v1/analyze").expect("root span exported");
    let job_tid = tid_of("serve.analyze_job").expect("job span exported");
    assert_ne!(root_tid, job_tid, "span tree must cross the queue/worker boundary");
    // The worker lane is named in the replay's metadata.
    assert!(json.contains("serve-worker-"), "{json}");

    // Bogus / unretained ids answer 4xx, never 5xx.
    assert_eq!(client.request("GET", "/debug/trace/abc", &[], b"").unwrap().status, 400);
    assert_eq!(
        client.request("GET", "/debug/trace/18446744073709551615", &[], b"").unwrap().status,
        404
    );
    handle.shutdown();
}

#[test]
fn access_log_records_sampled_requests_as_json_lines() {
    let dir = std::env::temp_dir().join(format!("phasefold-acclog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let log_path = dir.join("access.log");
    let config = phasefold_serve::ServeConfig {
        access_log: Some(log_path.clone()),
        ..test_config()
    };
    let (handle, addr) = boot(config);
    let body = trace_text(40, 2, 5);
    let mut client = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
    assert_eq!(client.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap().status, 200);
    let id = client.last_request_id().expect("id").to_string();
    handle.shutdown();
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let line = log
        .lines()
        .find(|l| l.contains(&format!("\"request_id\":{id}")))
        .expect("analyze request logged");
    assert!(line.contains("\"endpoint\":\"analyze\""), "{line}");
    assert!(line.contains("\"status\":200"), "{line}");
    assert!(line.contains("\"total_ms\":"), "{line}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_sample_rate_still_answers_ids_but_keeps_no_traces() {
    let config = phasefold_serve::ServeConfig { trace_sample_rate: 0.0, ..test_config() };
    let (handle, addr) = boot(config);
    let body = trace_text(40, 2, 6);
    let mut client = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
    assert_eq!(client.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap().status, 200);
    let id = client.last_request_id().expect("id").to_string();
    // Unsampled → no span capture retained to replay.
    let resp = client.request("GET", &format!("/debug/trace/{id}"), &[], b"").unwrap();
    assert_eq!(resp.status, 404);
    // But the recent ring still has the summary.
    let debug = client.request("GET", "/debug/requests", &[], b"").unwrap().text();
    assert!(debug.contains(&format!("\"id\": {id}")), "{debug}");
    handle.shutdown();
}
