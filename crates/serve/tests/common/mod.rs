//! Shared helpers for the serve integration tests: synthetic traces and a
//! daemon booted on an ephemeral port.

use phasefold_model::prv;
use phasefold_model::Trace;
use phasefold_serve::{serve, ServeConfig, ServerHandle};
use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
use phasefold_simapp::{simulate, SimConfig};
use phasefold_tracer::{trace_run, TracerConfig};

/// A small synthetic trace; `seed` varies the noise streams so different
/// seeds produce different canonical bytes (distinct cache keys).
pub fn traced(iterations: u64, ranks: usize, seed: u64) -> Trace {
    let program = build(&SyntheticParams { iterations, ..SyntheticParams::default() });
    let out = simulate(&program, &SimConfig { ranks, seed, ..SimConfig::default() });
    trace_run(&program.registry, &out.timelines, &TracerConfig::default())
}

/// The same trace in wire (PRV text) form.
pub fn trace_text(iterations: u64, ranks: usize, seed: u64) -> String {
    prv::write_trace(&traced(iterations, ranks, seed))
}

/// Boots a daemon on an ephemeral port and returns `(handle, "host:port")`.
pub fn boot(config: ServeConfig) -> (ServerHandle, String) {
    let handle = serve(config).expect("daemon failed to boot");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// A serve config tuned for tests: small queue, quick read timeout.
pub fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_depth: 16,
        read_timeout: std::time::Duration::from_secs(2),
        drain_deadline: std::time::Duration::from_secs(15),
        ..ServeConfig::default()
    }
}
