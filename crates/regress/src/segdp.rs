//! Optimal *discontinuous* segmented least squares by dynamic programming
//! (Bellman segmentation).
//!
//! Given points sorted by `x`, `segment_dp` finds, for each segment count
//! `m = 1..=max_segments`, the partition into `m` contiguous runs that
//! minimises the total SSE of per-run independent lines. The run boundaries
//! are the breakpoint *proposals* handed to the continuous-model refinement
//! ([`crate::breakpoints`]): the DP is exhaustive-optimal, so it cannot miss
//! a phase boundary that the data supports, at O(n²) cost — which is why it
//! runs on the binned series, not the raw folded scatter.

/// Per-`m` result of the dynamic program.
#[derive(Debug, Clone, PartialEq)]
pub struct Segmentation {
    /// Number of segments `m`.
    pub num_segments: usize,
    /// Total SSE of the optimal `m`-segment partition.
    pub sse: f64,
    /// Interior breakpoints (x positions, length `m − 1`): the midpoint
    /// between the last point of one run and the first point of the next.
    pub breakpoints: Vec<f64>,
}

/// Weighted prefix sums enabling O(1) per-interval line-fit SSE.
struct PrefixSums {
    w: Vec<f64>,
    wx: Vec<f64>,
    wy: Vec<f64>,
    wxx: Vec<f64>,
    wxy: Vec<f64>,
    wyy: Vec<f64>,
}

impl PrefixSums {
    fn build(xs: &[f64], ys: &[f64], weights: Option<&[f64]>) -> PrefixSums {
        let n = xs.len();
        let mut p = PrefixSums {
            w: vec![0.0; n + 1],
            wx: vec![0.0; n + 1],
            wy: vec![0.0; n + 1],
            wxx: vec![0.0; n + 1],
            wxy: vec![0.0; n + 1],
            wyy: vec![0.0; n + 1],
        };
        for i in 0..n {
            let w = weights.map_or(1.0, |w| w[i]);
            let (x, y) = (xs[i], ys[i]);
            p.w[i + 1] = p.w[i] + w;
            p.wx[i + 1] = p.wx[i] + w * x;
            p.wy[i + 1] = p.wy[i] + w * y;
            p.wxx[i + 1] = p.wxx[i] + w * x * x;
            p.wxy[i + 1] = p.wxy[i] + w * x * y;
            p.wyy[i + 1] = p.wyy[i] + w * y * y;
        }
        p
    }

    /// Weighted SSE of the best-fit line over points `i..=j` (inclusive).
    fn line_sse(&self, i: usize, j: usize) -> f64 {
        let w = self.w[j + 1] - self.w[i];
        if w <= 0.0 {
            return 0.0;
        }
        let sx = self.wx[j + 1] - self.wx[i];
        let sy = self.wy[j + 1] - self.wy[i];
        let sxx = self.wxx[j + 1] - self.wxx[i];
        let sxy = self.wxy[j + 1] - self.wxy[i];
        let syy = self.wyy[j + 1] - self.wyy[i];
        // Centered second moments.
        let cxx = sxx - sx * sx / w;
        let cxy = sxy - sx * sy / w;
        let cyy = syy - sy * sy / w;
        let sse = if cxx > 1e-300 { cyy - cxy * cxy / cxx } else { cyy };
        sse.max(0.0)
    }
}

/// Runs the segmentation DP.
///
/// * `xs` must be sorted ascending (checked by debug assertion).
/// * `min_points` is the minimum number of points per segment (≥ 2 is
///   sensible; lines on single points are degenerate).
///
/// Returns one [`Segmentation`] per `m = 1..=max_segments` (fewer if `n`
/// cannot accommodate more segments).
pub fn segment_dp(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    max_segments: usize,
    min_points: usize,
) -> Vec<Segmentation> {
    assert_eq!(xs.len(), ys.len());
    debug_assert!(xs.windows(2).all(|w| w[0] <= w[1]), "xs must be sorted");
    let n = xs.len();
    let min_points = min_points.max(1);
    if n == 0 || max_segments == 0 {
        return Vec::new();
    }
    let reachable = n / min_points;
    let m_max = max_segments.min(reachable.max(1)).max(1);
    let p = PrefixSums::build(xs, ys, weights);

    // cost[i][j]: SSE of one line over points i..=j, computed lazily via p.
    // dp[m][j]: best SSE covering points 0..=j with m+1 segments.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n]; m_max];
    let mut back: Vec<Vec<usize>> = vec![vec![0; n]; m_max];
    for j in 0..n {
        if j + 1 >= min_points {
            dp[0][j] = p.line_sse(0, j);
        }
    }
    for m in 1..m_max {
        for j in 0..n {
            if (j + 1) < (m + 1) * min_points {
                continue;
            }
            let mut best = inf;
            let mut best_i = 0;
            // Segment m covers i..=j; previous segments cover 0..=i-1.
            let i_lo = m * min_points;
            let i_hi = j + 1 - min_points;
            for i in i_lo..=i_hi {
                let prev = dp[m - 1][i - 1];
                if !prev.is_finite() {
                    continue;
                }
                let c = prev + p.line_sse(i, j);
                if c < best {
                    best = c;
                    best_i = i;
                }
            }
            dp[m][j] = best;
            back[m][j] = best_i;
        }
    }

    let mut out = Vec::new();
    for m in 0..m_max {
        if !dp[m][n - 1].is_finite() {
            continue;
        }
        // Recover the run starts by walking the back-pointers.
        let mut starts = Vec::with_capacity(m);
        let mut j = n - 1;
        let mut mm = m;
        while mm > 0 {
            let i = back[mm][j];
            starts.push(i);
            j = i - 1;
            mm -= 1;
        }
        starts.reverse();
        let breakpoints = starts
            .iter()
            .map(|&i| 0.5 * (xs[i - 1] + xs[i]))
            .collect();
        out.push(Segmentation {
            num_segments: m + 1,
            sse: dp[m][n - 1],
            breakpoints,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn piecewise(x: f64) -> f64 {
        if x < 0.5 {
            2.0 * x
        } else {
            1.0 + 10.0 * (x - 0.5)
        }
    }

    fn grid(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn one_segment_matches_line_sse() {
        let xs = grid(20);
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x + 1.0).collect();
        let segs = segment_dp(&xs, &ys, None, 1, 2);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].sse < 1e-18);
        assert!(segs[0].breakpoints.is_empty());
    }

    #[test]
    fn two_segments_find_the_break() {
        let xs = grid(40);
        let ys: Vec<f64> = xs.iter().map(|&x| piecewise(x)).collect();
        let segs = segment_dp(&xs, &ys, None, 3, 2);
        let two = segs.iter().find(|s| s.num_segments == 2).unwrap();
        assert_eq!(two.breakpoints.len(), 1);
        assert!(
            (two.breakpoints[0] - 0.5).abs() < 0.05,
            "breakpoint at {}",
            two.breakpoints[0]
        );
        assert!(two.sse < 1e-12);
    }

    #[test]
    fn sse_is_monotone_in_segments() {
        let xs = grid(60);
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| piecewise(x) + 0.05 * (x * 57.0).sin())
            .collect();
        let segs = segment_dp(&xs, &ys, None, 5, 2);
        for w in segs.windows(2) {
            assert!(w[1].sse <= w[0].sse + 1e-12);
        }
    }

    #[test]
    fn dp_is_optimal_vs_bruteforce_two_segments() {
        // Exhaustive check on a small noisy instance.
        let xs = grid(12);
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| piecewise(x) + if i % 3 == 0 { 0.07 } else { -0.03 })
            .collect();
        let p = PrefixSums::build(&xs, &ys, None);
        let mut best = f64::INFINITY;
        for split in 2..=xs.len() - 2 {
            let c = p.line_sse(0, split - 1) + p.line_sse(split, xs.len() - 1);
            best = best.min(c);
        }
        let segs = segment_dp(&xs, &ys, None, 2, 2);
        let two = segs.iter().find(|s| s.num_segments == 2).unwrap();
        assert!((two.sse - best).abs() < 1e-12);
    }

    #[test]
    fn min_points_limits_segment_count() {
        let xs = grid(7);
        let ys = xs.clone();
        let segs = segment_dp(&xs, &ys, None, 10, 3);
        // 7 points with >=3 per segment -> at most 2 segments.
        assert!(segs.iter().all(|s| s.num_segments <= 2));
    }

    #[test]
    fn empty_input() {
        assert!(segment_dp(&[], &[], None, 3, 2).is_empty());
    }

    #[test]
    fn weights_shift_the_optimum() {
        // Step data where the first half is weighted very low: the 2-segment
        // solution must spend its break serving the heavy half.
        let xs = grid(30);
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 0.3 { 5.0 * x } else if x < 0.7 { 1.5 } else { 1.5 + 8.0 * (x - 0.7) })
            .collect();
        let w: Vec<f64> = xs.iter().map(|&x| if x < 0.3 { 1e-9 } else { 1.0 }).collect();
        let segs = segment_dp(&xs, &ys, Some(&w), 2, 2);
        let two = segs.iter().find(|s| s.num_segments == 2).unwrap();
        assert!(
            (two.breakpoints[0] - 0.7).abs() < 0.06,
            "breakpoint at {}",
            two.breakpoints[0]
        );
    }

    #[test]
    fn three_phase_recovery() {
        let xs = grid(90);
        let truth = |x: f64| {
            if x < 0.33 {
                4.0 * x
            } else if x < 0.66 {
                1.32 + 0.2 * (x - 0.33)
            } else {
                1.386 + 6.0 * (x - 0.66)
            }
        };
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let segs = segment_dp(&xs, &ys, None, 3, 2);
        let three = segs.iter().find(|s| s.num_segments == 3).unwrap();
        assert!((three.breakpoints[0] - 0.33).abs() < 0.05);
        assert!((three.breakpoints[1] - 0.66).abs() < 0.05);
    }
}
