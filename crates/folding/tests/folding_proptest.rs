//! Property-based tests for the folding mechanism.

use proptest::prelude::*;

use phasefold_cluster::Clustering;
use phasefold_folding::{fold_trace, prune_outliers, FoldConfig, FoldInstance, FoldedPoint, FoldedProfile};
use phasefold_model::{
    CallStack, CommKind, CounterKind, CounterSet, PartialCounterSet, RankId, Record, Sample,
    SourceRegistry, TimeNs, Trace,
};

/// Builds a single-rank trace of `n` bursts with given durations (µs) and
/// one mid-burst sample each.
fn trace_of(durations_us: &[u32]) -> Trace {
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    let mut t = 0u64;
    let mut acc = 0.0f64;
    for &d in durations_us {
        let dur = (d as u64).max(1) * 1_000;
        let mut counters = CounterSet::ZERO;
        counters[CounterKind::Instructions] = acc;
        stream
            .push(Record::CommExit { time: TimeNs(t), kind: CommKind::Collective, counters })
            .unwrap();
        // One sample mid-burst; counters accumulate linearly.
        let mid = t + dur / 2;
        let mut mid_counters = CounterSet::ZERO;
        mid_counters[CounterKind::Instructions] = acc + 500.0;
        stream
            .push(Record::Sample(Sample {
                time: TimeNs(mid),
                counters: PartialCounterSet::from_full(&mid_counters),
                callstack: CallStack::empty(),
            }))
            .unwrap();
        t += dur;
        acc += 1000.0;
        let mut end_counters = CounterSet::ZERO;
        end_counters[CounterKind::Instructions] = acc;
        stream
            .push(Record::CommEnter {
                time: TimeNs(t),
                kind: CommKind::Collective,
                counters: end_counters,
            })
            .unwrap();
        t += 1_000; // comm gap
    }
    trace
}

fn one_cluster(n: usize) -> Clustering {
    Clustering {
        labels: vec![Some(0); n],
        num_clusters: 1,
        eps: 0.1,
        spmd_score: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Folded points always live in the unit square and carry valid
    /// instance ids.
    #[test]
    fn folded_points_in_unit_square(durations in proptest::collection::vec(50u32..5000, 4..40)) {
        let trace = trace_of(&durations);
        let bursts = phasefold_model::extract_bursts(&trace, phasefold_model::DurNs::ZERO);
        let clustering = one_cluster(bursts.len());
        let folds = fold_trace(&trace, &bursts, &clustering, &FoldConfig::default());
        if let Some(fold) = folds.first() {
            let profile = fold.profile(CounterKind::Instructions);
            for p in profile.iter() {
                prop_assert!((0.0..=1.0).contains(&p.x));
                prop_assert!((0.0..=1.0).contains(&p.y));
                prop_assert!((p.instance as usize) < fold.instances_used);
            }
        }
    }

    /// Fold accounting always closes: kept + pruned == clustered bursts.
    #[test]
    fn fold_accounting_closes(durations in proptest::collection::vec(50u32..5000, 4..40)) {
        let trace = trace_of(&durations);
        let bursts = phasefold_model::extract_bursts(&trace, phasefold_model::DurNs::ZERO);
        let clustering = one_cluster(bursts.len());
        let folds = fold_trace(&trace, &bursts, &clustering, &FoldConfig::default());
        if let Some(fold) = folds.first() {
            prop_assert_eq!(fold.instances_used + fold.instances_pruned, bursts.len());
        }
    }

    /// Outlier pruning: kept ∪ pruned is a partition; the median instance
    /// always survives; pruning is idempotent.
    #[test]
    fn prune_partition_and_idempotence(durs in proptest::collection::vec(0.001f64..10.0, 4..60)) {
        let instances: Vec<FoldInstance> = durs
            .iter()
            .enumerate()
            .map(|(i, &d)| FoldInstance { burst_index: i, dur_s: d, samples: vec![] })
            .collect();
        let n = instances.len();
        let (kept, pruned) = prune_outliers(instances, 3.0);
        prop_assert_eq!(kept.len() + pruned.len(), n);
        // Median duration survives.
        let mut sorted = durs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        prop_assert!(kept.iter().any(|i| (i.dur_s - median).abs() < 1e-12));
        // Idempotence: pruning the kept set changes nothing... the median
        // of the kept set may shift, so allow at most minor follow-up
        // pruning but never growth.
        let kept_n = kept.len();
        let (kept2, _) = prune_outliers(kept, 3.0);
        prop_assert!(kept2.len() <= kept_n);
    }

    /// SoA/AoS equivalence: a profile built by pushing points stores them
    /// bit-identically in its column arrays, and every read path (per-point
    /// accessor, iterator, column slices, bulk constructor) agrees with the
    /// original array-of-structs source.
    #[test]
    fn soa_columns_match_aos_source(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0u32..64), 0..80),
        mean_total in 1.0f64..1e9,
    ) {
        let points: Vec<FoldedPoint> =
            raw.iter().map(|&(x, y, instance)| FoldedPoint { x, y, instance }).collect();

        let mut pushed = FoldedProfile::from_points(&[], mean_total);
        for &p in &points {
            pushed.push(p);
        }
        let bulk = FoldedProfile::from_points(&points, mean_total);

        for profile in [&pushed, &bulk] {
            prop_assert_eq!(profile.len(), points.len());
            prop_assert_eq!(profile.is_empty(), points.is_empty());
            let (xs, ys) = profile.xy();
            prop_assert_eq!(xs.len(), points.len());
            for (i, p) in points.iter().enumerate() {
                // Bit-level equality: SoA is a storage change, not an
                // arithmetic one.
                prop_assert_eq!(profile.xs()[i].to_bits(), p.x.to_bits());
                prop_assert_eq!(profile.ys()[i].to_bits(), p.y.to_bits());
                prop_assert_eq!(xs[i].to_bits(), p.x.to_bits());
                prop_assert_eq!(ys[i].to_bits(), p.y.to_bits());
                prop_assert_eq!(profile.instances()[i], p.instance);
                prop_assert_eq!(profile.point(i), *p);
            }
            let roundtrip: Vec<FoldedPoint> = profile.iter().collect();
            prop_assert_eq!(&roundtrip, &points);
        }
    }

    /// Monotone-instance property: within an instance, sorting samples by
    /// x gives non-decreasing y (accumulating counters).
    #[test]
    fn per_instance_monotonicity(durations in proptest::collection::vec(100u32..2000, 6..30)) {
        let trace = trace_of(&durations);
        let bursts = phasefold_model::extract_bursts(&trace, phasefold_model::DurNs::ZERO);
        let clustering = one_cluster(bursts.len());
        let folds = fold_trace(&trace, &bursts, &clustering, &FoldConfig::default());
        if let Some(fold) = folds.first() {
            let profile = fold.profile(CounterKind::Instructions);
            let mut by_instance: std::collections::HashMap<u32, Vec<(f64, f64)>> =
                std::collections::HashMap::new();
            for p in profile.iter() {
                by_instance.entry(p.instance).or_default().push((p.x, p.y));
            }
            for (_, mut pts) in by_instance {
                pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for w in pts.windows(2) {
                    prop_assert!(w[1].1 >= w[0].1 - 1e-12);
                }
            }
        }
    }
}
