//! Criterion micro-bench: piece-wise linear regression fitting cost as a
//! function of scatter size and true segment count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phasefold_regress::{fit_pwlr, PwlrConfig};

fn scatter(n: usize, segments: usize) -> (Vec<f64>, Vec<f64>) {
    let slopes = [2.5, 0.5, 1.8, 0.2, 3.0, 0.9, 1.4, 0.6];
    let seg_len = 1.0 / segments as f64;
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut edges_y = vec![0.0f64];
    for s in 0..segments {
        edges_y.push(edges_y[s] + slopes[s % slopes.len()] * seg_len);
    }
    for i in 0..n {
        let x = (i as f64 + 0.5) / n as f64;
        let seg = ((x / seg_len) as usize).min(segments - 1);
        let y = edges_y[seg] + slopes[seg % slopes.len()] * (x - seg as f64 * seg_len);
        let noise = 0.01 * ((((i as u64).wrapping_mul(2654435761)) % 1000) as f64 / 500.0 - 1.0);
        xs.push(x);
        ys.push(y + noise);
    }
    (xs, ys)
}

fn bench_pwlr(c: &mut Criterion) {
    let mut group = c.benchmark_group("pwlr_fit");
    for &n in &[200usize, 1000, 5000] {
        for &segments in &[2usize, 4] {
            let (xs, ys) = scatter(n, segments);
            group.bench_with_input(
                BenchmarkId::new(format!("{segments}seg"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        fit_pwlr(&xs, &ys, None, &PwlrConfig::default()).expect("fit")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pwlr);
criterion_main!(benches);
