//! Criterion micro-bench: segmentation DP — the exact branch-and-bound
//! `segment_dp` against the quadratic reference, across scatter sizes and
//! segment counts. The pruned scan's advantage grows with n (the bound
//! kills whole blocks of split candidates), so the gap should widen from
//! ~2× at n = 1 000 to ≥10× at n = 10 000 on phase-structured data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phasefold_regress::segdp::{segment_dp, segment_dp_quadratic};

/// Phase-structured scatter: `k` true linear pieces plus mild noise, the
/// shape of a binned folded profile.
fn scatter(n: usize, k: usize) -> (Vec<f64>, Vec<f64>) {
    let slopes = [2.5, 0.4, 1.8, 0.2, 3.0, 0.9, 1.4, 0.6];
    let seg_len = 1.0 / k as f64;
    let mut edges = vec![0.0f64];
    for s in 0..k {
        edges.push(edges[s] + slopes[s % slopes.len()] * seg_len);
    }
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let x = (i as f64 + 0.5) / n as f64;
        let seg = ((x / seg_len) as usize).min(k - 1);
        let y = edges[seg] + slopes[seg % slopes.len()] * (x - seg as f64 * seg_len);
        let noise =
            0.005 * ((((i as u64).wrapping_mul(2_654_435_761)) % 1000) as f64 / 500.0 - 1.0);
        xs.push(x);
        ys.push(y + noise);
    }
    (xs, ys)
}

fn bench_segdp(c: &mut Criterion) {
    let mut group = c.benchmark_group("segdp");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000, 10_000] {
        for &k in &[4usize, 8] {
            let (xs, ys) = scatter(n, k);
            group.bench_with_input(BenchmarkId::new(format!("pruned_{k}seg"), n), &n, |b, _| {
                b.iter(|| segment_dp(&xs, &ys, None, k, 3))
            });
            // The quadratic reference is too slow to sweep fully; bench it
            // at the smallest size only, as the scaling anchor.
            if n == 1_000 {
                group.bench_with_input(
                    BenchmarkId::new(format!("quadratic_{k}seg"), n),
                    &n,
                    |b, _| b.iter(|| segment_dp_quadratic(&xs, &ys, None, k, 3)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_segdp);
criterion_main!(benches);
