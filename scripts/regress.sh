#!/usr/bin/env bash
# Deploy-regression gate.
#
# Two halves, both over the same fleet fingerprint matcher that backs
# `phasefold regress-check` and the daemon's `POST /v1/compare`:
#
#   1. E21 (exp_regress): seeded synthetic before/after pairs at 0/5/10/30%
#      injected slowdowns, every pair with fresh noise on both sides.
#      Gates, read from BENCH_regress.json:
#        - recall at 30% slowdown >= RECALL_GATE (default 0.9): a slowdown
#          far above the threshold must essentially always fire,
#        - recall at 10% slowdown >= RECALL10_GATE (default 0.8): the
#          headline "10% slower deploy" case must fire reliably — this is
#          what the 0.08 default threshold is calibrated for (a gate at
#          exactly 0.10 only catches the upper half of the noise
#          distribution around a true 10% slowdown),
#        - false-positive rate on no-change pairs <= FPR_GATE (default
#          0.1): run-to-run noise must not page anyone.
#
#   2. regress-check CLI smoke: a genuinely regressed pair (blocked
#      stencil baseline vs the naive variant) must exit non-zero, a
#      no-change pair must exit zero, and a `.pffp` baseline produced by
#      `phasefold fingerprint` must gate identically to the raw trace.
#
# Usage:
#   scripts/regress.sh

set -euo pipefail
cd "$(dirname "$0")/.."

RECALL_GATE=${RECALL_GATE:-0.9}
RECALL10_GATE=${RECALL10_GATE:-0.8}
FPR_GATE=${FPR_GATE:-0.1}

WORK=$(mktemp -d /tmp/phasefold-regress.XXXXXX)
trap 'rm -rf "$WORK"' EXIT

echo "== release build =="
cargo build --release -p phasefold-cli -p phasefold-bench

PHASEFOLD=target/release/phasefold

echo "== E21: recall / false-positive sweep =="
target/release/exp_regress

extract() {
    grep "\"$1\":" BENCH_regress.json | head -1 | sed "s/.*\"$1\": \([0-9.]*\),*/\1/"
}

fail=0
recall=$(extract recall_30)
recall10=$(extract recall_10)
fpr=$(extract false_positive_rate)
awk -v r="$recall" -v gate="$RECALL_GATE" 'BEGIN {
    status = (r >= gate) ? "ok" : "MISSES REGRESSIONS";
    printf "recall at 30%% slowdown: %.4f (gate >= %.2f)   %s\n", r, gate, status;
    exit (r >= gate) ? 0 : 1;
}' || fail=1
awk -v r="$recall10" -v gate="$RECALL10_GATE" 'BEGIN {
    status = (r >= gate) ? "ok" : "MISSES 10% REGRESSIONS";
    printf "recall at 10%% slowdown: %.4f (gate >= %.2f)   %s\n", r, gate, status;
    exit (r >= gate) ? 0 : 1;
}' || fail=1
awk -v f="$fpr" -v gate="$FPR_GATE" 'BEGIN {
    status = (f <= gate) ? "ok" : "CRIES WOLF";
    printf "false-positive rate on no-change pairs: %.4f (gate <= %.2f)   %s\n", f, gate, status;
    exit (f <= gate) ? 0 : 1;
}' || fail=1

echo "== regress-check CLI smoke =="
FAST="$WORK/stencil-blocked.prv"
SLOW="$WORK/stencil-naive.prv"
SAME="$WORK/stencil-blocked-reseeded.prv"
"$PHASEFOLD" simulate stencil --ranks 2 --optimized --out "$FAST" >/dev/null
"$PHASEFOLD" simulate stencil --ranks 2 --out "$SLOW" >/dev/null
"$PHASEFOLD" simulate stencil --ranks 2 --optimized --seed 99 --out "$SAME" >/dev/null

if "$PHASEFOLD" regress-check "$FAST" "$SLOW" >"$WORK/regressed.txt" 2>&1; then
    echo "FAIL: regress-check passed a genuinely regressed pair"
    cat "$WORK/regressed.txt"
    fail=1
else
    echo "ok: regressed pair exits non-zero"
fi
grep -q 'REGRESSED' "$WORK/regressed.txt" || {
    echo "FAIL: regressed verdict does not say REGRESSED"; fail=1; }

if "$PHASEFOLD" regress-check "$FAST" "$SAME" >"$WORK/clean.txt" 2>&1; then
    echo "ok: no-change pair exits zero"
else
    echo "FAIL: regress-check flagged a reseeded identical build"
    cat "$WORK/clean.txt"
    fail=1
fi

# The .pffp baseline path must agree with the raw-trace path.
FP="$WORK/stencil-blocked.pffp"
"$PHASEFOLD" fingerprint "$FAST" --out "$FP" --build smoke-base >/dev/null
if "$PHASEFOLD" regress-check "$FP" "$SLOW" >/dev/null 2>&1; then
    echo "FAIL: .pffp baseline passed the regressed pair"
    fail=1
else
    echo "ok: .pffp baseline gates identically"
fi

if [[ $fail -ne 0 ]]; then
    echo "FAIL: regression gate"
    exit 1
fi
echo "OK: regression detection gates passed"
