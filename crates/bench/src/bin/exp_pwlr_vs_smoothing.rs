//! **E3 — PWLR vs kernel smoothing** (figure): the paper's advance over
//! the earlier folding work, which fitted the folded scatter with a
//! Kriging-style interpolation.
//!
//! Three axes of comparison on the same folded profiles:
//! * fit RMSE of the accumulated-progress curve,
//! * boundary *sharpness* — how wide the estimated rate transition is
//!   around a true breakpoint (PWLR: zero width by construction;
//!   smoothing: blurred over the bandwidth),
//! * interpretability — number of discrete phases reported (the smoother
//!   reports none; phases must be eyeballed).
//!
//! ```text
//! cargo run --release -p phasefold-bench --bin exp_pwlr_vs_smoothing
//! ```

use phasefold_bench::{banner, fmt, write_results, Table};
use phasefold_cluster::{cluster_bursts, ClusterConfig};
use phasefold_folding::{fold_trace, FoldConfig};
use phasefold_model::{extract_bursts, CounterKind, DurNs};
use phasefold_regress::{fit_pwlr, KernelSmoother, PwlrConfig};
use phasefold_simapp::workloads::synthetic::{build, true_boundaries, PhaseSpec, SyntheticParams};
use phasefold_simapp::{simulate, NoiseConfig, SimConfig};
use phasefold_tracer::{trace_run, TracerConfig};

/// Width of the transition region around breakpoint `bp`: the x-distance
/// over which the estimated rate moves from 25 % to 75 % of the way
/// between the two phases' rates.
fn transition_width(rate_at: impl Fn(f64) -> f64, bp: f64, r_before: f64, r_after: f64) -> f64 {
    let lo_level = r_before + 0.25 * (r_after - r_before);
    let hi_level = r_before + 0.75 * (r_after - r_before);
    let (lo_level, hi_level) = if r_after >= r_before {
        (lo_level, hi_level)
    } else {
        (hi_level, lo_level)
    };
    let crossing = |level: f64| -> f64 {
        // Scan outward from the breakpoint for the level crossing.
        let n = 2000;
        let mut best = 0.5;
        let mut best_d = f64::INFINITY;
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            let v = rate_at(x);
            let d = (v - level).abs();
            if d < best_d {
                best_d = d;
                best = x;
            }
        }
        best
    };
    let _ = bp;
    (crossing(hi_level) - crossing(lo_level)).abs()
}

fn main() {
    banner(
        "E3",
        "piece-wise linear regression vs kernel smoothing baseline",
        "IPDPS'14 PWLR vs the earlier Kriging-style folding interpolation",
    );
    let mut table = Table::new(&[
        "noise",
        "method",
        "curve_RMSE",
        "transition_width",
        "phases_reported",
    ]);

    for (noise_name, noise) in [
        ("none", NoiseConfig::NONE),
        ("quiet", NoiseConfig::quiet()),
        ("noisy", NoiseConfig::noisy()),
    ] {
        // Two-phase profile with a strong step at x = 0.5.
        let params = SyntheticParams {
            phases: vec![
                PhaseSpec { ipc: 2.8, rel_duration: 1.0 },
                PhaseSpec { ipc: 0.7, rel_duration: 1.0 },
            ],
            iterations: 500,
            burst_duration_s: 2e-3,
        };
        let program = build(&params);
        let out = simulate(&program, &SimConfig { ranks: 4, noise, ..SimConfig::default() });
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        let bursts = extract_bursts(&trace, DurNs::from_micros(10));
        let clustering = cluster_bursts(&bursts, &ClusterConfig::default());
        let folds = fold_trace(&trace, &bursts, &clustering, &FoldConfig::default());
        let Some(fold) = folds.first() else { continue };
        let profile = fold.profile(CounterKind::Instructions);
        let (xs, ys) = profile.xy();
        let template = out.ground_truth.dominant_template().unwrap();
        let bp = true_boundaries(&params)[0];
        let r_before = template.phases[0].rates[CounterKind::Instructions];
        let r_after = template.phases[1].rates[CounterKind::Instructions];
        // Normalised rates (slope space): rate / (total/duration).
        let norm = fold.profile(CounterKind::Instructions).mean_total / fold.mean_duration_s;

        // --- PWLR ---
        let fit = fit_pwlr(&xs, &ys, None, &PwlrConfig::default()).expect("pwlr");
        let truth_curve = |x: f64| template.normalized_accumulation(CounterKind::Instructions, x);
        let rmse_of = |f: &dyn Fn(f64) -> f64| -> f64 {
            let n = 512;
            let sse: f64 = (0..n)
                .map(|i| {
                    let x = (i as f64 + 0.5) / n as f64;
                    let d = f(x) - truth_curve(x);
                    d * d
                })
                .sum();
            (sse / n as f64).sqrt()
        };
        let pwlr_rmse = rmse_of(&|x| fit.fit.predict(x));
        let pwlr_width = transition_width(
            |x| fit.fit.slope_at(x) * norm,
            bp,
            r_before,
            r_after,
        );
        table.row(vec![
            noise_name.to_string(),
            "pwlr".to_string(),
            format!("{pwlr_rmse:.5}"),
            fmt(pwlr_width, 4),
            fit.num_segments().to_string(),
        ]);

        // --- Kernel smoother (Kriging-style stand-in) ---
        let bw = KernelSmoother::silverman_bandwidth(&xs);
        let smoother = KernelSmoother::fit(&xs, &ys, None, bw);
        let smooth_rmse = rmse_of(&|x| smoother.value(x));
        let smooth_width = transition_width(
            |x| smoother.derivative(x) * norm,
            bp,
            r_before,
            r_after,
        );
        table.row(vec![
            noise_name.to_string(),
            "smoothing".to_string(),
            format!("{smooth_rmse:.5}"),
            fmt(smooth_width, 4),
            "0 (continuous)".to_string(),
        ]);
    }

    println!("{}", table.render_text());
    let path = write_results("e3_pwlr_vs_smoothing.csv", &table.render_csv());
    println!("csv written to {}", path.display());
    println!(
        "\nexpected shape: comparable curve RMSE for both methods, but the PWLR\n\
         transition is an order of magnitude sharper and yields discrete phases\n\
         (the smoother blurs the boundary over its bandwidth and reports none)."
    );
}
