//! Derived node-level metrics.
//!
//! Raw counter rates are hard to read; the framework's contribution
//! (emphasised in the companion ParCo'13 paper) is translating them into
//! metrics a developer recognises: MIPS, IPC, misses per kilo-instruction,
//! branch behaviour, and an at-a-glance bottleneck classification.

use phasefold_model::{CounterKind, CounterSet};

/// Human-readable performance metrics of one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseMetrics {
    /// Millions of instructions per second.
    pub mips: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1D misses per kilo-instruction.
    pub l1_mpki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// L3 misses per kilo-instruction.
    pub l3_mpki: f64,
    /// Branch misprediction ratio (misses / branches).
    pub branch_misp_ratio: f64,
    /// Fraction of instructions that are floating-point operations.
    pub fp_fraction: f64,
}

/// Coarse bottleneck classification of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Healthy IPC, low misses: core-bound and efficient.
    ComputeBound,
    /// High L3 MPKI: waiting on memory.
    MemoryBound,
    /// High L1/L2 MPKI but L3-contained: cache-capacity limited.
    CacheBound,
    /// High branch misprediction ratio.
    BranchBound,
    /// Low IPC without an obvious memory/branch cause (dependencies,
    /// issue-width limits).
    FrontendBound,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Bottleneck::ComputeBound => "compute-bound",
            Bottleneck::MemoryBound => "memory-bound",
            Bottleneck::CacheBound => "cache-bound",
            Bottleneck::BranchBound => "branch-bound",
            Bottleneck::FrontendBound => "low-ILP",
        };
        f.write_str(s)
    }
}

impl PhaseMetrics {
    /// Derives metrics from physical counter *rates* (units per second).
    pub fn from_rates(rates: &CounterSet) -> PhaseMetrics {
        let ins = rates[CounterKind::Instructions];
        let cyc = rates[CounterKind::Cycles];
        let kins = (ins / 1e3).max(1e-12);
        PhaseMetrics {
            mips: ins / 1e6,
            ipc: if cyc > 0.0 { ins / cyc } else { 0.0 },
            l1_mpki: rates[CounterKind::L1DMisses] / kins,
            l2_mpki: rates[CounterKind::L2Misses] / kins,
            l3_mpki: rates[CounterKind::L3Misses] / kins,
            branch_misp_ratio: {
                let br = rates[CounterKind::Branches];
                if br > 0.0 {
                    rates[CounterKind::BranchMisses] / br
                } else {
                    0.0
                }
            },
            fp_fraction: if ins > 0.0 { rates[CounterKind::FpOps] / ins } else { 0.0 },
        }
    }

    /// Classifies the dominant bottleneck (heuristic thresholds documented
    /// in DESIGN.md; they match the simulated core's balance point, where
    /// an L3 miss costs ~180 cycles and a mispredict ~14).
    pub fn bottleneck(&self) -> Bottleneck {
        if self.l3_mpki > 8.0 {
            Bottleneck::MemoryBound
        } else if self.branch_misp_ratio > 0.06 {
            Bottleneck::BranchBound
        } else if self.l2_mpki > 40.0 || self.l1_mpki > 100.0 {
            Bottleneck::CacheBound
        } else if self.ipc >= 1.2 {
            Bottleneck::ComputeBound
        } else {
            Bottleneck::FrontendBound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(ins: f64, cyc: f64) -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[CounterKind::Instructions] = ins;
        c[CounterKind::Cycles] = cyc;
        c
    }

    #[test]
    fn basic_derivation() {
        let mut r = rates(2.5e9, 2.5e9);
        r[CounterKind::L3Misses] = 2.5e6; // 1 MPKI
        r[CounterKind::FpOps] = 1.25e9;
        let m = PhaseMetrics::from_rates(&r);
        assert!((m.mips - 2500.0).abs() < 1e-9);
        assert!((m.ipc - 1.0).abs() < 1e-12);
        assert!((m.l3_mpki - 1.0).abs() < 1e-9);
        assert!((m.fp_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_rates_are_safe() {
        let m = PhaseMetrics::from_rates(&CounterSet::ZERO);
        assert_eq!(m.ipc, 0.0);
        assert_eq!(m.branch_misp_ratio, 0.0);
        assert!(m.l1_mpki.abs() < 1e-6);
    }

    #[test]
    fn bottleneck_classification() {
        let mut mem = PhaseMetrics::from_rates(&rates(1e9, 2.5e9));
        mem.l3_mpki = 12.0;
        assert_eq!(mem.bottleneck(), Bottleneck::MemoryBound);

        let mut cache = PhaseMetrics::from_rates(&rates(1e9, 2.5e9));
        cache.l2_mpki = 50.0;
        assert_eq!(cache.bottleneck(), Bottleneck::CacheBound);

        let mut branch = PhaseMetrics::from_rates(&rates(1e9, 2.5e9));
        branch.branch_misp_ratio = 0.09;
        assert_eq!(branch.bottleneck(), Bottleneck::BranchBound);

        // Branch trumps cache when both are elevated (its fix is cheaper).
        let mut both = PhaseMetrics::from_rates(&rates(1e9, 2.5e9));
        both.branch_misp_ratio = 0.09;
        both.l2_mpki = 120.0;
        assert_eq!(both.bottleneck(), Bottleneck::BranchBound);

        let healthy = PhaseMetrics::from_rates(&rates(6e9, 2.5e9));
        assert_eq!(healthy.bottleneck(), Bottleneck::ComputeBound);

        let slow = PhaseMetrics::from_rates(&rates(1e9, 2.5e9));
        assert_eq!(slow.bottleneck(), Bottleneck::FrontendBound);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Bottleneck::MemoryBound.to_string(), "memory-bound");
        assert_eq!(Bottleneck::FrontendBound.to_string(), "low-ILP");
    }
}
