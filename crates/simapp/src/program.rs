//! Region-tree program descriptions.
//!
//! A simulated application is a tree of *blocks*: functions and labelled
//! loops (which become interned [`RegionId`]s with real `file:line`
//! attribution), kernels (leaves with a [`KernelProfile`]) and communication
//! operations. The tree is the "syntactical structure" the paper maps
//! detected phases back onto.

use crate::kernel::KernelProfile;
use phasefold_model::{CommKind, RegionId, RegionKind, SourceRegistry};

/// A node of the program tree.
#[derive(Debug, Clone)]
pub enum Block {
    /// Sequential composition.
    Seq(Vec<Block>),
    /// A counted loop; the body runs `count` times.
    Loop {
        /// Loop label region (interned).
        region: RegionId,
        /// Trip count.
        count: u64,
        /// Loop body.
        body: Box<Block>,
    },
    /// A function; enter/exit events are instrumented by the tracer.
    Function {
        /// Function region (interned).
        region: RegionId,
        /// Function body.
        body: Box<Block>,
    },
    /// An innermost computational kernel.
    Kernel {
        /// Kernel region (interned).
        region: RegionId,
        /// Source line of the kernel's hot statement.
        line: u32,
        /// Iterations executed per encounter.
        iters: u64,
        /// Cost model.
        profile: KernelProfile,
    },
    /// A communication operation (burst boundary).
    Comm {
        /// Operation kind.
        kind: CommKind,
        /// Message payload in bytes (0 for pure synchronisation).
        bytes: f64,
    },
}

/// A complete simulated application.
#[derive(Debug, Clone)]
pub struct Program {
    /// Application name (used in reports).
    pub name: String,
    /// Interned regions of the tree.
    pub registry: SourceRegistry,
    /// Root block (conventionally a `Function` named `main`).
    pub root: Block,
}

impl Program {
    /// Validates every kernel profile in the tree (panics on inconsistent
    /// profiles; these are static bugs in workload definitions).
    pub fn validate(&self) {
        fn walk(b: &Block) {
            match b {
                Block::Seq(v) => v.iter().for_each(walk),
                Block::Loop { body, .. } | Block::Function { body, .. } => walk(body),
                Block::Kernel { profile, iters, .. } => {
                    profile.validate();
                    assert!(*iters > 0, "kernel with zero iterations");
                }
                Block::Comm { bytes, .. } => assert!(*bytes >= 0.0),
            }
        }
        walk(&self.root);
    }

    /// Total kernel iterations executed by one run (loop-expanded).
    pub fn total_kernel_iters(&self) -> u64 {
        fn walk(b: &Block) -> u64 {
            match b {
                Block::Seq(v) => v.iter().map(walk).sum(),
                Block::Loop { count, body, .. } => count * walk(body),
                Block::Function { body, .. } => walk(body),
                Block::Kernel { iters, .. } => *iters,
                Block::Comm { .. } => 0,
            }
        }
        walk(&self.root)
    }

    /// Number of communication operations executed by one run.
    pub fn total_comms(&self) -> u64 {
        fn walk(b: &Block) -> u64 {
            match b {
                Block::Seq(v) => v.iter().map(walk).sum(),
                Block::Loop { count, body, .. } => count * walk(body),
                Block::Function { body, .. } => walk(body),
                Block::Kernel { .. } => 0,
                Block::Comm { .. } => 1,
            }
        }
        walk(&self.root)
    }
}

/// Fluent builder interning regions as the tree is assembled.
///
/// ```
/// use phasefold_simapp::{KernelProfile, ProgramBuilder};
/// use phasefold_model::CommKind;
///
/// let mut b = ProgramBuilder::new("demo");
/// let kernel = b.kernel("solve/axpy", "solve.c", 42, 10_000, KernelProfile::balanced());
/// let sync = b.comm(CommKind::Collective, 8.0);
/// let body = ProgramBuilder::seq(vec![kernel, sync]);
/// let iter = b.loop_block("solve/iter", "solve.c", 40, 100, body);
/// let main = b.function("main", "main.c", 1, iter);
/// let program = b.finish(main);
///
/// assert_eq!(program.total_kernel_iters(), 1_000_000);
/// assert_eq!(program.total_comms(), 100);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    registry: SourceRegistry,
}

impl ProgramBuilder {
    /// Starts a program named `name`.
    pub fn new(name: &str) -> ProgramBuilder {
        ProgramBuilder { name: name.to_string(), registry: SourceRegistry::new() }
    }

    /// Access to the registry being built (for tests / ground truth).
    pub fn registry(&self) -> &SourceRegistry {
        &self.registry
    }

    /// Interns and wraps a function.
    pub fn function(&mut self, name: &str, file: &str, line: u32, body: Block) -> Block {
        let region = self.registry.intern(name, RegionKind::Function, file, line);
        Block::Function { region, body: Box::new(body) }
    }

    /// Interns and wraps a labelled loop.
    pub fn loop_block(
        &mut self,
        name: &str,
        file: &str,
        line: u32,
        count: u64,
        body: Block,
    ) -> Block {
        let region = self.registry.intern(name, RegionKind::Loop, file, line);
        Block::Loop { region, count, body: Box::new(body) }
    }

    /// Interns a kernel leaf.
    pub fn kernel(
        &mut self,
        name: &str,
        file: &str,
        line: u32,
        iters: u64,
        profile: KernelProfile,
    ) -> Block {
        let region = self.registry.intern(name, RegionKind::Kernel, file, line);
        Block::Kernel { region, line, iters, profile }
    }

    /// A communication leaf (no region needed; the tracer knows comm kinds).
    pub fn comm(&self, kind: CommKind, bytes: f64) -> Block {
        Block::Comm { kind, bytes }
    }

    /// Sequential composition helper.
    pub fn seq(blocks: Vec<Block>) -> Block {
        Block::Seq(blocks)
    }

    /// Finalises the program with `root`.
    pub fn finish(self, root: Block) -> Program {
        let program = Program { name: self.name, registry: self.registry, root };
        program.validate();
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let k = b.kernel("k", "tiny.c", 10, 50, KernelProfile::balanced());
        let c = b.comm(CommKind::Collective, 1024.0);
        let lp = b.loop_block("iter", "tiny.c", 5, 3, ProgramBuilder::seq(vec![k, c]));
        let main = b.function("main", "tiny.c", 1, lp);
        b.finish(main)
    }

    #[test]
    fn builder_interns_regions() {
        let p = tiny_program();
        assert_eq!(p.registry.len(), 3);
        assert!(p.registry.lookup("main").is_some());
        assert!(p.registry.lookup("iter").is_some());
        assert!(p.registry.lookup("k").is_some());
    }

    #[test]
    fn static_counts_respect_loops() {
        let p = tiny_program();
        assert_eq!(p.total_kernel_iters(), 150);
        assert_eq!(p.total_comms(), 3);
    }

    #[test]
    #[should_panic(expected = "zero iterations")]
    fn zero_iteration_kernel_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let k = b.kernel("k", "bad.c", 1, 0, KernelProfile::balanced());
        b.finish(k);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut b = ProgramBuilder::new("nest");
        let k = b.kernel("k", "n.c", 1, 2, KernelProfile::balanced());
        let inner = b.loop_block("inner", "n.c", 2, 10, k);
        let outer = b.loop_block("outer", "n.c", 3, 4, inner);
        let p = b.finish(outer);
        assert_eq!(p.total_kernel_iters(), 80);
    }
}
