//! Explicit hydrodynamics stencil archetype ("HydroC"-like).
//!
//! Per time step: ring halo exchange, a flux kernel (FP-heavy, reads a full
//! grid slab), a conservative update (streaming) and an equation-of-state
//! kernel (branchy, table lookups). Every tenth step ends with a global dt
//! reduction. The optimised variant *blocks* the flux kernel so its working
//! set fits in L2 — the cache-blocking transformation.

use crate::kernel::KernelProfile;
use crate::program::{Program, ProgramBuilder};
use phasefold_model::CommKind;

/// Parameters of the stencil archetype.
#[derive(Debug, Clone, Copy)]
pub struct StencilParams {
    /// Time steps.
    pub steps: u64,
    /// Grid cells per rank.
    pub local_cells: u64,
    /// Apply cache blocking to the flux kernel.
    pub blocked: bool,
}

impl Default for StencilParams {
    fn default() -> StencilParams {
        StencilParams {
            steps: 120,
            local_cells: 120_000,
            blocked: false,
        }
    }
}

fn flux_profile(p: &StencilParams) -> KernelProfile {
    // 5-point stencil on several state arrays: big slab working set unless
    // blocked into L2-sized tiles.
    let bytes_per_cell = 7.0 * 8.0;
    let working_set = if p.blocked {
        512.0 * 1024.0 // tile a couple of L2s big: L3-resident, not ideal
    } else {
        p.local_cells as f64 * bytes_per_cell
    };
    KernelProfile {
        instr_per_iter: 95.0,
        frac_loads: 0.30,
        frac_stores: 0.08,
        frac_fp: 0.45,
        frac_branches: 0.04,
        branch_misp_rate: 0.005,
        base_ipc: 2.4,
        working_set_bytes: working_set,
        streamed_bytes_per_iter: bytes_per_cell,
        locality: if p.blocked { 0.97 } else { 0.85 },
    }
}

fn update_profile(p: &StencilParams) -> KernelProfile {
    KernelProfile {
        instr_per_iter: 30.0,
        frac_loads: 0.33,
        frac_stores: 0.20,
        frac_fp: 0.30,
        frac_branches: 0.04,
        branch_misp_rate: 0.003,
        base_ipc: 2.9,
        working_set_bytes: p.local_cells as f64 * 40.0,
        streamed_bytes_per_iter: 40.0,
        locality: 1.0,
    }
}

fn eos_profile(_p: &StencilParams) -> KernelProfile {
    KernelProfile {
        instr_per_iter: 55.0,
        frac_loads: 0.28,
        frac_stores: 0.10,
        frac_fp: 0.25,
        frac_branches: 0.16,
        branch_misp_rate: 0.09,
        base_ipc: 1.9,
        working_set_bytes: 512.0 * 1024.0, // lookup tables
        streamed_bytes_per_iter: 16.0,
        locality: 0.8,
    }
}

/// Builds the stencil program.
pub fn build(p: &StencilParams) -> Program {
    let mut b = ProgramBuilder::new(if p.blocked { "stencil-blocked" } else { "stencil" });
    let cells = p.local_cells;
    let halo_bytes = (p.local_cells as f64).sqrt() * 7.0 * 8.0;
    assert!(p.steps % 10 == 0, "steps must be a multiple of 10");

    let flux = b.kernel("hydro_step/flux", "hydro.c", 210, cells, flux_profile(p));
    let update = b.kernel("hydro_step/update", "hydro.c", 260, cells, update_profile(p));
    let eos = b.kernel("hydro_step/eos", "hydro.c", 305, cells, eos_profile(p));
    let exchange = b.comm(CommKind::Send, halo_bytes);
    let dt_reduce = b.comm(CommKind::Collective, 8.0);

    // Nine plain steps then one step with the dt reduction.
    let plain = ProgramBuilder::seq(vec![
        exchange.clone(),
        flux.clone(),
        update.clone(),
        eos.clone(),
    ]);
    let with_reduce = ProgramBuilder::seq(vec![exchange, flux, update, eos, dt_reduce]);
    let nine = b.loop_block("hydro_step/inner", "hydro.c", 202, 9, plain);
    let decade = ProgramBuilder::seq(vec![nine, with_reduce]);
    let lp = b.loop_block("hydro_step/loop", "hydro.c", 200, p.steps / 10, decade);
    let step_fn = b.function("hydro_step", "hydro.c", 190, lp);
    let main = b.function("main", "hydro_main.c", 12, step_fn);
    b.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{unroll, ScriptItem};
    use crate::kernel::CpuConfig;
    use crate::noise::NoiseConfig;
    use phasefold_model::CounterKind;

    #[test]
    fn builds_with_expected_comm_count() {
        let p = build(&StencilParams::default());
        p.validate();
        // 120 exchanges + 12 reductions.
        assert_eq!(p.total_comms(), 132);
    }

    #[test]
    fn blocking_cuts_l2_misses_and_time() {
        let cpu = CpuConfig::default();
        let base = flux_profile(&StencilParams::default());
        let blocked = flux_profile(&StencilParams { blocked: true, ..StencilParams::default() });
        let r_base = base.counter_rates(&cpu);
        let r_blocked = blocked.counter_rates(&cpu);
        let miss_per_kins = |c: &phasefold_model::CounterSet| {
            1000.0 * c[CounterKind::L2Misses] / c[CounterKind::Instructions]
        };
        assert!(miss_per_kins(&r_base) > 1.5 * miss_per_kins(&r_blocked));
        assert!(blocked.seconds_per_iter(&cpu) < base.seconds_per_iter(&cpu));
    }

    #[test]
    fn whole_app_speedup_in_plausible_band() {
        let cpu = CpuConfig::default();
        let total = |prog: &Program| -> f64 {
            unroll(prog, &cpu, NoiseConfig::NONE, 0)
                .iter()
                .filter_map(|i| match i {
                    ScriptItem::Compute(c) => Some(c.dur_s),
                    _ => None,
                })
                .sum()
        };
        let t_base = total(&build(&StencilParams::default()));
        let t_blk = total(&build(&StencilParams { blocked: true, ..StencilParams::default() }));
        let speedup = t_base / t_blk;
        assert!(speedup > 1.08 && speedup < 1.8, "speedup {speedup}");
    }

    #[test]
    fn eos_is_branch_heavy() {
        let cpu = CpuConfig::default();
        let eos = eos_profile(&StencilParams::default()).counter_rates(&cpu);
        let upd = update_profile(&StencilParams::default()).counter_rates(&cpu);
        let misp_ratio = |c: &phasefold_model::CounterSet| {
            c[CounterKind::BranchMisses] / c[CounterKind::Branches]
        };
        assert!(misp_ratio(&eos) > 10.0 * misp_ratio(&upd));
    }

    #[test]
    #[should_panic(expected = "multiple of 10")]
    fn odd_step_count_rejected() {
        build(&StencilParams { steps: 7, ..StencilParams::default() });
    }
}
