//! The flight recorder: a bounded in-memory record of completed requests.
//!
//! Two retention policies run side by side:
//!
//! * **Recent ring** — the last `capacity` request summaries in completion
//!   order (oldest evicted first), cheap enough to keep for every request.
//! * **Slowest-N** — full span captures for the `slowest_keep` requests
//!   with the largest total latency seen so far. A sampled request's
//!   captured span tree rides along with its summary, so
//!   `GET /debug/trace/{id}` can replay a slow request as Chrome-trace
//!   JSON long after it finished.
//!
//! Everything is behind one mutex taken once per completed request —
//! nanoseconds against request latencies in the micro- to milli-second
//! range — and all memory is bounded by the two capacities.

use crate::queue::lock_recover;
use phasefold_obs::export::json_escape;
use phasefold_obs::span::SpanEvent;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// What the recorder keeps for every completed request.
#[derive(Debug, Clone)]
pub struct RequestSummary {
    /// Request (trace) id, as answered in `x-request-id`.
    pub id: u64,
    /// Coarse endpoint label (`analyze`, `healthz`, …).
    pub endpoint: &'static str,
    /// Request path as received.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Time the analysis job spent queued (0 for non-analysis requests).
    pub queue_ns: u64,
    /// Time the analysis job spent executing (0 for non-analysis requests).
    pub analyze_ns: u64,
    /// Wall time from request parse to response ready.
    pub total_ns: u64,
    /// Whether the result cache answered.
    pub cache_hit: bool,
    /// Faults quarantined while handling the request.
    pub faults: u64,
}

impl RequestSummary {
    /// One single-line JSON object (greppable, like the metrics export).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{ \"id\": {}, \"endpoint\": \"{}\", \"path\": \"{}\", \"status\": {}, \
             \"queue_ms\": {:.3}, \"analyze_ms\": {:.3}, \"total_ms\": {:.3}, \
             \"cache_hit\": {}, \"faults\": {} }}",
            self.id,
            self.endpoint,
            json_escape(&self.path),
            self.status,
            self.queue_ns as f64 / 1e6,
            self.analyze_ns as f64 / 1e6,
            self.total_ns as f64 / 1e6,
            self.cache_hit,
            self.faults,
        );
        out
    }
}

/// A retained slow request: its summary plus the captured span tree.
#[derive(Debug, Clone)]
pub struct SlowRequest {
    /// The request's summary, as in the recent ring.
    pub summary: RequestSummary,
    /// Spans captured under the request's trace id, completion order.
    pub spans: Vec<SpanEvent>,
}

struct Inner {
    recent: VecDeque<RequestSummary>,
    slowest: Vec<SlowRequest>,
}

/// See the module docs.
pub struct FlightRecorder {
    capacity: usize,
    slowest_keep: usize,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// A recorder retaining `capacity` recent summaries and full span
    /// captures for the `slowest_keep` slowest requests.
    pub fn new(capacity: usize, slowest_keep: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            slowest_keep,
            inner: Mutex::new(Inner {
                recent: VecDeque::with_capacity(capacity.min(1024)),
                slowest: Vec::with_capacity(slowest_keep.min(64)),
            }),
        }
    }

    /// Records a completed request. `spans` is `Some` only when the
    /// request was sampled for capture; an unsampled request can still
    /// appear in the recent ring but never in the slowest set (there is
    /// nothing to replay for it).
    pub fn record(&self, summary: RequestSummary, spans: Option<Vec<SpanEvent>>) {
        let mut inner = lock_recover(&self.inner);
        if self.capacity > 0 {
            if inner.recent.len() == self.capacity {
                inner.recent.pop_front();
            }
            inner.recent.push_back(summary.clone());
        }
        let Some(spans) = spans else { return };
        if self.slowest_keep == 0 {
            return;
        }
        let full = inner.slowest.len() == self.slowest_keep;
        if full && summary.total_ns <= inner.slowest.last().map_or(0, |s| s.summary.total_ns) {
            return;
        }
        // Keep the set sorted by total latency, slowest first; ties keep
        // the earlier request (stable position search).
        let pos = inner
            .slowest
            .partition_point(|s| s.summary.total_ns >= summary.total_ns);
        inner.slowest.insert(pos, SlowRequest { summary, spans });
        inner.slowest.truncate(self.slowest_keep);
    }

    /// Recent summaries, newest first.
    pub fn recent(&self) -> Vec<RequestSummary> {
        lock_recover(&self.inner).recent.iter().rev().cloned().collect()
    }

    /// Retained slow requests (summary + captured span count), slowest
    /// first.
    pub fn slowest(&self) -> Vec<(RequestSummary, usize)> {
        lock_recover(&self.inner)
            .slowest
            .iter()
            .map(|s| (s.summary.clone(), s.spans.len()))
            .collect()
    }

    /// The retained slow request with id `id`, if still retained.
    pub fn trace(&self, id: u64) -> Option<SlowRequest> {
        lock_recover(&self.inner).slowest.iter().find(|s| s.summary.id == id).cloned()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn summary(id: u64, total_ns: u64) -> RequestSummary {
        RequestSummary {
            id,
            endpoint: "analyze",
            path: "/v1/analyze".to_string(),
            status: 200,
            queue_ns: 10,
            analyze_ns: total_ns / 2,
            total_ns,
            cache_hit: false,
            faults: 0,
        }
    }

    #[test]
    fn recent_ring_evicts_oldest_first() {
        let rec = FlightRecorder::new(3, 0);
        for id in 1..=5u64 {
            rec.record(summary(id, 100), None);
        }
        let ids: Vec<u64> = rec.recent().iter().map(|s| s.id).collect();
        // Newest first; ids 1 and 2 were evicted in order.
        assert_eq!(ids, vec![5, 4, 3]);
    }

    #[test]
    fn slowest_set_keeps_the_n_largest_with_spans() {
        let rec = FlightRecorder::new(16, 2);
        rec.record(summary(1, 500), Some(vec![SpanEvent::default()]));
        rec.record(summary(2, 100), Some(vec![SpanEvent::default()]));
        rec.record(summary(3, 900), Some(vec![SpanEvent::default(), SpanEvent::default()]));
        rec.record(summary(4, 300), Some(vec![SpanEvent::default()]));
        let slowest: Vec<u64> = rec.slowest().iter().map(|(s, _)| s.id).collect();
        assert_eq!(slowest, vec![3, 1], "slowest first, smaller ones evicted");
        assert!(rec.trace(3).is_some());
        assert_eq!(rec.trace(3).unwrap().spans.len(), 2);
        assert!(rec.trace(2).is_none(), "evicted from the slowest set");
    }

    #[test]
    fn unsampled_requests_never_enter_the_slowest_set() {
        let rec = FlightRecorder::new(4, 4);
        rec.record(summary(1, u64::MAX), None);
        assert!(rec.slowest().is_empty());
        assert_eq!(rec.recent().len(), 1);
    }

    #[test]
    fn summary_json_is_single_line() {
        let json = summary(7, 2_000_000).to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"id\": 7"));
        assert!(json.contains("\"total_ms\": 2.000"));
    }
}
