//! Bootstrap confidence intervals for PWLR breakpoints and slopes.
//!
//! Folded points are not iid — all samples from one burst instance share
//! that instance's noise — so the resampling unit must be the *instance*,
//! not the point. Callers therefore tag each folded point with its instance
//! id and we run a cluster bootstrap: resample instances with replacement,
//! refit, and read empirical quantiles of the breakpoint/slope estimates.
//!
//! This is a reproduction-quality addition over the original paper (which
//! reports point estimates only): analysts get error bars that honestly
//! reflect how many instances the fold pooled.

use crate::pwlr::{fit_pwlr, PwlrConfig};
use crate::stats::quantile;
use rand_like::SplitMix64;

/// A `(lo, hi)` empirical confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower quantile bound.
    pub lo: f64,
    /// Upper quantile bound.
    pub hi: f64,
}

impl Interval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True if `v` lies inside the interval (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// Bootstrap result for one reference fit.
#[derive(Debug, Clone)]
pub struct BootstrapResult {
    /// One interval per reference breakpoint.
    pub breakpoints: Vec<Interval>,
    /// One interval per reference segment slope.
    pub slopes: Vec<Interval>,
    /// Fraction of replicates whose selected segment count matched the
    /// reference fit (model-order stability).
    pub order_stability: f64,
    /// Number of successful replicates.
    pub replicates: usize,
}

/// Configuration of [`bootstrap_pwlr`].
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates.
    pub replicates: usize,
    /// Two-sided confidence level (e.g. 0.95).
    pub confidence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig { replicates: 200, confidence: 0.95, seed: 0xB007 }
    }
}

/// Instance-level bootstrap of a PWLR fit.
///
/// * `xs`, `ys` — the folded scatter;
/// * `instance_ids` — parallel slice assigning each point to its burst
///   instance (ids need not be dense);
/// * `reference_k` — segment count of the reference fit; replicates are
///   refit with a fixed order equal to the reference (intervals for
///   breakpoints/slopes are only meaningful at fixed order), while order
///   stability is measured with free selection.
///
/// Returns `None` if fewer than 4 distinct instances exist.
pub fn bootstrap_pwlr(
    xs: &[f64],
    ys: &[f64],
    instance_ids: &[u64],
    pwlr: &PwlrConfig,
    reference_k: usize,
    config: &BootstrapConfig,
) -> Option<BootstrapResult> {
    assert_eq!(xs.len(), ys.len());
    assert_eq!(xs.len(), instance_ids.len());
    assert!(reference_k >= 1);
    // Group point indices per instance.
    let mut instances: Vec<(u64, Vec<usize>)> = Vec::new();
    {
        let mut map = std::collections::HashMap::<u64, Vec<usize>>::new();
        for (i, &id) in instance_ids.iter().enumerate() {
            map.entry(id).or_default().push(i);
        }
        instances.extend(map);
        instances.sort_unstable_by_key(|(id, _)| *id);
    }
    if instances.len() < 4 {
        return None;
    }

    let mut fixed_cfg = pwlr.clone();
    fixed_cfg.criterion = crate::model_select::SelectionCriterion::FixedSegments(reference_k);
    // Replicates already keep every core busy at the caller's level; nested
    // candidate fan-out inside each of the ~2·replicates fits would only
    // oversubscribe, so force the sequential path here.
    fixed_cfg.candidate_threads = 1;
    let mut free_cfg = pwlr.clone();
    free_cfg.candidate_threads = 1;

    let mut rng = SplitMix64::new(config.seed);
    let mut bp_samples: Vec<Vec<f64>> = vec![Vec::new(); reference_k.saturating_sub(1)];
    let mut slope_samples: Vec<Vec<f64>> = vec![Vec::new(); reference_k];
    let mut order_matches = 0usize;
    let mut ok = 0usize;

    for _ in 0..config.replicates {
        // Resample instances with replacement.
        let mut rx = Vec::with_capacity(xs.len());
        let mut ry = Vec::with_capacity(ys.len());
        for _ in 0..instances.len() {
            let pick = (rng.next() as usize) % instances.len();
            for &pt in &instances[pick].1 {
                rx.push(xs[pt]);
                ry.push(ys[pt]);
            }
        }
        if rx.len() < reference_k * 3 + 2 {
            continue;
        }
        // Fixed-order fit for intervals.
        let Ok(fit) = fit_pwlr(&rx, &ry, None, &fixed_cfg) else { continue };
        if fit.num_segments() != reference_k {
            continue; // separation pruning collapsed the order
        }
        for (store, &bp) in bp_samples.iter_mut().zip(fit.breakpoints()) {
            store.push(bp);
        }
        for (store, &s) in slope_samples.iter_mut().zip(fit.slopes()) {
            store.push(s);
        }
        ok += 1;
        // Free-order fit for stability.
        if let Ok(free) = fit_pwlr(&rx, &ry, None, &free_cfg) {
            if free.num_segments() == reference_k {
                order_matches += 1;
            }
        }
    }
    if ok == 0 {
        return None;
    }
    let alpha = (1.0 - config.confidence.clamp(0.0, 1.0)) / 2.0;
    let interval = |samples: &[f64]| Interval {
        lo: quantile(samples, alpha).unwrap_or(f64::NAN),
        hi: quantile(samples, 1.0 - alpha).unwrap_or(f64::NAN),
    };
    Some(BootstrapResult {
        breakpoints: bp_samples.iter().map(|s| interval(s)).collect(),
        slopes: slope_samples.iter().map(|s| interval(s)).collect(),
        order_stability: order_matches as f64 / config.replicates as f64,
        replicates: ok,
    })
}

/// Minimal deterministic RNG (SplitMix64) so this crate stays
/// dependency-free; quality is ample for bootstrap index draws.
mod rand_like {
    /// SplitMix64 state.
    pub struct SplitMix64(u64);

    impl SplitMix64 {
        /// Seeds the generator.
        pub fn new(seed: u64) -> SplitMix64 {
            SplitMix64(seed)
        }

        /// Next pseudo-random u64.
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Folded-like data: 2 phases, slopes 1.6/0.4, break at 0.5, instance
    /// noise shifting each instance's y values jointly.
    fn synthetic(instances: usize, per_instance: usize) -> (Vec<f64>, Vec<f64>, Vec<u64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut ids = Vec::new();
        let mut rng = rand_like::SplitMix64::new(7);
        for inst in 0..instances {
            let bias = ((rng.next() % 1000) as f64 / 1000.0 - 0.5) * 0.02;
            for _ in 0..per_instance {
                let x = (rng.next() % 10_000) as f64 / 10_000.0;
                let y = if x < 0.5 { 1.6 * x } else { 0.8 + 0.4 * (x - 0.5) };
                xs.push(x);
                ys.push(y + bias);
                ids.push(inst as u64);
            }
        }
        (xs, ys, ids)
    }

    #[test]
    fn intervals_cover_truth() {
        let (xs, ys, ids) = synthetic(60, 4);
        let result = bootstrap_pwlr(
            &xs,
            &ys,
            &ids,
            &PwlrConfig::default(),
            2,
            &BootstrapConfig { replicates: 80, ..BootstrapConfig::default() },
        )
        .expect("bootstrap runs");
        assert_eq!(result.breakpoints.len(), 1);
        assert_eq!(result.slopes.len(), 2);
        assert!(result.breakpoints[0].contains(0.5), "{:?}", result.breakpoints);
        assert!(result.slopes[0].contains(1.6), "{:?}", result.slopes);
        assert!(result.slopes[1].contains(0.4), "{:?}", result.slopes);
        assert!(result.order_stability > 0.8);
        assert!(result.replicates > 40);
    }

    #[test]
    fn more_instances_tighten_intervals() {
        let cfg = BootstrapConfig { replicates: 60, ..BootstrapConfig::default() };
        let (xs, ys, ids) = synthetic(20, 3);
        let small = bootstrap_pwlr(&xs, &ys, &ids, &PwlrConfig::default(), 2, &cfg).unwrap();
        let (xs, ys, ids) = synthetic(200, 3);
        let large = bootstrap_pwlr(&xs, &ys, &ids, &PwlrConfig::default(), 2, &cfg).unwrap();
        assert!(
            large.breakpoints[0].width() < small.breakpoints[0].width(),
            "large {:?} vs small {:?}",
            large.breakpoints[0],
            small.breakpoints[0]
        );
    }

    #[test]
    fn too_few_instances_returns_none() {
        let (xs, ys, ids) = synthetic(3, 5);
        assert!(bootstrap_pwlr(
            &xs,
            &ys,
            &ids,
            &PwlrConfig::default(),
            2,
            &BootstrapConfig::default()
        )
        .is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys, ids) = synthetic(40, 3);
        let cfg = BootstrapConfig { replicates: 40, ..BootstrapConfig::default() };
        let a = bootstrap_pwlr(&xs, &ys, &ids, &PwlrConfig::default(), 2, &cfg).unwrap();
        let b = bootstrap_pwlr(&xs, &ys, &ids, &PwlrConfig::default(), 2, &cfg).unwrap();
        assert_eq!(a.breakpoints, b.breakpoints);
        assert_eq!(a.slopes, b.slopes);
    }

    #[test]
    fn interval_helpers() {
        let i = Interval { lo: 1.0, hi: 3.0 };
        assert_eq!(i.width(), 2.0);
        assert!(i.contains(1.0) && i.contains(3.0) && i.contains(2.0));
        assert!(!i.contains(0.99) && !i.contains(3.01));
    }
}
