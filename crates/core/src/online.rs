//! On-line (streaming) phase analysis.
//!
//! The companion work (Llort et al., IPDPS'10/ICPADS'11) runs the analysis
//! *while the application executes*: structure is detected once enough
//! bursts have been seen, then incoming data is classified on the fly and
//! the models keep sharpening. This module reproduces that architecture:
//!
//! * **warm-up**: buffer bursts until `warmup_bursts` have arrived, then
//!   run DBSCAN once and freeze the clustering as centroids;
//! * **streaming**: every later burst is assigned to the nearest frozen
//!   centroid (within the clustering ε, else noise) in O(k), and its
//!   samples fold straight into the per-cluster profiles;
//! * **snapshot**: at any moment, [`OnlineAnalyzer::snapshot`] fits the
//!   current folded profiles and returns a regular [`Analysis`].
//!
//! The streaming path never re-reads old records, so memory holds only the
//! folded profiles — the property that makes on-line use viable.

use crate::config::AnalysisConfig;
use crate::pipeline::Analysis;
use phasefold_cluster::{cluster_bursts, Clustering};
use phasefold_folding::fold::{ClusterFold, FoldedPoint, FoldedProfile};
use phasefold_model::{
    extract_rank_bursts_checked, Burst, CounterKind, Fault, FaultKind, FaultPolicy, FaultReport,
    RankId, RankTrace, Record, NUM_COUNTERS,
};

/// Default cap on rank ids a session accepts. The per-rank buffers grow to
/// the largest rank id seen, so an unbounded id is an allocation
/// amplifier: one record claiming rank `u32::MAX` would otherwise demand
/// billions of `RankTrace` slots. Streamed rank ids at or above the cap
/// are faults, not allocations; see [`OnlineAnalyzer::with_max_ranks`].
pub const DEFAULT_MAX_RANKS: usize = 1 << 16;

/// Streaming analyzer state.
#[derive(Debug)]
pub struct OnlineAnalyzer {
    config: AnalysisConfig,
    warmup_bursts: usize,
    /// Highest accepted rank id is `max_ranks - 1`; higher ids fault
    /// instead of growing the per-rank buffers.
    max_ranks: usize,
    /// Per-rank record buffers, drained after burst extraction.
    pending: Vec<RankTrace>,
    /// Bursts buffered during warm-up.
    warmup: Vec<Burst>,
    /// Frozen structure after warm-up.
    frozen: Option<FrozenClustering>,
    /// Per-cluster accumulated folds (same shape as the batch path).
    folds: Vec<OnlineFold>,
    /// Bursts already consumed from each rank's buffer (burst extraction
    /// over the growing buffer is idempotent; this is the resume cursor).
    per_rank_counts: Vec<usize>,
    /// Extraction faults already reported per rank (same resume-cursor
    /// discipline as `per_rank_counts`).
    per_rank_fault_counts: Vec<usize>,
    bursts_seen: usize,
    noise_bursts: usize,
    /// Defective streamed records quarantined so far (lenient path), in
    /// arrival order; carried into every [`OnlineAnalyzer::snapshot`].
    stream_faults: FaultReport,
    records_quarantined: usize,
}

#[derive(Debug)]
struct FrozenClustering {
    /// Cluster centroids in feature space.
    centroids: Vec<[f64; 2]>,
    /// Feature normalisation ranges captured at freeze time.
    ranges: [(f64, f64); 2],
    /// Assignment radius (the clustering ε).
    eps: f64,
}

/// Incrementally-built fold of one cluster.
#[derive(Debug, Default)]
struct OnlineFold {
    points: [Vec<FoldedPoint>; NUM_COUNTERS],
    stacks: Vec<(f64, std::sync::Arc<phasefold_model::CallStack>)>,
    totals: [f64; NUM_COUNTERS],
    total_dur_s: f64,
    instances: u32,
    samples: usize,
}

impl OnlineAnalyzer {
    /// Creates a streaming analyzer. `warmup_bursts` controls when the
    /// structure freezes (a few hundred is typical).
    pub fn new(config: AnalysisConfig, warmup_bursts: usize) -> OnlineAnalyzer {
        OnlineAnalyzer {
            config,
            warmup_bursts: warmup_bursts.max(8),
            max_ranks: DEFAULT_MAX_RANKS,
            pending: Vec::new(),
            warmup: Vec::new(),
            frozen: None,
            folds: Vec::new(),
            per_rank_counts: Vec::new(),
            per_rank_fault_counts: Vec::new(),
            bursts_seen: 0,
            noise_bursts: 0,
            stream_faults: FaultReport::new(),
            records_quarantined: 0,
        }
    }

    /// Overrides [`DEFAULT_MAX_RANKS`]. Records for rank ids at or above
    /// the cap are rejected as faults (strict) or quarantined (lenient)
    /// rather than allocating per-rank state, so a hostile rank id cannot
    /// balloon the session's memory.
    #[must_use]
    pub fn with_max_ranks(mut self, max_ranks: usize) -> OnlineAnalyzer {
        self.max_ranks = max_ranks.max(1);
        self
    }

    /// The rank-id cap this session enforces.
    pub fn max_ranks(&self) -> usize {
        self.max_ranks
    }

    /// True once the structure has been frozen.
    pub fn is_warm(&self) -> bool {
        self.frozen.is_some()
    }

    /// Bursts processed so far (including noise).
    pub fn bursts_seen(&self) -> usize {
        self.bursts_seen
    }

    /// Bursts that did not match any frozen cluster.
    pub fn noise_bursts(&self) -> usize {
        self.noise_bursts
    }

    /// Bursts processed so far for `rank` (the per-rank resume cursor).
    /// Lets batch/online equivalence checks compare burst sequences rank
    /// by rank instead of only in aggregate.
    pub fn rank_bursts_seen(&self, rank: RankId) -> usize {
        self.per_rank_counts.get(rank.0 as usize).copied().unwrap_or(0)
    }

    /// Defective records quarantined from the stream so far.
    pub fn records_quarantined(&self) -> usize {
        self.records_quarantined
    }

    /// The faults quarantined from the stream so far (lenient path). They
    /// are also carried into every [`OnlineAnalyzer::snapshot`].
    pub fn stream_faults(&self) -> &FaultReport {
        &self.stream_faults
    }

    /// Feeds a batch of records for `rank` (expected in time order per
    /// rank). Bursts complete as their closing communication record
    /// arrives.
    ///
    /// This is the always-lenient entry point: a defective record (e.g. a
    /// non-monotonic timestamp from a glitching collector clock) is
    /// quarantined into [`OnlineAnalyzer::stream_faults`] and skipped —
    /// it never poisons the session. Callers that want the configured
    /// [`FaultPolicy`] to govern streaming use
    /// [`OnlineAnalyzer::try_push_records`].
    pub fn push_records(&mut self, rank: RankId, records: &[Record]) {
        // Forced-lenient: the Err arm is unreachable by construction.
        let _ = self.push_inner(rank, records, FaultPolicy::Lenient);
    }

    /// Feeds a batch of records for `rank`, honouring the analyzer's
    /// configured [`FaultPolicy`] — the streaming mirror of
    /// [`crate::try_analyze_trace`].
    ///
    /// Under [`FaultPolicy::Lenient`] defective records are quarantined
    /// (recorded in [`OnlineAnalyzer::stream_faults`] with rank
    /// provenance) and the healthy remainder is processed; returns the
    /// number of records accepted. Under [`FaultPolicy::Strict`] the first
    /// defective record aborts the batch with its fault; records before it
    /// are kept and bursts they complete are still processed.
    pub fn try_push_records(
        &mut self,
        rank: RankId,
        records: &[Record],
    ) -> Result<usize, Fault> {
        self.push_inner(rank, records, self.config.fault_policy)
    }

    fn push_inner(
        &mut self,
        rank: RankId,
        records: &[Record],
        policy: FaultPolicy,
    ) -> Result<usize, Fault> {
        let idx = rank.0 as usize;
        if idx >= self.max_ranks {
            let fault = Fault::new(
                FaultKind::MalformedTrace,
                format!("rank {} exceeds the session rank cap {}", rank.0, self.max_ranks),
            )
            .on_rank(rank.0);
            return match policy {
                FaultPolicy::Strict => Err(fault),
                FaultPolicy::Lenient => {
                    phasefold_obs::counter!("online.records_quarantined", records.len());
                    self.records_quarantined += records.len();
                    self.stream_faults.push(fault);
                    Ok(0)
                }
            };
        }
        while self.pending.len() <= idx {
            self.pending.push(RankTrace::new());
        }
        let mut accepted = 0usize;
        let mut aborted: Option<Fault> = None;
        for r in records {
            match self.pending[idx].push(r.clone()) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    let fault = Fault::from(e).on_rank(rank.0);
                    match policy {
                        FaultPolicy::Strict => {
                            aborted = Some(fault);
                            break;
                        }
                        FaultPolicy::Lenient => {
                            phasefold_obs::counter!("online.records_quarantined", 1);
                            self.records_quarantined += 1;
                            self.stream_faults.push(fault);
                        }
                    }
                }
            }
        }
        // Records accepted before an abort are real: complete their bursts
        // either way so the session state stays consistent.
        self.drain_completed(rank);
        match aborted {
            Some(fault) => Err(fault),
            None => Ok(accepted),
        }
    }

    /// Extracts completed bursts from the rank buffer and processes them.
    fn drain_completed(&mut self, rank: RankId) {
        let idx = rank.0 as usize;
        let stream = &self.pending[idx];
        let mut extraction_faults = FaultReport::new();
        let bursts = extract_rank_bursts_checked(
            rank,
            stream,
            self.config.min_burst_duration,
            &mut extraction_faults,
        );
        // Only process bursts not yet seen for this rank (extraction over
        // the growing buffer is idempotent; skip the consumed prefix). The
        // same cursor discipline applies to extraction faults: re-running
        // over the grown buffer re-reports the old ones, so only the tail
        // is new.
        while self.per_rank_fault_counts.len() <= idx {
            self.per_rank_fault_counts.push(0);
        }
        let faults_seen = self.per_rank_fault_counts[idx];
        for fault in extraction_faults.faults.into_iter().skip(faults_seen) {
            phasefold_obs::counter!("online.bursts_quarantined", 1);
            self.per_rank_fault_counts[idx] += 1;
            self.stream_faults.push(fault);
        }
        let already = self.per_rank_counts.get(idx).copied().unwrap_or(0);
        for burst in bursts.into_iter().skip(already) {
            self.process_burst(burst, idx);
        }
    }

    fn process_burst(&mut self, burst: Burst, rank_idx: usize) {
        phasefold_obs::counter!("online.bursts_streamed", 1);
        self.bursts_seen += 1;
        self.bump_rank_count(rank_idx);
        if self.frozen.is_none() {
            self.warmup.push(burst);
            if self.warmup.len() >= self.warmup_bursts {
                self.freeze();
            }
            return;
        }
        let assigned = self.assign(&burst);
        match assigned {
            Some(cluster) => self.fold_burst(&burst, rank_idx, cluster),
            None => self.noise_bursts += 1,
        }
    }

    /// Runs the batch clustering on the warm-up bursts and freezes it.
    fn freeze(&mut self) {
        let _sp = phasefold_obs::span!("online.freeze");
        let clustering: Clustering = cluster_bursts(&self.warmup, &self.config.cluster);
        let features = phasefold_cluster::extract_features(&self.warmup);
        let mut centroids = vec![[0.0f64; 2]; clustering.num_clusters];
        let mut counts = vec![0usize; clustering.num_clusters];
        for (point, label) in features.points.iter().zip(&clustering.labels) {
            if let Some(c) = label {
                centroids[*c][0] += point[0];
                centroids[*c][1] += point[1];
                counts[*c] += 1;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            if *n > 0 {
                c[0] /= *n as f64;
                c[1] /= *n as f64;
            }
        }
        self.folds = (0..clustering.num_clusters).map(|_| OnlineFold::default()).collect();
        self.frozen = Some(FrozenClustering {
            centroids,
            ranges: features.ranges,
            eps: clustering.eps,
        });
        // Re-process the warm-up bursts through the frozen path so their
        // samples are folded too.
        let warmup = std::mem::take(&mut self.warmup);
        for burst in &warmup {
            let rank_idx = burst.id.rank.0 as usize;
            match self.assign(burst) {
                Some(cluster) => self.fold_burst(burst, rank_idx, cluster),
                None => self.noise_bursts += 1,
            }
        }
    }

    /// Nearest-centroid assignment within ε.
    fn assign(&self, burst: &Burst) -> Option<usize> {
        let frozen = self.frozen.as_ref()?;
        let dur = burst.duration().as_secs_f64().max(1e-12).log10();
        let ins = burst.counters[CounterKind::Instructions].max(1.0).log10();
        let raw = [dur, ins];
        let mut point = [0.0f64; 2];
        for d in 0..2 {
            let (lo, hi) = frozen.ranges[d];
            let span = (hi - lo).max(1.0);
            point[d] = (raw[d] - lo) / span;
        }
        let mut best: Option<(usize, f64)> = None;
        for (c, centroid) in frozen.centroids.iter().enumerate() {
            let dx = point[0] - centroid[0];
            let dy = point[1] - centroid[1];
            let dist = (dx * dx + dy * dy).sqrt();
            if best.is_none_or(|(_, bd)| dist < bd) {
                best = Some((c, dist));
            }
        }
        // Assignment radius: ε plus slack for centroid-vs-border geometry.
        best.filter(|(_, d)| *d <= frozen.eps * 2.0).map(|(c, _)| c)
    }

    /// Folds one burst's samples into its cluster's profiles.
    fn fold_burst(&mut self, burst: &Burst, rank_idx: usize, cluster: usize) {
        let fold = &mut self.folds[cluster];
        let instance = fold.instances;
        fold.instances += 1;
        fold.total_dur_s += burst.duration().as_secs_f64();
        for (i, t) in fold.totals.iter_mut().enumerate() {
            *t += burst.counters.as_array()[i];
        }
        let stream = &self.pending[rank_idx];
        for sample in phasefold_model::burst::samples_within(stream, burst.start, burst.end) {
            fold.samples += 1;
            let x = sample.time.normalized_within(burst.start, burst.end);
            if !sample.callstack.is_empty() {
                // One deep copy out of the record buffer; later snapshot
                // clones of the fold only bump the refcount.
                fold.stacks.push((x, std::sync::Arc::new(sample.callstack.clone())));
            }
            for (kind, absolute) in sample.counters.iter() {
                let total = burst.counters[kind];
                if total <= 0.0 {
                    continue;
                }
                let delta = absolute - burst.start_counters[kind];
                let y = (delta / total).clamp(0.0, 1.0);
                fold.points[kind.index()].push(FoldedPoint { x, y, instance });
            }
        }
    }

    /// Fits the current state into a regular [`Analysis`]. Cheap enough to
    /// call periodically; the folds are not consumed.
    pub fn snapshot(&self) -> Analysis {
        let _sp = phasefold_obs::span!("online.snapshot");
        let mut models = Vec::new();
        // Stream-level quarantines come first: they happened first.
        let mut faults = self.stream_faults.clone();
        let mut labels_placeholder = Vec::new();
        for (cluster, fold) in self.folds.iter().enumerate() {
            let cluster_fold = ClusterFold {
                cluster,
                profiles: std::array::from_fn(|i| {
                    FoldedProfile::from_points(
                        &fold.points[i],
                        fold.totals[i] / fold.instances.max(1) as f64,
                    )
                }),
                stacks: fold.stacks.clone(),
                mean_duration_s: fold.total_dur_s / fold.instances.max(1) as f64,
                instances_used: fold.instances as usize,
                instances_pruned: 0,
                samples: fold.samples,
            };
            if let Some(model) =
                crate::pipeline::build_model_checked(&cluster_fold, &self.config, &mut faults.faults)
            {
                models.push(model);
            }
            labels_placeholder.push(Some(cluster));
        }
        crate::pipeline::sort_models_by_total_time(&mut models);
        Analysis {
            clustering: Clustering {
                labels: labels_placeholder,
                num_clusters: self.folds.len(),
                eps: self.frozen.as_ref().map_or(0.0, |f| f.eps),
                spmd_score: 1.0,
            },
            num_bursts: self.bursts_seen,
            models,
            faults,
        }
    }
}

impl OnlineAnalyzer {
    fn bump_rank_count(&mut self, rank_idx: usize) {
        while self.per_rank_counts.len() <= rank_idx {
            self.per_rank_counts.push(0);
        }
        self.per_rank_counts[rank_idx] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
    use phasefold_simapp::{simulate, SimConfig};
    use phasefold_tracer::{trace_run, TracerConfig};

    fn traced() -> phasefold_model::Trace {
        let program = build(&SyntheticParams { iterations: 300, ..SyntheticParams::default() });
        let out = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
        trace_run(&program.registry, &out.timelines, &TracerConfig::default())
    }

    #[test]
    fn streaming_matches_batch_structure() {
        let trace = traced();
        let config = AnalysisConfig::default();
        let batch = crate::pipeline::analyze_trace(&trace, &config);

        let mut online = OnlineAnalyzer::new(config, 100);
        // Feed records in chunks of 50 per rank, interleaved.
        let streams: Vec<_> = trace.iter_ranks().collect();
        let max_len = streams.iter().map(|(_, s)| s.len()).max().unwrap();
        let mut offset = 0;
        while offset < max_len {
            for (rank, stream) in &streams {
                let records = stream.records();
                let end = (offset + 50).min(records.len());
                if offset < end {
                    online.push_records(*rank, &records[offset..end]);
                }
            }
            offset += 50;
        }
        assert!(online.is_warm());
        let snap = online.snapshot();
        assert_eq!(snap.models.len(), batch.models.len());
        let bm = batch.dominant_model().unwrap();
        let om = snap.dominant_model().unwrap();
        assert_eq!(om.phases.len(), bm.phases.len());
        for (a, b) in om.breakpoints().iter().zip(bm.breakpoints()) {
            assert!((a - b).abs() < 0.02, "online {a} vs batch {b}");
        }
    }

    #[test]
    fn snapshot_before_warmup_is_empty() {
        let trace = traced();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 1_000_000);
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        online.push_records(rank, &stream.records()[..200]);
        assert!(!online.is_warm());
        let snap = online.snapshot();
        assert!(snap.models.is_empty());
        assert!(online.bursts_seen() > 0);
    }

    #[test]
    fn snapshots_sharpen_with_more_data() {
        let trace = traced();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 80);
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        let records = stream.records();
        online.push_records(rank, &records[..records.len() / 2]);
        let early = online.snapshot();
        online.push_records(rank, &records[records.len() / 2..]);
        let late = online.snapshot();
        let early_samples = early.models.first().map_or(0, |m| m.folded_samples);
        let late_samples = late.models.first().map_or(0, |m| m.folded_samples);
        assert!(late_samples > early_samples);
    }

    #[test]
    fn lenient_stream_quarantines_out_of_order_records() {
        let trace = traced();
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        let records = stream.records();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 80);
        // Interleave a corrupt batch: records [100..200] replayed after
        // [0..300] all carry stale timestamps.
        online.push_records(rank, &records[..300]);
        online.push_records(rank, &records[100..200]);
        assert_eq!(online.records_quarantined(), 100);
        assert_eq!(online.stream_faults().len(), 100);
        assert_eq!(
            online.stream_faults().faults[0].kind,
            phasefold_model::FaultKind::NonMonotonicTime
        );
        assert_eq!(online.stream_faults().faults[0].provenance.rank, Some(rank.0));
        // The session is not poisoned: the rest of the stream still folds
        // and the snapshot carries the quarantine report.
        online.push_records(rank, &records[300..]);
        assert!(online.is_warm());
        let snap = online.snapshot();
        assert!(!snap.models.is_empty());
        assert!(snap.faults.len() >= 100);
        assert_eq!(
            snap.faults.faults[0].kind,
            phasefold_model::FaultKind::NonMonotonicTime
        );
    }

    #[test]
    fn strict_stream_aborts_on_first_bad_record() {
        use phasefold_model::FaultPolicy;
        let trace = traced();
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        let records = stream.records();
        let config =
            AnalysisConfig { fault_policy: FaultPolicy::Strict, ..AnalysisConfig::default() };
        let mut online = OnlineAnalyzer::new(config, 80);
        assert_eq!(online.try_push_records(rank, &records[..200]).unwrap(), 200);
        let err = online.try_push_records(rank, &records[..50]).unwrap_err();
        assert_eq!(err.kind, phasefold_model::FaultKind::NonMonotonicTime);
        assert_eq!(err.provenance.rank, Some(rank.0));
        // Nothing was quarantined silently under strict.
        assert_eq!(online.records_quarantined(), 0);
        // The session keeps working with well-formed batches.
        assert_eq!(
            online.try_push_records(rank, &records[200..]).unwrap(),
            records.len() - 200
        );
    }

    #[test]
    fn hostile_rank_id_faults_instead_of_allocating() {
        use phasefold_model::FaultPolicy;
        let trace = traced();
        let (rank, stream) = trace.iter_ranks().next().unwrap();
        let records = stream.records();

        // Lenient (default): the batch is quarantined wholesale, nothing
        // is allocated for the bogus rank, and the session stays usable.
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 80);
        online.push_records(RankId(u32::MAX), &records[..50]);
        assert_eq!(online.records_quarantined(), 50);
        assert_eq!(
            online.stream_faults().faults[0].kind,
            phasefold_model::FaultKind::MalformedTrace
        );
        assert_eq!(online.stream_faults().faults[0].provenance.rank, Some(u32::MAX));
        online.push_records(rank, records);
        assert!(online.is_warm());

        // Strict: the batch aborts with the fault; later batches work.
        let config =
            AnalysisConfig { fault_policy: FaultPolicy::Strict, ..AnalysisConfig::default() };
        let mut strict = OnlineAnalyzer::new(config, 80).with_max_ranks(4);
        let err = strict.try_push_records(RankId(4), &records[..10]).unwrap_err();
        assert_eq!(err.kind, phasefold_model::FaultKind::MalformedTrace);
        assert_eq!(strict.try_push_records(RankId(3), &records[..10]).unwrap(), 10);
    }

    #[test]
    fn noise_bursts_counted_not_crashed() {
        let trace = traced();
        let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 50);
        for (rank, stream) in trace.iter_ranks() {
            online.push_records(rank, stream.records());
        }
        // Outlier bursts exist under quiet noise; they become noise or get
        // absorbed — either way, accounting must close.
        let snap = online.snapshot();
        let folded: usize = snap.models.iter().map(|m| m.instances).sum();
        assert!(folded + online.noise_bursts() <= online.bursts_seen());
    }
}
