//! Minimal recursive-descent JSON parser shared by the golden tests
//! (`profile_golden.rs`, `debug_trace_golden.rs`).
//!
//! The workspace has no JSON dependency; this checker is deliberately
//! small — strict enough to reject malformed exporter output, small
//! enough to audit at a glance.

#![allow(dead_code)] // each test binary uses a different subset

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {} of {}", self.pos, self.bytes.len())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat_literal("null").map(|_| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.error("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(self.error(&format!("bad escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through byte-wise; the input is a &str so it is valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.error(&format!("bad number: {e}")))
    }
}

pub fn parse_json(text: &str) -> Json {
    let mut p = Parser::new(text);
    let v = p.value().unwrap_or_else(|e| panic!("invalid JSON: {e}"));
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}
