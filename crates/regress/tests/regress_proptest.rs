//! Property-based tests for the numerical core.

use proptest::prelude::*;

use phasefold_regress::breakpoints::enforce_separation;
use phasefold_regress::grid::bin_series;
use phasefold_regress::hinge::{fit_hinge, fit_hinge_monotone};
use phasefold_regress::linalg::{nnls, Mat};
use phasefold_regress::pwlr::{fit_pwlr, PwlrConfig};
use phasefold_regress::segdp::{segment_dp, segment_dp_quadratic, Segmentation};
use phasefold_regress::stats::{mad, median, quantile, Moments};

fn dense_grid(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
}

/// Arbitrary continuous PWL ground truth: 1-4 segments inside [0,1].
fn arb_pwl() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(0.1f64..0.9, 0..4),
        proptest::collection::vec(0.0f64..5.0, 4),
        0.0f64..1.0,
    )
        .prop_map(|(mut bps, slopes, intercept)| {
            bps.sort_by(|a, b| a.partial_cmp(b).unwrap());
            bps.dedup_by(|a, b| (*a - *b).abs() < 0.05);
            let bps = enforce_separation(bps, 0.0, 1.0, 0.05);
            let slopes = slopes[..bps.len() + 1].to_vec();
            (bps, {
                let mut v = slopes;
                v.insert(0, intercept);
                v
            })
        })
}

/// Bit-level equality of two segmentation ladders: same segment counts, the
/// exact same SSE bits, the exact same breakpoint bits. This is the contract
/// the pruned branch-and-bound `segment_dp` makes against the quadratic
/// reference — not "close", identical.
fn same_segmentations(a: &[Segmentation], b: &[Segmentation]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.num_segments == y.num_segments
                && x.sse.to_bits() == y.sse.to_bits()
                && x.breakpoints.len() == y.breakpoints.len()
                && x.breakpoints
                    .iter()
                    .zip(&y.breakpoints)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

fn eval_pwl(bps: &[f64], params: &[f64], x: f64) -> f64 {
    let intercept = params[0];
    let slopes = &params[1..];
    let mut y = intercept;
    let mut prev = 0.0f64;
    for (j, &s) in slopes.iter().enumerate() {
        let next = bps.get(j).copied().unwrap_or(1.0);
        let seg = (x.min(next) - prev).max(0.0);
        y += s * seg;
        prev = next;
        if x <= next {
            break;
        }
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With the true breakpoints given, the hinge fit reproduces an exact
    /// PWL function to numerical precision.
    #[test]
    fn hinge_recovers_exact_pwl((bps, params) in arb_pwl()) {
        let xs = dense_grid(120);
        let ys: Vec<f64> = xs.iter().map(|&x| eval_pwl(&bps, &params, x)).collect();
        let fit = fit_hinge(&xs, &ys, None, &bps, 0.0, 1.0).unwrap();
        for &x in &xs {
            prop_assert!((fit.predict(x) - eval_pwl(&bps, &params, x)).abs() < 1e-6);
        }
    }

    /// Monotone fits never report a negative slope, whatever the data.
    #[test]
    fn monotone_fit_is_monotone(
        ys in proptest::collection::vec(-1.0f64..1.0, 24..64),
        bp in 0.2f64..0.8,
    ) {
        let xs = dense_grid(ys.len());
        let fit = fit_hinge_monotone(&xs, &ys, None, &[bp], 0.0, 1.0).unwrap();
        prop_assert!(fit.slopes.iter().all(|&s| s >= 0.0));
    }

    /// The monotone fit can never beat the unconstrained fit on SSE.
    #[test]
    fn constrained_sse_dominates(
        ys in proptest::collection::vec(-1.0f64..1.0, 24..64),
        bp in 0.2f64..0.8,
    ) {
        let xs = dense_grid(ys.len());
        let free = fit_hinge(&xs, &ys, None, &[bp], 0.0, 1.0).unwrap();
        let mono = fit_hinge_monotone(&xs, &ys, None, &[bp], 0.0, 1.0).unwrap();
        prop_assert!(mono.sse >= free.sse - 1e-9 * free.sse.max(1.0));
    }

    /// DP segmentation SSE is non-increasing in the segment count.
    #[test]
    fn segdp_sse_monotone(ys in proptest::collection::vec(0.0f64..1.0, 20..80)) {
        let xs = dense_grid(ys.len());
        let segs = segment_dp(&xs, &ys, None, 5, 2);
        for w in segs.windows(2) {
            prop_assert!(w[1].sse <= w[0].sse + 1e-9);
        }
    }

    /// The pruned branch-and-bound DP is bit-identical to the quadratic
    /// reference on arbitrary unweighted data, across segment budgets.
    #[test]
    fn segdp_pruned_matches_quadratic(
        ys in proptest::collection::vec(-2.0f64..2.0, 12..90),
        max_segments in 1usize..6,
    ) {
        let xs = dense_grid(ys.len());
        let pruned = segment_dp(&xs, &ys, None, max_segments, 2);
        let quad = segment_dp_quadratic(&xs, &ys, None, max_segments, 2);
        prop_assert!(same_segmentations(&pruned, &quad),
            "pruned != quadratic: {pruned:?} vs {quad:?}");
    }

    /// Same bit-identity with per-point weights in play — the pruning bounds
    /// must account for weighted partial sums exactly.
    #[test]
    fn segdp_pruned_matches_quadratic_weighted(
        points in proptest::collection::vec((-2.0f64..2.0, 0.1f64..4.0), 12..70),
        max_segments in 1usize..5,
    ) {
        let ys: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ws: Vec<f64> = points.iter().map(|p| p.1).collect();
        let xs = dense_grid(ys.len());
        let pruned = segment_dp(&xs, &ys, Some(&ws), max_segments, 2);
        let quad = segment_dp_quadratic(&xs, &ys, Some(&ws), max_segments, 2);
        prop_assert!(same_segmentations(&pruned, &quad),
            "weighted pruned != quadratic: {pruned:?} vs {quad:?}");
    }

    /// Same bit-identity under a binding `min_points` constraint, which
    /// shrinks each row's feasible split range and exercises the block
    /// bounds at their clipped edges.
    #[test]
    fn segdp_pruned_matches_quadratic_min_points(
        ys in proptest::collection::vec(-2.0f64..2.0, 16..80),
        max_segments in 1usize..5,
        min_points in 1usize..8,
    ) {
        let xs = dense_grid(ys.len());
        let pruned = segment_dp(&xs, &ys, None, max_segments, min_points);
        let quad = segment_dp_quadratic(&xs, &ys, None, max_segments, min_points);
        prop_assert!(same_segmentations(&pruned, &quad),
            "min_points={min_points} pruned != quadratic: {pruned:?} vs {quad:?}");
    }

    /// NNLS output is entry-wise non-negative and at least as good as zero.
    #[test]
    fn nnls_nonnegative_and_useful(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..2.0, 3), 4..12),
        b in proptest::collection::vec(-2.0f64..2.0, 12),
    ) {
        let m = rows.len();
        let a = Mat::from_rows(&rows);
        let b = &b[..m];
        let x = nnls(&a, b, 200).unwrap();
        prop_assert!(x.iter().all(|&v| v >= 0.0));
        let res: f64 = a.mul_vec(&x).iter().zip(b).map(|(p, y)| (p - y) * (p - y)).sum();
        let res_zero: f64 = b.iter().map(|y| y * y).sum();
        prop_assert!(res <= res_zero + 1e-9);
    }

    /// Full PWLR respects monotonicity and reports sorted, in-domain
    /// breakpoints on arbitrary (noisy, even non-monotone) data.
    #[test]
    fn pwlr_output_invariants(ys in proptest::collection::vec(0.0f64..1.0, 40..120)) {
        let xs = dense_grid(ys.len());
        let fit = fit_pwlr(&xs, &ys, None, &PwlrConfig::default()).unwrap();
        prop_assert!(fit.slopes().iter().all(|&s| s >= 0.0));
        let bps = fit.breakpoints();
        for w in bps.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &b in bps {
            prop_assert!(b > 0.0 && b < 1.0);
        }
        prop_assert_eq!(fit.slopes().len(), bps.len() + 1);
    }

    /// Quantiles are bounded by the extremes; median is a 0.5 quantile.
    #[test]
    fn quantile_bounds(data in proptest::collection::vec(-100.0f64..100.0, 1..50), q in 0.0f64..1.0) {
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = quantile(&data, q).unwrap();
        prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
        prop_assert_eq!(median(&data), quantile(&data, 0.5));
    }

    /// MAD is non-negative and zero for constants.
    #[test]
    fn mad_properties(data in proptest::collection::vec(-10.0f64..10.0, 1..40), c in -5.0f64..5.0) {
        prop_assert!(mad(&data).unwrap() >= 0.0);
        let constant = vec![c; data.len()];
        prop_assert_eq!(mad(&constant), Some(0.0));
    }

    /// Welford merge is equivalent to sequential accumulation.
    #[test]
    fn moments_merge_associative(
        a in proptest::collection::vec(-10.0f64..10.0, 0..30),
        b in proptest::collection::vec(-10.0f64..10.0, 0..30),
    ) {
        let mut whole = Moments::new();
        for &x in a.iter().chain(&b) { whole.push(x); }
        let mut ma = Moments::new();
        for &x in &a { ma.push(x); }
        let mut mb = Moments::new();
        for &x in &b { mb.push(x); }
        ma.merge(&mb);
        prop_assert_eq!(ma.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((ma.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((ma.variance() - whole.variance()).abs() < 1e-8);
        }
    }

    /// Binning conserves total weight and bin means stay within y range.
    #[test]
    fn binning_conserves_weight(
        points in proptest::collection::vec((0.0f64..1.0, -5.0f64..5.0), 1..100),
        n_bins in 1usize..30,
    ) {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let b = bin_series(&xs, &ys, None, n_bins, 0.0, 1.0);
        let total: f64 = b.weight.iter().sum();
        prop_assert!((total - xs.len() as f64).abs() < 1e-9);
        let (ymin, ymax) = ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &y| (l.min(y), h.max(y)));
        for &m in &b.y {
            prop_assert!(m >= ymin - 1e-9 && m <= ymax + 1e-9);
        }
    }
}
