//! **E10 — Model-selection ablation** (table): which pieces of the PWLR
//! machinery actually matter. Ablates the selection criterion (BIC vs AIC
//! vs fixed order), the parsimony margin, the Muggeo refinement and the
//! proposal grid resolution, on synthetic profiles with known order.
//!
//! ```text
//! cargo run --release -p phasefold-bench --bin exp_ablation_selection
//! ```

use phasefold::{run_study, score_boundaries, AnalysisConfig};
use phasefold_bench::{banner, fmt, write_results, Table};
use phasefold_regress::breakpoints::RefineConfig;
use phasefold_regress::{PwlrConfig, SelectionCriterion};
use phasefold_simapp::workloads::synthetic::{build, true_boundaries, PhaseSpec, SyntheticParams};
use phasefold_simapp::{NoiseConfig, SimConfig};
use phasefold_tracer::TracerConfig;

struct Variant {
    name: &'static str,
    pwlr: PwlrConfig,
}

fn variants(true_k: usize) -> Vec<Variant> {
    let base = PwlrConfig::default();
    vec![
        Variant { name: "bic+margin (default)", pwlr: base.clone() },
        Variant {
            name: "bic, no margin",
            pwlr: PwlrConfig { margin_rel: 0.0, margin_abs: 0.0, ..base.clone() },
        },
        Variant {
            name: "aic, no margin",
            pwlr: PwlrConfig {
                criterion: SelectionCriterion::Aic,
                margin_rel: 0.0,
                margin_abs: 0.0,
                ..base.clone()
            },
        },
        Variant {
            name: "fixed k (oracle)",
            pwlr: PwlrConfig {
                criterion: SelectionCriterion::FixedSegments(true_k),
                ..base.clone()
            },
        },
        Variant {
            name: "no muggeo refine",
            pwlr: PwlrConfig {
                refine: RefineConfig { max_iters: 0, ..RefineConfig::default() },
                ..base.clone()
            },
        },
        Variant {
            name: "coarse grid (20 bins)",
            pwlr: PwlrConfig { grid_bins: 20, ..base.clone() },
        },
    ]
}

fn main() {
    banner(
        "E10",
        "PWLR model-selection & refinement ablation",
        "which design choices the phase detection actually needs",
    );
    let mut table = Table::new(&[
        "profile",
        "variant",
        "true_k",
        "detected_k",
        "recall",
        "bp_MAE",
    ]);

    let profiles: Vec<(&str, Vec<PhaseSpec>)> = vec![
        (
            "3-phase/high-contrast",
            vec![
                PhaseSpec { ipc: 2.4, rel_duration: 1.0 },
                PhaseSpec { ipc: 0.6, rel_duration: 1.5 },
                PhaseSpec { ipc: 1.5, rel_duration: 0.8 },
            ],
        ),
        (
            "4-phase/low-contrast",
            vec![
                PhaseSpec { ipc: 2.0, rel_duration: 1.0 },
                PhaseSpec { ipc: 1.4, rel_duration: 1.0 },
                PhaseSpec { ipc: 2.2, rel_duration: 1.0 },
                PhaseSpec { ipc: 1.5, rel_duration: 1.0 },
            ],
        ),
    ];

    for (profile_name, phases) in profiles {
        let true_k = phases.len();
        let params = SyntheticParams {
            phases,
            iterations: 500,
            burst_duration_s: 2e-3,
        };
        let program = build(&params);
        let truth = true_boundaries(&params);
        for variant in variants(true_k) {
            let analysis_cfg = AnalysisConfig { pwlr: variant.pwlr.clone(), ..Default::default() };
            let study = run_study(
                &program,
                &SimConfig { ranks: 4, noise: NoiseConfig::quiet(), ..SimConfig::default() },
                &TracerConfig::default(),
                &analysis_cfg,
            );
            let (detected, recall, mae) = match study.analysis.dominant_model() {
                Some(model) => {
                    let s = score_boundaries(model.breakpoints(), &truth, 0.05);
                    (model.phases.len(), s.recall, s.mean_abs_error)
                }
                None => (0, 0.0, f64::NAN),
            };
            table.row(vec![
                profile_name.to_string(),
                variant.name.to_string(),
                true_k.to_string(),
                detected.to_string(),
                fmt(recall, 2),
                fmt(mae, 4),
            ]);
        }
    }

    println!("{}", table.render_text());
    let path = write_results("e10_ablation_selection.csv", &table.render_csv());
    println!("csv written to {}", path.display());
    println!(
        "\nexpected shape: the default matches the fixed-k oracle; removing the\n\
         parsimony margin (BIC or AIC alike) over-segments high-contrast\n\
         profiles; the Muggeo refinement mainly tightens breakpoint MAE; the\n\
         proposal grid resolution is a second-order effect."
    );
}
