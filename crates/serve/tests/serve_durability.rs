//! Durable-session tests over the wire: restart resumption, the session
//! cap, and idle-TTL eviction with transparent resume. Crash (`kill -9`)
//! recovery is exercised end-to-end against the real binary in the CLI
//! crate's `serve_crash` tests; these stay in-process.

mod common;

use common::{boot, test_config, trace_text};
use phasefold_serve::{Durability, ServeConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phasefold-durable-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path, durability: Durability) -> ServeConfig {
    ServeConfig {
        state_dir: Some(dir.to_path_buf()),
        durability,
        ..test_config()
    }
}

/// Strips the volatile `uptime`-style field: everything in a phases body
/// is deterministic state, so bodies are comparable verbatim.
fn phases(addr: &str, id: &str) -> String {
    let resp =
        phasefold_serve::one_shot(addr, "GET", &format!("/v1/streams/{id}/phases"), b"").unwrap();
    assert_eq!(resp.status, 200, "phases failed: {}", resp.text());
    resp.text().to_string()
}

#[test]
fn durability_without_state_dir_is_refused_at_boot() {
    let config = ServeConfig { durability: Durability::Wal, ..test_config() };
    let err = match phasefold_serve::serve(config) {
        Err(e) => e,
        Ok(_) => panic!("wal without state dir must not boot"),
    };
    assert!(err.to_string().contains("--state-dir"), "got: {err}");
}

#[test]
fn graceful_restart_resumes_sessions_byte_identical() {
    let dir = state_dir("restart");
    let trace = trace_text(300, 1, 7);
    let before = {
        let (handle, addr) = boot(durable_config(&dir, Durability::Wal));
        let resp = phasefold_serve::one_shot(
            &addr,
            "POST",
            "/v1/streams/s1/records",
            trace.as_bytes(),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "push failed: {}", resp.text());
        let body = phases(&addr, "s1");
        assert!(body.contains("\"warm\": true"), "session never warmed: {body}");
        assert!(body.contains("\"resident_bytes\""));
        let stats = handle.shutdown();
        assert!(stats.clean);
        body
    };

    // Same state dir, fresh daemon: the session must answer immediately,
    // from restored state, without a single record being re-sent.
    let (handle, addr) = boot(durable_config(&dir, Durability::Wal));
    let after = phases(&addr, "s1");
    assert_eq!(before, after, "resumed snapshot diverged from the pre-restart one");

    // DELETE reclaims the on-disk artifacts too: a third boot knows
    // nothing about the session.
    let deleted =
        phasefold_serve::one_shot(&addr, "DELETE", "/v1/streams/s1", b"").unwrap();
    assert_eq!(deleted.status, 200);
    handle.shutdown();
    let (handle, addr) = boot(durable_config(&dir, Durability::Wal));
    let gone =
        phasefold_serve::one_shot(&addr, "GET", "/v1/streams/s1/phases", b"").unwrap();
    assert_eq!(gone.status, 404);
    handle.shutdown();
}

#[test]
fn explicit_checkpoint_endpoint_persists_and_reports() {
    let dir = state_dir("endpoint");
    let (handle, addr) = boot(durable_config(&dir, Durability::Checkpoint));
    let trace = trace_text(120, 1, 3);
    let resp =
        phasefold_serve::one_shot(&addr, "POST", "/v1/streams/s1/records", trace.as_bytes())
            .unwrap();
    assert_eq!(resp.status, 200);
    let ck = phasefold_serve::one_shot(&addr, "POST", "/v1/streams/s1/checkpoint", b"").unwrap();
    assert_eq!(ck.status, 200, "checkpoint failed: {}", ck.text());
    assert!(ck.text().contains("\"checkpointed\": true"));
    assert!(dir.join("s1.ckpt").exists(), "checkpoint file missing");

    let missing =
        phasefold_serve::one_shot(&addr, "POST", "/v1/streams/nope/checkpoint", b"").unwrap();
    assert_eq!(missing.status, 404);
    handle.shutdown();

    // Without a state dir the endpoint is a 409, not a crash.
    let (handle, addr) = boot(test_config());
    let r = phasefold_serve::one_shot(&addr, "POST", "/v1/streams/s1/records", trace.as_bytes())
        .unwrap();
    assert_eq!(r.status, 200);
    let ck = phasefold_serve::one_shot(&addr, "POST", "/v1/streams/s1/checkpoint", b"").unwrap();
    assert_eq!(ck.status, 409, "got: {}", ck.text());
    handle.shutdown();
}

#[test]
fn session_cap_sheds_with_429() {
    let config = ServeConfig { max_sessions: 2, ..test_config() };
    let (handle, addr) = boot(config);
    let line = b"R 0 E 1000 0\n";
    for id in ["a", "b"] {
        let resp = phasefold_serve::one_shot(
            &addr,
            "POST",
            &format!("/v1/streams/{id}/records"),
            line,
        )
        .unwrap();
        assert_eq!(resp.status, 200);
    }
    let over =
        phasefold_serve::one_shot(&addr, "POST", "/v1/streams/c/records", line).unwrap();
    assert_eq!(over.status, 429, "got: {}", over.text());
    assert!(over.text().contains("session cap"));

    // Existing sessions still work, and the shed is counted.
    let ok = phasefold_serve::one_shot(&addr, "POST", "/v1/streams/a/records", line).unwrap();
    assert_eq!(ok.status, 200);
    let metrics = phasefold_serve::one_shot(&addr, "GET", "/metrics", b"").unwrap();
    assert!(metrics.text().contains("\"sessions_rejected\": 1"), "got: {}", metrics.text());
    handle.shutdown();
}

#[test]
fn idle_ttl_evicts_to_disk_and_resumes_transparently() {
    let dir = state_dir("ttl");
    let config = ServeConfig {
        session_ttl: Duration::from_millis(200),
        ..durable_config(&dir, Durability::Checkpoint)
    };
    let (handle, addr) = boot(config);
    let trace = trace_text(200, 1, 5);
    let resp =
        phasefold_serve::one_shot(&addr, "POST", "/v1/streams/s1/records", trace.as_bytes())
            .unwrap();
    assert_eq!(resp.status, 200);
    let before = phases(&addr, "s1");

    // The sweep runs about once a second; wait for the eviction to land.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = phasefold_serve::one_shot(&addr, "GET", "/healthz", b"").unwrap();
        if health.text().contains("\"sessions\": 0") {
            break;
        }
        assert!(Instant::now() < deadline, "session was never evicted: {}", health.text());
        std::thread::sleep(Duration::from_millis(100));
    }
    let metrics = phasefold_serve::one_shot(&addr, "GET", "/metrics", b"").unwrap();
    assert!(metrics.text().contains("\"sessions_evicted\": 1"), "got: {}", metrics.text());

    // The evicted session was spilled, not lost: addressing it again
    // resumes it from disk with identical state.
    let after = phases(&addr, "s1");
    assert_eq!(before, after, "TTL spill/resume changed the session");
    handle.shutdown();
}
