#!/usr/bin/env bash
# Lint gate for the fault-critical paths.
#
# The files where a stray unwrap can take down a whole analysis —
# crates/core/src/pipeline.rs, crates/core/src/pool.rs, and
# crates/model/src/prv.rs — carry file-scoped
# `#![deny(clippy::unwrap_used, clippy::expect_used)]` attributes, and
# phasefold-serve denies them crate-wide (a panic on a connection thread
# kills a live client; the daemon must never unwrap request-derived data).
# That crate-wide deny deliberately covers the durability layer —
# crates/serve/src/{store,wal}.rs — where the stakes are higher still: a
# panic during WAL replay or checkpoint recovery turns one corrupt byte on
# disk into a daemon that can never boot again. Torn tails and bad
# checkpoints must flow through the fault taxonomy, never through unwrap.
# phasefold-verify denies them crate-wide too: an oracle that panics
# mid-fuzz hides every divergence the remaining seeds would have found.
# The hot kernels — crates/regress/src/{segdp,linalg}.rs and
# crates/cluster/src/kdtree.rs — carry the same file-scoped deny: a panic
# there aborts every fit/clustering in flight, and the kernel rewrites
# must stay total functions (bound checks, not unwraps).
# phasefold-obs denies them crate-wide as well: the telemetry layer runs
# inside every request and every worker, and instrumentation must never
# be the thing that takes the instrumented process down.
# phasefold-fleet joins the deny list because it decodes fingerprints that
# arrive over the wire and off disk: a panic on a malformed `.pffp` frame
# would let one corrupt baseline wedge every deploy gate that reads it.
# Any unwrap/expect reintroduced there is a hard *error* under clippy (test
# modules opt back in explicitly with #[allow]). Plain rustc accepts the
# tool-lint attributes silently; this script runs clippy on the owning
# crates so the deny actually bites.
#
# Usage:
#   scripts/lint.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy: fault-critical crates (unwrap/expect are hard errors) =="
cargo clippy -q -p phasefold -p phasefold-model -p phasefold-serve -p phasefold-verify \
    -p phasefold-regress -p phasefold-cluster -p phasefold-obs -p phasefold-fleet \
    --all-targets

echo "lint OK"
