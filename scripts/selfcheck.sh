#!/usr/bin/env bash
# Self-profiling smoke test.
#
# Builds the CLI in release mode and runs `phasefold selfcheck`: a canned
# synthetic workload pushed through simulate -> trace -> analyze with
# observability recording on, printing per-stage timings and pool
# utilization. Exits non-zero if the pipeline produces no models.
#
# Usage:
#   scripts/selfcheck.sh                 # default canned workload
#   scripts/selfcheck.sh --threads 4     # extra args forwarded to selfcheck

set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p phasefold-cli --bin phasefold -- selfcheck "$@"
