//! Unfolding: projecting the folded phase models back onto absolute time.
//!
//! The original tool-chain's signature output is a *reconstructed*
//! fine-grain timeline injected into Paraver: every burst instance is
//! painted with the per-phase rates learned from the folded model, giving
//! analysts instantaneous-metric views at a resolution the coarse samples
//! never measured directly. This module reproduces that step: each burst
//! gets its cluster's phase spans scaled onto its own `[start, end)`
//! interval.

use crate::config::AnalysisConfig;
use crate::phase::ClusterPhaseModel;
use crate::pipeline::Analysis;
use phasefold_model::{extract_bursts, CounterKind, CounterSet, RankId, TimeNs, Trace};
use std::collections::HashMap;

/// One reconstructed constant-rate interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconSegment {
    /// Interval start.
    pub start: TimeNs,
    /// Interval end.
    pub end: TimeNs,
    /// Cluster the burst belonged to.
    pub cluster: usize,
    /// Phase index within the cluster model.
    pub phase: usize,
    /// Reconstructed counter rates (units per second).
    pub rates: CounterSet,
}

/// One rank's reconstructed timeline.
#[derive(Debug, Clone, Default)]
pub struct RankReconstruction {
    /// Segments in time order (gaps = communication / unmodelled bursts).
    pub segments: Vec<ReconSegment>,
}

impl RankReconstruction {
    /// Reconstructed instantaneous rate of `counter` at `t`
    /// (zero in gaps).
    pub fn rate_at(&self, counter: CounterKind, t: TimeNs) -> f64 {
        let idx = self.segments.partition_point(|s| s.end <= t);
        match self.segments.get(idx) {
            Some(s) if s.start <= t => s.rates[counter],
            _ => 0.0,
        }
    }

    /// Total reconstructed time (sum of segment durations), seconds.
    pub fn covered_time_s(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.end.saturating_since(s.start).as_secs_f64())
            .sum()
    }
}

/// Reconstructs fine-grain timelines for every rank of `trace` from an
/// `analysis` of that same trace (with the same `config`, so burst
/// extraction matches).
pub fn reconstruct(
    trace: &Trace,
    analysis: &Analysis,
    config: &AnalysisConfig,
) -> Vec<RankReconstruction> {
    let bursts = extract_bursts(trace, config.min_burst_duration);
    assert_eq!(
        bursts.len(),
        analysis.clustering.labels.len(),
        "analysis was produced with a different burst-extraction config"
    );
    let models: HashMap<usize, &ClusterPhaseModel> =
        analysis.models.iter().map(|m| (m.cluster, m)).collect();

    let mut out: Vec<RankReconstruction> =
        (0..trace.num_ranks()).map(|_| RankReconstruction::default()).collect();
    for (burst, label) in bursts.iter().zip(&analysis.clustering.labels) {
        let Some(cluster) = label else { continue };
        let Some(model) = models.get(cluster) else { continue };
        let RankId(r) = burst.id.rank;
        let span_ns = burst.end.0 - burst.start.0;
        let recon = &mut out[r as usize];
        for phase in &model.phases {
            let s = TimeNs(burst.start.0 + (phase.x0 * span_ns as f64).round() as u64);
            let e = TimeNs(burst.start.0 + (phase.x1 * span_ns as f64).round() as u64);
            if e <= s {
                continue;
            }
            recon.segments.push(ReconSegment {
                start: s,
                end: e,
                cluster: *cluster,
                phase: phase.index,
                rates: phase.rates,
            });
        }
    }
    for recon in &mut out {
        recon.segments.sort_by_key(|s| s.start);
    }
    out
}

/// Mean absolute relative error of the reconstructed instantaneous rate of
/// `counter` against a reference rate function, sampled at `grid_points`
/// uniform times over `[0, horizon]`. Instants where either side is zero
/// (communication, gaps) are skipped — the reconstruction only claims the
/// compute regions.
pub fn reconstruction_error(
    recon: &RankReconstruction,
    reference: impl Fn(TimeNs) -> f64,
    counter: CounterKind,
    horizon: TimeNs,
    grid_points: usize,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..grid_points {
        let t = TimeNs((horizon.0 as f64 * (i as f64 + 0.5) / grid_points as f64) as u64);
        let truth = reference(t);
        let got = recon.rate_at(counter, t);
        if truth <= 0.0 || got <= 0.0 {
            continue;
        }
        sum += (got - truth).abs() / truth;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze_trace;
    use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
    use phasefold_simapp::{simulate, SegmentKind, SimConfig};
    use phasefold_tracer::{trace_run, OverheadConfig, TracerConfig};

    fn setup() -> (
        phasefold_simapp::SimOutput,
        Trace,
        Analysis,
        AnalysisConfig,
    ) {
        let program = build(&SyntheticParams { iterations: 300, ..SyntheticParams::default() });
        let sim = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
        let tracer = TracerConfig { overhead: OverheadConfig::FREE, ..TracerConfig::default() };
        let trace = trace_run(&program.registry, &sim.timelines, &tracer);
        let config = AnalysisConfig::default();
        let analysis = analyze_trace(&trace, &config);
        (sim, trace, analysis, config)
    }

    #[test]
    fn segments_are_ordered_and_disjoint() {
        let (_, trace, analysis, config) = setup();
        let recons = reconstruct(&trace, &analysis, &config);
        assert_eq!(recons.len(), 2);
        for recon in &recons {
            assert!(!recon.segments.is_empty());
            for w in recon.segments.windows(2) {
                assert!(w[0].end <= w[1].start, "{w:?}");
            }
        }
    }

    #[test]
    fn reconstruction_matches_ground_truth_rates() {
        let (sim, trace, analysis, config) = setup();
        let recons = reconstruct(&trace, &analysis, &config);
        let timeline = &sim.timelines[0];
        // Reference: ground-truth instantaneous rate, zero outside compute.
        let reference = |t: TimeNs| match timeline.segment_at(t) {
            Some(seg) if matches!(seg.kind, SegmentKind::Compute { .. }) => {
                seg.rates()[CounterKind::Instructions]
            }
            _ => 0.0,
        };
        let err = reconstruction_error(
            &recons[0],
            reference,
            CounterKind::Instructions,
            timeline.end_time(),
            4000,
        );
        assert!(err < 0.08, "reconstruction error {err}");
    }

    #[test]
    fn covered_time_close_to_compute_time() {
        let (sim, trace, analysis, config) = setup();
        let recons = reconstruct(&trace, &analysis, &config);
        let compute: f64 = sim.timelines[0]
            .segments()
            .iter()
            .filter(|s| matches!(s.kind, SegmentKind::Compute { .. }))
            .map(|s| s.end.saturating_since(s.start).as_secs_f64())
            .sum();
        let covered = recons[0].covered_time_s();
        // The prologue burst (before the first comm) is unmodelled; allow
        // a few percent shortfall.
        assert!(covered > 0.9 * compute, "covered {covered} of {compute}");
        assert!(covered <= compute * 1.02);
    }

    #[test]
    fn rate_query_in_gap_is_zero() {
        let (_, trace, analysis, config) = setup();
        let recon = &reconstruct(&trace, &analysis, &config)[0];
        // t = 0 predates the first modelled burst (prologue unmodelled).
        assert_eq!(recon.rate_at(CounterKind::Instructions, TimeNs(0)), 0.0);
        // Far beyond the end.
        assert_eq!(
            recon.rate_at(CounterKind::Instructions, TimeNs(u64::MAX)),
            0.0
        );
    }
}
