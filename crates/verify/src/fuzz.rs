//! The fuzz driver: one seed = one generated case run through every
//! differential and metamorphic check.
//!
//! Kernel-level differential checks (`segdp-exhaustive`, `dbscan-brute`)
//! draw their own synthetic inputs per seed; trace-level checks all share
//! the seed's generated [`Case`]. When a trace-level check diverges and
//! shrinking is enabled, the case's spec is minimized under "that same
//! check still diverges" and the result is attached in corpus format,
//! ready to be written into `tests/corpus/`.

use crate::generate::{random_spec, rng_for, Case};
use crate::{corpus, differential, metamorphic, shrink, Divergence};

/// Namespaces for [`rng_for`], one per randomized check.
mod ns {
    pub const SPEC: u64 = 0x01;
    pub const SEGDP: u64 = 0x02;
    pub const DBSCAN: u64 = 0x03;
    pub const PERMUTE: u64 = 0xD5CA;
    pub const REORDER: u64 = 0xF01D;
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Seeds executed.
    pub seeds_run: u64,
    /// Total trace-level cases generated (== seeds run).
    pub cases: u64,
    /// Total bursts across all generated cases (a volume indicator).
    pub bursts: u64,
    /// Every divergence found, in seed order.
    pub divergences: Vec<Divergence>,
}

/// Runs every check for one seed. With `shrink_repros`, trace-level
/// divergences carry a minimized corpus-format repro.
pub fn run_seed(seed: u64, shrink_repros: bool) -> Vec<Divergence> {
    let mut divergences = Vec::new();

    // Kernel-level differentials on their own synthetic domains.
    divergences.extend(differential::check_segdp(&mut rng_for(seed, ns::SEGDP), seed));
    divergences.extend(differential::check_dbscan(&mut rng_for(seed, ns::DBSCAN), seed));

    // Trace-level checks on the seed's generated case.
    let (spec, config) = random_spec(&mut rng_for(seed, ns::SPEC));
    let case = Case::from_spec(spec, config);
    for mut divergence in trace_checks(&case, seed) {
        if shrink_repros {
            if let Some(spec) = &case.spec {
                let check = divergence.check;
                let before = spec.num_bursts();
                let minimal = shrink::shrink_spec(spec, &case.config, |candidate, cfg| {
                    let candidate_case = Case::from_spec(candidate.clone(), cfg.clone());
                    trace_checks(&candidate_case, seed).iter().any(|d| d.check == check)
                });
                let minimal_case = Case::from_spec(minimal.clone(), case.config.clone());
                let origin = format!(
                    "seed {seed} check {check} (shrunk {before} -> {} bursts)",
                    minimal.num_bursts()
                );
                divergence.repro = Some(corpus::render_case(&minimal_case, &origin));
            }
        }
        divergences.push(divergence);
    }
    divergences
}

/// All checks that consume a whole case (shared with corpus replay via the
/// same check set; replay lives in [`corpus::replay_case`] and pins its
/// own rng namespaces to these).
fn trace_checks(case: &Case, seed: u64) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    divergences.extend(differential::check_fold(case, seed));
    divergences.extend(metamorphic::check_threads(case, seed));
    divergences.extend(metamorphic::check_time_shift(case, seed));
    divergences.extend(metamorphic::check_time_scale(case, seed));
    divergences.extend(metamorphic::check_dbscan_permutation(
        case,
        &mut rng_for(seed, ns::PERMUTE),
        seed,
    ));
    divergences.extend(metamorphic::check_fold_reorder(
        case,
        &mut rng_for(seed, ns::REORDER),
        seed,
    ));
    divergences.extend(metamorphic::check_batch_online(case, seed));
    divergences.extend(metamorphic::check_checkpoint_roundtrip(case, seed));
    divergences.extend(metamorphic::check_reservoir_stream(case, seed));
    divergences.extend(metamorphic::check_fingerprint_roundtrip(case, seed));
    divergences
}

/// Runs seeds `start .. start + count`.
pub fn run_seeds(start: u64, count: u64, shrink_repros: bool) -> FuzzSummary {
    let mut summary = FuzzSummary::default();
    for seed in start..start.saturating_add(count) {
        summary.seeds_run += 1;
        summary.cases += 1;
        let (spec, _) = random_spec(&mut rng_for(seed, ns::SPEC));
        summary.bursts += spec.num_bursts() as u64;
        summary.divergences.extend(run_seed(seed, shrink_repros));
    }
    summary
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_runs_clean_and_deterministically() {
        let a = run_seed(1, false);
        let b = run_seed(1, false);
        assert_eq!(a.len(), b.len());
        assert!(a.is_empty(), "seed 1 must be divergence-free: {:?}", a);
    }
}
