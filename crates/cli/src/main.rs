//! `phasefold` command-line tool. All logic lives in the library crate so
//! commands can be unit-tested; this binary only forwards argv and exit
//! codes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = String::new();
    match phasefold_cli::run(&args, &mut stdout) {
        Ok(()) => {
            print!("{stdout}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{stdout}");
            eprintln!("error: {e}");
            ExitCode::from(phasefold_cli::exit_code(&e))
        }
    }
}
