//! **E20 — Durability cost**: what does an acknowledged record cost under
//! each `--durability` mode?
//!
//! One in-process daemon per mode (`none` / `checkpoint` / `wal`), one
//! streaming session each, the same synthetic record stream pushed in
//! fixed-size batches over a keep-alive connection. Every `200` from
//! `POST /v1/streams/{id}/records` is an *acknowledgment* — under `wal`
//! the daemon has fsync'd the batch to the write-ahead log before
//! answering, under `checkpoint` it periodically serializes the whole
//! session, under `none` it only mutates memory. The mode sweep therefore
//! prices the durability guarantee in acks/sec and per-batch latency.
//!
//! Results are printed as a table, written to `results/e20_durability.csv`,
//! and spliced into `BENCH_serve.json` as a `"durability"` array (the file
//! is owned by `exp_serve_load`; this experiment appends its block before
//! the closing brace so both artifacts live in the one serve benchmark
//! file, one scalar per line, greppable by shell gates).
//!
//! ```text
//! cargo run --release -p phasefold-bench --bin exp_durability
//!     [BENCH_serve.json] [--iterations N] [--batch-lines N]
//! ```

use phasefold_bench::{banner, fmt, write_results, Table};
use phasefold_serve::{Client, Durability, ServeConfig};
use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
use phasefold_simapp::{simulate, SimConfig};
use phasefold_tracer::{trace_run, TracerConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const DEFAULT_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

struct ModeResult {
    mode: &'static str,
    batches: usize,
    records: usize,
    wall_ms: f64,
    acks_per_s: f64,
    records_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    relative: f64,
}

/// The synthetic trace's record lines (comments stripped), joined into
/// batches of `batch_lines` — the unit a collector would ship.
fn make_batches(iterations: u64, batch_lines: usize) -> (Vec<String>, usize) {
    let program = build(&SyntheticParams { iterations, ..SyntheticParams::default() });
    let out = simulate(&program, &SimConfig { ranks: 1, ..SimConfig::default() });
    let text =
        phasefold_model::prv::write_trace(&trace_run(&program.registry, &out.timelines, &TracerConfig::default()));
    let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    let records = lines.len();
    (lines.chunks(batch_lines).map(|c| c.join("\n")).collect(), records)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

fn run_mode(mode: Durability, batches: &[String], records: usize, state_dir: &PathBuf) -> ModeResult {
    let _ = std::fs::remove_dir_all(state_dir);
    let config = ServeConfig {
        workers: 2,
        queue_depth: 16,
        state_dir: (mode != Durability::None).then(|| state_dir.clone()),
        durability: mode,
        // Low enough that the stream crosses it several times — otherwise
        // checkpoint mode never pays its periodic serialization cost and
        // the sweep prices only the initial checkpoint.
        checkpoint_every: 1024,
        ..ServeConfig::default()
    };
    let handle = phasefold_serve::serve(config).expect("boot daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr, Duration::from_secs(60)).expect("connect");
    let _ = client.request("GET", "/healthz", &[], b""); // untimed warmup

    let mut latencies = Vec::with_capacity(batches.len());
    let started = Instant::now();
    for batch in batches {
        let t0 = Instant::now();
        let resp = client
            .request("POST", "/v1/streams/bench/records", &[], batch.as_bytes())
            .expect("push batch");
        assert_eq!(resp.status, 200, "push failed: {}", resp.text());
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    drop(client);
    let stats = handle.shutdown();
    assert!(stats.clean, "daemon drain was not clean: {stats:?}");
    let _ = std::fs::remove_dir_all(state_dir);

    latencies.sort_by(f64::total_cmp);
    ModeResult {
        mode: mode.name(),
        batches: batches.len(),
        records,
        wall_ms,
        acks_per_s: batches.len() as f64 / (wall_ms / 1e3),
        records_per_s: records as f64 / (wall_ms / 1e3),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        relative: 1.0, // filled in once the `none` baseline is known
    }
}

/// Splices a `"durability"` array into the serve benchmark JSON, replacing
/// any previous one. The file is line-oriented by construction (one scalar
/// per line); if it does not exist yet a minimal wrapper is created so
/// this experiment can run standalone.
fn splice_into_bench_json(out_path: &str, block: &str) {
    let existing = std::fs::read_to_string(out_path)
        .unwrap_or_else(|_| "{\n  \"schema\": \"phasefold-bench-serve/1\"\n}\n".to_string());
    let mut kept: Vec<&str> = Vec::new();
    let mut in_durability = false;
    for line in existing.lines() {
        if line.trim_start().starts_with("\"durability\":") {
            in_durability = true;
            continue;
        }
        if in_durability {
            if line.trim() == "]," || line.trim() == "]" {
                in_durability = false;
            }
            continue;
        }
        kept.push(line);
    }
    // Drop the closing brace, make the now-last scalar line comma-terminated.
    while kept.last().is_some_and(|l| l.trim().is_empty() || l.trim() == "}") {
        kept.pop();
    }
    let mut json = String::new();
    let last = kept.len().saturating_sub(1);
    for (i, line) in kept.iter().enumerate() {
        if i == last && !line.trim_end().ends_with(',') && !line.trim_end().ends_with('{') {
            let _ = writeln!(json, "{},", line.trim_end());
        } else {
            let _ = writeln!(json, "{line}");
        }
    }
    json.push_str(block);
    let _ = writeln!(json, "}}");
    std::fs::write(out_path, &json).expect("write serve benchmark json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = DEFAULT_OUT.to_string();
    let mut iterations = 3000u64;
    let mut batch_lines = 40usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iterations" => {
                iterations = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--iterations needs a number");
                i += 2;
            }
            "--batch-lines" => {
                batch_lines = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--batch-lines needs a number");
                i += 2;
            }
            other => {
                out_path = other.to_string();
                i += 1;
            }
        }
    }

    banner(
        "E20",
        "acknowledged-record throughput per durability mode",
        "BENCH_serve.json durability block / results/e20_durability.csv",
    );
    let (batches, records) = make_batches(iterations, batch_lines);
    println!(
        "{} record lines in {} batches of <= {} lines, one session per mode",
        records,
        batches.len(),
        batch_lines
    );

    let state_dir = std::env::temp_dir().join(format!("phasefold-e20-{}", std::process::id()));
    let mut results: Vec<ModeResult> =
        [Durability::None, Durability::Checkpoint, Durability::Wal]
            .into_iter()
            .map(|mode| run_mode(mode, &batches, records, &state_dir))
            .collect();
    let baseline = results[0].acks_per_s;
    for r in &mut results {
        r.relative = r.acks_per_s / baseline;
    }

    let mut table = Table::new(&[
        "durability",
        "batches",
        "records",
        "wall_ms",
        "acks_per_s",
        "records_per_s",
        "p50_ms",
        "p99_ms",
        "vs_none",
    ]);
    for r in &results {
        table.row(vec![
            r.mode.to_string(),
            r.batches.to_string(),
            r.records.to_string(),
            fmt(r.wall_ms, 1),
            fmt(r.acks_per_s, 1),
            fmt(r.records_per_s, 1),
            fmt(r.p50_ms, 3),
            fmt(r.p99_ms, 3),
            fmt(r.relative, 3),
        ]);
    }
    println!("{}", table.render_text());
    let csv_path = write_results("e20_durability.csv", &table.render_csv());
    println!("csv written to {}", csv_path.display());

    let mut block = String::new();
    let _ = writeln!(block, "  \"durability\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            block,
            "    {{ \"mode\": \"{}\", \"batches\": {}, \"records\": {}, \"wall_ms\": {:.3}, \
             \"acks_per_s\": {:.3}, \"records_per_s\": {:.3}, \"batch_p50_ms\": {:.3}, \
             \"batch_p99_ms\": {:.3}, \"vs_none\": {:.4} }}{comma}",
            r.mode, r.batches, r.records, r.wall_ms, r.acks_per_s, r.records_per_s, r.p50_ms,
            r.p99_ms, r.relative,
        );
    }
    let _ = writeln!(block, "  ]");
    splice_into_bench_json(&out_path, &block);
    println!("durability block spliced into {out_path}");
}
