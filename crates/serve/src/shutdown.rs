//! SIGTERM / SIGINT → shutdown flag, without any dependency.
//!
//! The daemon polls [`signalled`] from its accept loop; the handler only
//! flips an `AtomicBool` (the one operation that is async-signal-safe),
//! and the graceful drain happens on normal threads. On non-unix targets
//! installation is a no-op and shutdown relies on `/admin/shutdown` or the
//! in-process [`crate::server::ServerHandle`].

#[cfg(unix)]
mod imp {
    // Binding signal(2) directly, since std exposes no handler API and
    // external crates are off the table. The only other unsafe code in
    // the workspace is `crate::sys` (the event loop's readiness
    // syscalls), under the same raw-binding discipline.
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: signal(2) with a handler that only stores to an atomic;
        // both arguments are valid for the whole program lifetime.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    pub fn signalled() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }

    pub fn reset() {
        SIGNALLED.store(false, Ordering::SeqCst);
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}

    pub fn signalled() -> bool {
        false
    }

    pub fn reset() {}
}

/// Installs handlers for SIGINT and SIGTERM (no-op off unix). Idempotent.
pub fn install() {
    imp::install();
}

/// True once SIGINT or SIGTERM has been received since the last [`reset`].
pub fn signalled() -> bool {
    imp::signalled()
}

/// Clears the flag (used by tests and by repeated serve invocations).
pub fn reset() {
    imp::reset();
}
