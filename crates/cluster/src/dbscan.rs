//! DBSCAN (Ester et al. 1996), the density-based algorithm the
//! computation-burst structure detection of González et al. (IPDPS'09)
//! standardised on.
//!
//! Density-based clustering fits this problem because SPMD phases form
//! dense blobs of arbitrary shape in (duration × instructions) space, and
//! stragglers/perturbed bursts must become *noise*, not their own clusters.

use crate::kdtree::KdTree;

/// Cluster assignment of one point.
pub type Label = Option<usize>;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighbourhood radius ε.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

/// Result of a DBSCAN run.
#[derive(Debug, Clone, PartialEq)]
pub struct DbscanResult {
    /// Per-point labels; `None` = noise.
    pub labels: Vec<Label>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Indices of the points of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (*l == Some(c)).then_some(i))
            .collect()
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Cluster sizes indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for l in self.labels.iter().flatten() {
            sizes[*l] += 1;
        }
        sizes
    }
}

/// Runs DBSCAN over `points`.
///
/// ```
/// use phasefold_cluster::{dbscan, DbscanParams};
///
/// // Two blobs and one outlier.
/// let mut points: Vec<[f64; 2]> = Vec::new();
/// for i in 0..10 {
///     points.push([0.1 + 0.001 * i as f64, 0.1]);
///     points.push([0.9 + 0.001 * i as f64, 0.9]);
/// }
/// points.push([0.5, -3.0]);
///
/// let result = dbscan(&points, &DbscanParams { eps: 0.05, min_pts: 3 });
/// assert_eq!(result.num_clusters, 2);
/// assert_eq!(result.noise_count(), 1);
/// ```
pub fn dbscan<const D: usize>(points: &[[f64; D]], params: &DbscanParams) -> DbscanResult {
    assert!(params.eps > 0.0, "eps must be positive");
    assert!(params.min_pts >= 1, "min_pts must be >= 1");
    let n = points.len();
    let tree = KdTree::build(points);
    let mut labels: Vec<Label> = vec![None; n];
    let mut visited = vec![false; n];
    let mut num_clusters = 0usize;
    // Neighbour and flood-fill buffers hoisted out of the loops: every
    // range query refills `neighbours` in place (no per-query allocation).
    let mut neighbours: Vec<usize> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        tree.within_into(&points[start], params.eps, &mut neighbours);
        phasefold_obs::counter!("dbscan.range_queries", 1);
        phasefold_obs::counter!("dbscan.neighbors_scanned", neighbours.len() as u64);
        if neighbours.len() < params.min_pts {
            continue; // noise (may later be claimed as a border point)
        }
        phasefold_obs::counter!("dbscan.core_points", 1);
        // New cluster: flood fill through core points.
        let cluster = num_clusters;
        num_clusters += 1;
        labels[start] = Some(cluster);
        queue.clear();
        queue.extend_from_slice(&neighbours);
        while let Some(p) = queue.pop() {
            if labels[p].is_none() {
                labels[p] = Some(cluster); // border or core, claimed now
            } else if labels[p] != Some(cluster) {
                continue; // already owned by another cluster
            }
            if visited[p] {
                continue;
            }
            visited[p] = true;
            tree.within_into(&points[p], params.eps, &mut neighbours);
            phasefold_obs::counter!("dbscan.range_queries", 1);
            phasefold_obs::counter!("dbscan.neighbors_scanned", neighbours.len() as u64);
            if neighbours.len() >= params.min_pts {
                phasefold_obs::counter!("dbscan.core_points", 1);
                for &q in &neighbours {
                    if !visited[q] || labels[q].is_none() {
                        queue.push(q);
                    }
                }
            }
        }
    }
    DbscanResult { labels, num_clusters }
}

/// Heuristic ε from the k-dist curve: the paper's tool-chain picks ε near
/// the knee of the sorted k-dist plot; we use a high quantile, which lands
/// on the flat part just before the knee for blob-structured data.
pub fn suggest_eps<const D: usize>(points: &[[f64; D]], min_pts: usize, quantile: f64) -> f64 {
    if points.len() < 2 {
        return 1.0;
    }
    let mut kd = KdTree::<D>::k_dist(points, min_pts.max(1));
    kd.retain(|d| d.is_finite());
    if kd.is_empty() {
        return 1.0;
    }
    kd.sort_by(|a, b| a.total_cmp(b));
    let pos = ((kd.len() - 1) as f64 * quantile.clamp(0.0, 1.0)) as usize;
    (kd[pos] * 1.05).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs plus an outlier.
    fn blobs() -> Vec<[f64; 2]> {
        let mut pts = Vec::new();
        for i in 0..30 {
            let dx = ((i * 13) % 17) as f64 / 170.0;
            let dy = ((i * 7) % 19) as f64 / 190.0;
            pts.push([0.1 + dx, 0.1 + dy]);
            pts.push([0.8 + dx, 0.8 + dy]);
        }
        pts.push([0.5, -0.9]); // outlier
        pts
    }

    #[test]
    fn finds_two_blobs_and_noise() {
        let pts = blobs();
        let res = dbscan(&pts, &DbscanParams { eps: 0.12, min_pts: 4 });
        assert_eq!(res.num_clusters, 2);
        assert_eq!(res.noise_count(), 1);
        assert!(res.labels.last().unwrap().is_none());
        // All blob-1 points share a label distinct from blob-2's.
        let l0 = res.labels[0].unwrap();
        let l1 = res.labels[1].unwrap();
        assert_ne!(l0, l1);
        for i in (0..60).step_by(2) {
            assert_eq!(res.labels[i], Some(l0));
            assert_eq!(res.labels[i + 1], Some(l1));
        }
    }

    #[test]
    fn everything_noise_with_tiny_eps() {
        let pts = blobs();
        let res = dbscan(&pts, &DbscanParams { eps: 1e-6, min_pts: 3 });
        assert_eq!(res.num_clusters, 0);
        assert_eq!(res.noise_count(), pts.len());
    }

    #[test]
    fn one_cluster_with_huge_eps() {
        let pts = blobs();
        let res = dbscan(&pts, &DbscanParams { eps: 10.0, min_pts: 3 });
        assert_eq!(res.num_clusters, 1);
        assert_eq!(res.noise_count(), 0);
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        let pts = vec![[0.0, 0.0], [5.0, 5.0]];
        let res = dbscan(&pts, &DbscanParams { eps: 0.1, min_pts: 1 });
        assert_eq!(res.num_clusters, 2);
        assert_eq!(res.noise_count(), 0);
    }

    #[test]
    fn labels_are_dense_from_zero() {
        let pts = blobs();
        let res = dbscan(&pts, &DbscanParams { eps: 0.12, min_pts: 4 });
        let mut seen: Vec<usize> = res.labels.iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (0..res.num_clusters).collect::<Vec<_>>());
    }

    #[test]
    fn members_and_sizes_agree() {
        let pts = blobs();
        let res = dbscan(&pts, &DbscanParams { eps: 0.12, min_pts: 4 });
        let sizes = res.sizes();
        for c in 0..res.num_clusters {
            assert_eq!(res.members(c).len(), sizes[c]);
        }
        assert_eq!(
            sizes.iter().sum::<usize>() + res.noise_count(),
            pts.len()
        );
    }

    #[test]
    fn suggested_eps_separates_blobs() {
        let pts = blobs();
        let eps = suggest_eps(&pts, 4, 0.9);
        // The suggestion must be big enough to join blob members and small
        // enough not to bridge the blobs (centres ~1.0 apart).
        assert!(eps > 0.01 && eps < 0.7, "eps = {eps}");
        let res = dbscan(&pts, &DbscanParams { eps, min_pts: 4 });
        assert_eq!(res.num_clusters, 2);
    }

    #[test]
    fn empty_input() {
        let res = dbscan::<2>(&[], &DbscanParams { eps: 0.1, min_pts: 2 });
        assert_eq!(res.num_clusters, 0);
        assert!(res.labels.is_empty());
    }

    #[test]
    fn deterministic() {
        let pts = blobs();
        let p = DbscanParams { eps: 0.12, min_pts: 4 };
        assert_eq!(dbscan(&pts, &p), dbscan(&pts, &p));
    }
}
