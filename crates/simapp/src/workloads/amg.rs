//! Algebraic-multigrid V-cycle archetype.
//!
//! Each V-cycle descends a level hierarchy (smooth → restrict per level),
//! solves the coarsest level directly, and ascends (prolong → smooth).
//! Every level's kernels work on a grid 4× smaller than the previous one,
//! so one application produces *many* burst templates of widely different
//! granularity — the multi-density stress case for structure detection, and
//! the "very fine granularity" regime the paper's title advertises: coarse
//! levels run in microseconds, far below any sane sampling period.

use crate::kernel::KernelProfile;
use crate::program::{Block, Program, ProgramBuilder};
use phasefold_model::CommKind;

/// Parameters of the AMG archetype.
#[derive(Debug, Clone, Copy)]
pub struct AmgParams {
    /// V-cycles to run.
    pub cycles: u64,
    /// Unknowns per rank on the finest level.
    pub fine_rows: u64,
    /// Number of levels (≥ 2; each level is 4× coarser).
    pub levels: u32,
}

impl Default for AmgParams {
    fn default() -> AmgParams {
        AmgParams { cycles: 60, fine_rows: 120_000, levels: 4 }
    }
}

fn smooth_profile(rows: u64) -> KernelProfile {
    // Jacobi/spmv-like; working set shrinks with the level.
    KernelProfile {
        instr_per_iter: 58.0,
        frac_loads: 0.40,
        frac_stores: 0.08,
        frac_fp: 0.32,
        frac_branches: 0.06,
        branch_misp_rate: 0.01,
        base_ipc: 2.6,
        working_set_bytes: rows as f64 * 88.0,
        streamed_bytes_per_iter: 88.0,
        locality: 0.8,
    }
}

fn transfer_profile(rows: u64) -> KernelProfile {
    // Restriction/prolongation: lighter, strided access.
    KernelProfile {
        instr_per_iter: 24.0,
        frac_loads: 0.38,
        frac_stores: 0.15,
        frac_fp: 0.22,
        frac_branches: 0.05,
        branch_misp_rate: 0.005,
        base_ipc: 2.8,
        working_set_bytes: rows as f64 * 48.0,
        streamed_bytes_per_iter: 48.0,
        locality: 0.9,
    }
}

fn coarse_solve_profile(rows: u64) -> KernelProfile {
    // Dense-ish direct solve on a tiny system: cache-resident, high IPC.
    KernelProfile {
        instr_per_iter: 300.0,
        frac_loads: 0.28,
        frac_stores: 0.10,
        frac_fp: 0.45,
        frac_branches: 0.04,
        branch_misp_rate: 0.004,
        base_ipc: 3.2,
        working_set_bytes: (rows as f64 * 24.0).min(128.0 * 1024.0),
        streamed_bytes_per_iter: 4.0,
        locality: 1.0,
    }
}

/// Rows on level `l` (level 0 = finest).
fn level_rows(p: &AmgParams, level: u32) -> u64 {
    (p.fine_rows >> (2 * level)).max(64)
}

/// Builds the AMG program.
pub fn build(p: &AmgParams) -> Program {
    assert!(p.levels >= 2, "need at least two levels");
    let mut b = ProgramBuilder::new("amg");
    let mut down: Vec<Block> = Vec::new();
    let mut up: Vec<Block> = Vec::new();
    for level in 0..p.levels - 1 {
        let rows = level_rows(p, level);
        let halo = b.comm(CommKind::Send, (rows as f64).sqrt() * 64.0);
        let smooth = b.kernel(
            &format!("vcycle/smooth_l{level}"),
            "amg.c",
            200 + 10 * level,
            rows,
            smooth_profile(rows),
        );
        let restrict = b.kernel(
            &format!("vcycle/restrict_l{level}"),
            "amg.c",
            205 + 10 * level,
            level_rows(p, level + 1),
            transfer_profile(level_rows(p, level + 1)),
        );
        down.push(ProgramBuilder::seq(vec![halo, smooth, restrict]));

        let rows_up = level_rows(p, level);
        let halo_up = b.comm(CommKind::Send, (rows_up as f64).sqrt() * 64.0);
        let prolong = b.kernel(
            &format!("vcycle/prolong_l{level}"),
            "amg.c",
            305 + 10 * level,
            rows_up,
            transfer_profile(rows_up),
        );
        let smooth_up = b.kernel(
            &format!("vcycle/smooth_up_l{level}"),
            "amg.c",
            300 + 10 * level,
            rows_up,
            smooth_profile(rows_up),
        );
        up.push(ProgramBuilder::seq(vec![halo_up, prolong, smooth_up]));
    }
    up.reverse();

    let coarse_rows = level_rows(p, p.levels - 1);
    let coarse_sync = b.comm(CommKind::Collective, coarse_rows as f64 * 8.0);
    let coarse = b.kernel(
        "vcycle/coarse_solve",
        "amg.c",
        400,
        coarse_rows,
        coarse_solve_profile(coarse_rows),
    );
    let residual_norm = b.comm(CommKind::Collective, 8.0);

    let mut cycle_body = down;
    cycle_body.push(ProgramBuilder::seq(vec![coarse_sync, coarse]));
    cycle_body.extend(up);
    cycle_body.push(residual_norm);
    let cycle = b.loop_block(
        "vcycle/loop",
        "amg.c",
        100,
        p.cycles,
        ProgramBuilder::seq(cycle_body),
    );
    let vcycle = b.function("vcycle", "amg.c", 90, cycle);
    let main = b.function("main", "amg_main.c", 20, vcycle);
    b.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unroll;
    use crate::groundtruth::GroundTruth;
    use crate::kernel::CpuConfig;
    use crate::noise::NoiseConfig;

    #[test]
    fn builds_and_counts() {
        let p = build(&AmgParams::default());
        p.validate();
        // Per cycle: (levels−1) halos down + coarse collective + (levels−1)
        // halos up + residual collective = 2·(levels−1)+2 = 8 comms.
        assert_eq!(p.total_comms(), 60 * 8);
    }

    #[test]
    fn produces_many_distinct_templates() {
        let prog = build(&AmgParams { cycles: 5, ..AmgParams::default() });
        let script = unroll(&prog, &CpuConfig::default(), NoiseConfig::NONE, 0);
        let gt = GroundTruth::from_script(&script);
        // Distinct burst shapes per level direction + coarse solve.
        assert!(gt.templates.len() >= 5, "only {} templates", gt.templates.len());
    }

    #[test]
    fn burst_granularity_spans_orders_of_magnitude() {
        let prog = build(&AmgParams { cycles: 3, ..AmgParams::default() });
        let script = unroll(&prog, &CpuConfig::default(), NoiseConfig::NONE, 0);
        let gt = GroundTruth::from_script(&script);
        let durs: Vec<f64> = gt.templates.iter().map(|t| t.total_dur_s).collect();
        let max = durs.iter().cloned().fold(0.0f64, f64::max);
        let min = durs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 20.0, "granularity ratio {}", max / min);
    }

    #[test]
    fn coarser_levels_shrink() {
        let p = AmgParams::default();
        assert_eq!(level_rows(&p, 0), 120_000);
        assert_eq!(level_rows(&p, 1), 30_000);
        assert_eq!(level_rows(&p, 2), 7_500);
    }

    #[test]
    #[should_panic(expected = "two levels")]
    fn single_level_rejected() {
        build(&AmgParams { levels: 1, ..AmgParams::default() });
    }
}
