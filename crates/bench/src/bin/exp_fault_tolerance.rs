//! **E15 (extension) — fault tolerance under deterministic corruption**:
//! seeded corruptors damage a recorded trace at increasing rates; the
//! lenient pipeline must keep producing a phase model, quarantine the
//! damage into the fault report, and degrade *gracefully* — measured as
//! boundary recovery against the clean run's breakpoints.
//!
//! ```text
//! cargo run --release -p phasefold-bench --bin exp_fault_tolerance
//! ```

use phasefold::{analyze_trace, score_boundaries, AnalysisConfig};
use phasefold_bench::{banner, fmt, write_results, Table};
use phasefold_chaos::ChaosConfig;
use phasefold_model::prv;
use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
use phasefold_simapp::{simulate, SimConfig};
use phasefold_tracer::{trace_run, TracerConfig};

const SEED: u64 = 0xE15;
const RATES: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.4];

/// One corruptor dimension: name + config builder for a given rate.
const CORRUPTORS: [(&str, fn(f64) -> ChaosConfig); 6] = [
    ("drop", |r| ChaosConfig { drop: r, ..ChaosConfig::clean(SEED) }),
    ("truncate", |r| ChaosConfig { truncate: r, ..ChaosConfig::clean(SEED) }),
    ("shuffle", |r| ChaosConfig { shuffle: r, ..ChaosConfig::clean(SEED) }),
    ("saturate", |r| ChaosConfig { saturate: r, ..ChaosConfig::clean(SEED) }),
    ("nan", |r| ChaosConfig { nan: r, ..ChaosConfig::clean(SEED) }),
    ("all", |r| ChaosConfig::uniform(SEED, r)),
];

fn main() {
    banner(
        "E15",
        "fault tolerance under deterministic corruption",
        "quarantine-and-degrade: corrupted records cost accuracy, never the run",
    );

    let params = SyntheticParams { iterations: 300, ..SyntheticParams::default() };
    let program = build(&params);
    let sim = simulate(&program, &SimConfig { ranks: 4, ..SimConfig::default() });
    let trace = trace_run(&program.registry, &sim.timelines, &TracerConfig::default());
    let clean_text = prv::write_trace(&trace);

    let config = AnalysisConfig::default();
    let clean = analyze_trace(&trace, &config);
    let clean_bps: Vec<f64> = match clean.analysis_breakpoints() {
        Some(bps) => bps,
        None => {
            eprintln!("clean run produced no dominant model; cannot measure recovery");
            std::process::exit(1);
        }
    };

    let mut table = Table::new(&[
        "corruptor",
        "rate",
        "corrupted_lines",
        "parse_faults",
        "analysis_faults",
        "models",
        "recovery",
    ]);

    for (name, make) in CORRUPTORS {
        for rate in RATES {
            let (text, stats) = phasefold_chaos::corrupt_trace_text(&clean_text, &make(rate));
            let (dirty_trace, parse_report) = match prv::parse_trace_lenient(&text) {
                Ok(ok) => ok,
                Err(fault) => {
                    // Structural damage: the run is lost, recovery is zero.
                    eprintln!("{name}@{rate}: structurally unreadable: {fault}");
                    table.row(vec![
                        name.to_string(),
                        format!("{rate}"),
                        stats.total().to_string(),
                        "-".into(),
                        "-".into(),
                        "0".into(),
                        fmt(0.0, 3),
                    ]);
                    continue;
                }
            };
            let analysis = analyze_trace(&dirty_trace, &config);
            let recovery = match analysis.analysis_breakpoints() {
                Some(bps) => score_boundaries(&bps, &clean_bps, 0.05).recall,
                None => 0.0,
            };
            table.row(vec![
                name.to_string(),
                format!("{rate}"),
                stats.total().to_string(),
                parse_report.len().to_string(),
                analysis.faults.len().to_string(),
                analysis.models.len().to_string(),
                fmt(recovery, 3),
            ]);
        }
    }

    println!("{}", table.render_text());
    let path = write_results("e15_fault_tolerance.csv", &table.render_csv());
    println!("csv written to {}", path.display());
    println!(
        "\nexpected shape: at rate 0 every corruptor recovers the clean model\n\
         exactly (recovery 1.000, zero faults). As the rate grows, dropped and\n\
         NaN-poisoned samples thin the folded profiles and saturated counters\n\
         quarantine, costing recall gradually; shuffled timestamps and truncated\n\
         records are quarantined at parse time. The run itself never aborts —\n\
         the fault report grows instead."
    );
}

/// Breakpoints of the dominant model, the structure recovery is scored on.
trait AnalysisBreakpoints {
    fn analysis_breakpoints(&self) -> Option<Vec<f64>>;
}

impl AnalysisBreakpoints for phasefold::Analysis {
    fn analysis_breakpoints(&self) -> Option<Vec<f64>> {
        self.dominant_model().map(|m| m.breakpoints().to_vec())
    }
}
