//! A k-d tree over fixed-dimension points, supporting the ε-range queries
//! DBSCAN needs. Built once over all points (median split), queried many
//! times; no external dependencies.
//!
//! The tree is stored as one flat, left-balanced array of nodes: the
//! subtree over `lo..hi` has its root at `(lo + hi) / 2`, children in the
//! two halves. No child pointers exist — the index arithmetic *is* the
//! structure — so a node is exactly its point plus the original index,
//! packed contiguously. Range and k-NN queries walk the array iteratively
//! with a small explicit stack; no recursion, no per-query allocation
//! (callers can reuse result buffers via [`KdTree::within_into`]).

#![deny(clippy::unwrap_used, clippy::expect_used)]

/// One node of the flat tree: the point, plus the index it had in the
/// build input. `u32` keeps the node at 3 machine words for `D = 2` —
/// the burst sets this crate clusters never approach 4 G points.
#[derive(Debug, Clone, Copy)]
struct KdNode<const D: usize> {
    point: [f64; D],
    original: u32,
}

/// Upper bound on the traversal stack. Each level of the median-balanced
/// tree contributes at most two frames, and `u32` originals cap the depth
/// at 32 levels, so 128 frames can never overflow.
const MAX_STACK: usize = 128;

/// A k-d tree over `D`-dimensional points.
#[derive(Debug, Clone)]
pub struct KdTree<const D: usize> {
    /// Left-balanced implicit tree: root of `lo..hi` at `(lo + hi) / 2`.
    nodes: Vec<KdNode<D>>,
}

impl<const D: usize> KdTree<D> {
    /// Builds a balanced tree (median splits) over `points`.
    pub fn build(points: &[[f64; D]]) -> KdTree<D> {
        assert!(points.len() <= u32::MAX as usize, "point count exceeds u32 index space");
        let mut nodes: Vec<KdNode<D>> = points
            .iter()
            .enumerate()
            .map(|(i, &point)| KdNode { point, original: i as u32 })
            .collect();
        if !nodes.is_empty() {
            build_in_place(&mut nodes, 0);
        }
        KdTree { nodes }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Original indices of all points within Euclidean distance `eps` of
    /// `query` (inclusive). Includes the query point itself if present.
    pub fn within(&self, query: &[f64; D], eps: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.within_into(query, eps, &mut out);
        out
    }

    /// [`KdTree::within`] writing into a caller-owned buffer (cleared
    /// first), so repeated queries — DBSCAN's flood fill — never allocate.
    pub fn within_into(&self, query: &[f64; D], eps: f64, out: &mut Vec<usize>) {
        out.clear();
        if self.nodes.is_empty() {
            return;
        }
        let eps2 = eps * eps;
        let mut visited = 0u64;
        let mut stack = [(0usize, 0usize, 0usize); MAX_STACK];
        stack[0] = (0, self.nodes.len(), 0);
        let mut top = 1;
        while top > 0 {
            top -= 1;
            let (lo, hi, axis) = stack[top];
            let mid = lo + (hi - lo) / 2;
            let node = &self.nodes[mid];
            visited += 1;
            if dist2(&node.point, query) <= eps2 {
                out.push(node.original as usize);
            }
            let next_axis = (axis + 1) % D;
            let delta = query[axis] - node.point[axis];
            // Visit the near half always; the far half only when the
            // splitting plane is within eps (squared compare — no sqrt).
            let (near, far) = if delta <= 0.0 {
                ((lo, mid), (mid + 1, hi))
            } else {
                ((mid + 1, hi), (lo, mid))
            };
            debug_assert!(top + 2 <= MAX_STACK);
            if far.0 < far.1 && delta * delta <= eps2 {
                stack[top] = (far.0, far.1, next_axis);
                top += 1;
            }
            // Pushed last, popped first: preserves the recursive
            // near-side-first visit order.
            if near.0 < near.1 {
                stack[top] = (near.0, near.1, next_axis);
                top += 1;
            }
        }
        phasefold_obs::counter!("kdtree.nodes_visited", visited);
    }

    /// Distance to the k-th nearest *other* point for every point (the
    /// "k-dist" curve used to pick DBSCAN's ε). Runs exact bounded k-NN
    /// queries against the tree — O(n log n) on blob-structured data where
    /// the old all-pairs scan was O(n² log n) — and returns exactly the
    /// values the brute force would: the k-th smallest distance is a
    /// multiset statistic, indifferent to tie order.
    pub fn k_dist(points: &[[f64; D]], k: usize) -> Vec<f64> {
        let n = points.len();
        let k = k.max(1);
        let tree = KdTree::build(points);
        let mut out = Vec::with_capacity(n);
        let mut best: Vec<f64> = Vec::with_capacity(k);
        for (i, p) in points.iter().enumerate() {
            tree.knn_excluding(i, p, k, &mut best);
            out.push(if best.len() == k { best[k - 1].sqrt() } else { f64::INFINITY });
        }
        out
    }

    /// Exact k-nearest-neighbour squared distances from `query`, skipping
    /// the point whose original index is `skip`. `best` (reused across
    /// calls) ends sorted ascending with at most `k` entries.
    fn knn_excluding(&self, skip: usize, query: &[f64; D], k: usize, best: &mut Vec<f64>) {
        best.clear();
        if self.nodes.is_empty() {
            return;
        }
        let mut visited = 0u64;
        let mut stack = [(0usize, 0usize, 0usize); MAX_STACK];
        stack[0] = (0, self.nodes.len(), 0);
        let mut top = 1;
        while top > 0 {
            top -= 1;
            let (lo, hi, axis) = stack[top];
            let mid = lo + (hi - lo) / 2;
            let node = &self.nodes[mid];
            visited += 1;
            if node.original as usize != skip {
                let d2 = dist2(&node.point, query);
                if best.len() < k {
                    let pos = best.partition_point(|&b| b <= d2);
                    best.insert(pos, d2);
                } else if d2 < best[k - 1] {
                    best.pop();
                    let pos = best.partition_point(|&b| b <= d2);
                    best.insert(pos, d2);
                }
            }
            let next_axis = (axis + 1) % D;
            let delta = query[axis] - node.point[axis];
            let (near, far) = if delta <= 0.0 {
                ((lo, mid), (mid + 1, hi))
            } else {
                ((mid + 1, hi), (lo, mid))
            };
            // The far half can only matter while the neighbour set is not
            // full, or when the splitting plane is at most the current k-th
            // distance away (`<=` keeps boundary ties exact).
            let explore_far = best.len() < k || delta * delta <= best[k - 1];
            debug_assert!(top + 2 <= MAX_STACK);
            if far.0 < far.1 && explore_far {
                stack[top] = (far.0, far.1, next_axis);
                top += 1;
            }
            if near.0 < near.1 {
                stack[top] = (near.0, near.1, next_axis);
                top += 1;
            }
        }
        phasefold_obs::counter!("kdtree.nodes_visited", visited);
    }
}

/// Recursive in-place build: median-partition the node slice along the
/// axis (`select_nth_unstable_by` — O(n) per level, no allocation, unlike
/// the full sort + three fresh vectors per level this replaces), then
/// recurse into the halves. Depth is log₂(n): the median split is exact.
fn build_in_place<const D: usize>(nodes: &mut [KdNode<D>], axis: usize) {
    let n = nodes.len();
    if n <= 1 {
        return;
    }
    let mid = n / 2;
    nodes.select_nth_unstable_by(mid, |a, b| a.point[axis].total_cmp(&b.point[axis]));
    let next = (axis + 1) % D;
    let (left, rest) = nodes.split_at_mut(mid);
    build_in_place(left, next);
    build_in_place(&mut rest[1..], next);
}

fn dist2<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut s = 0.0;
    for d in 0..D {
        let diff = a[d] - b[d];
        s += diff * diff;
    }
    s
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn brute_within(points: &[[f64; 2]], q: &[f64; 2], eps: f64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..points.len())
            .filter(|&i| dist2(&points[i], q).sqrt() <= eps)
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_k_dist(points: &[[f64; 2]], k: usize) -> Vec<f64> {
        let n = points.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut dists: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| dist2(&points[i], &points[j]).sqrt())
                .collect();
            dists.sort_by(|a, b| a.total_cmp(b));
            out.push(dists.get(k.saturating_sub(1)).copied().unwrap_or(f64::INFINITY));
        }
        out
    }

    fn pseudo_points(n: usize) -> Vec<[f64; 2]> {
        (0..n)
            .map(|i| {
                let a = ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
                let b = ((i as u64).wrapping_mul(0x9E3779B9) % 1000) as f64 / 1000.0;
                [a, b]
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = pseudo_points(200);
        let tree = KdTree::build(&pts);
        for (qi, q) in pts.iter().enumerate().step_by(17) {
            for eps in [0.05, 0.2, 0.7] {
                let mut got = tree.within(q, eps);
                got.sort_unstable();
                let want = brute_within(&pts, q, eps);
                assert_eq!(got, want, "query {qi} eps {eps}");
            }
        }
    }

    #[test]
    fn within_into_reuses_buffer() {
        let pts = pseudo_points(100);
        let tree = KdTree::build(&pts);
        let mut buf = vec![999usize; 64]; // stale garbage must be cleared
        tree.within_into(&pts[3], 0.15, &mut buf);
        let mut got = buf.clone();
        got.sort_unstable();
        assert_eq!(got, brute_within(&pts, &pts[3], 0.15));
    }

    #[test]
    fn empty_tree() {
        let tree: KdTree<2> = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.within(&[0.0, 0.0], 1.0).is_empty());
    }

    #[test]
    fn single_point() {
        let tree = KdTree::build(&[[0.5, 0.5]]);
        assert_eq!(tree.within(&[0.5, 0.5], 0.0), vec![0]);
        assert_eq!(tree.within(&[0.6, 0.5], 0.05), Vec::<usize>::new());
        assert_eq!(tree.within(&[0.6, 0.5], 0.2), vec![0]);
    }

    #[test]
    fn duplicate_points_all_found() {
        let pts = vec![[0.1, 0.1]; 5];
        let tree = KdTree::build(&pts);
        let mut got = tree.within(&[0.1, 0.1], 1e-9);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn three_dimensional_works() {
        let pts: Vec<[f64; 3]> = (0..50)
            .map(|i| [i as f64 * 0.1, (i % 7) as f64, (i % 3) as f64])
            .collect();
        let tree = KdTree::build(&pts);
        let got = tree.within(&pts[10], 1e-9);
        assert_eq!(got, vec![10]);
    }

    #[test]
    fn k_dist_on_uniform_grid() {
        // 1-D embedded grid: nearest neighbour distance is the spacing.
        let pts: Vec<[f64; 2]> = (0..10).map(|i| [i as f64, 0.0]).collect();
        let d1 = KdTree::k_dist(&pts, 1);
        assert!(d1.iter().all(|&d| (d - 1.0).abs() < 1e-12));
        let d2 = KdTree::k_dist(&pts, 2);
        // End points' 2nd neighbour is 2 away; interior points' is 1.
        assert!((d2[0] - 2.0).abs() < 1e-12);
        assert!((d2[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_dist_matches_brute_force() {
        let pts = pseudo_points(150);
        for k in [1, 2, 4, 7] {
            let fast = KdTree::k_dist(&pts, k);
            let slow = brute_k_dist(&pts, k);
            assert_eq!(fast.len(), slow.len());
            for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    f.to_bits() == s.to_bits(),
                    "k = {k} point {i}: tree {f} vs brute {s}"
                );
            }
        }
    }

    #[test]
    fn k_dist_with_duplicates() {
        // Duplicate coordinates: the other copies sit at distance 0 and
        // must count as neighbours, exactly as the brute force counts them.
        let mut pts = vec![[0.25, 0.25]; 4];
        pts.extend(pseudo_points(40));
        for k in [1, 3, 5] {
            let fast = KdTree::k_dist(&pts, k);
            let slow = brute_k_dist(&pts, k);
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn k_dist_degenerate() {
        let pts = vec![[0.0, 0.0]];
        assert_eq!(KdTree::k_dist(&pts, 1), vec![f64::INFINITY]);
    }
}
