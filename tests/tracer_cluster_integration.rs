//! Robustness integration: the tracer's realistic imperfections
//! (multiplexed counters, instrumentation overhead, system noise) must not
//! break structure detection or folding.

use phasefold::{analyze_trace, AnalysisConfig};
use phasefold_cluster::{adjusted_rand_index, cluster_bursts, ClusterConfig};
use phasefold_model::{extract_bursts, CounterKind, DurNs};
use phasefold_simapp::workloads::md::{build as build_md, MdParams};
use phasefold_simapp::workloads::synthetic::{build as build_syn, SyntheticParams};
use phasefold_simapp::{simulate, NoiseConfig, SimConfig};
use phasefold_tracer::{trace_run, MultiplexMode, OverheadConfig, TracerConfig};

#[test]
fn clustering_matches_ground_truth_templates() {
    let program = build_md(&MdParams::default());
    let sim_cfg = SimConfig { ranks: 4, ..SimConfig::default() };
    let out = simulate(&program, &sim_cfg);
    let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
    let bursts = extract_bursts(&trace, DurNs::from_micros(10));
    let clustering = cluster_bursts(&bursts, &ClusterConfig::default());

    // Ground truth: per-rank template sequence (identical across ranks,
    // prologue skipped — same convention as burst extraction).
    let per_rank_truth = &out.ground_truth.burst_templates;
    let mut truth = Vec::with_capacity(bursts.len());
    let mut labels = Vec::with_capacity(bursts.len());
    let mut cursor_per_rank = std::collections::HashMap::new();
    for (burst, label) in bursts.iter().zip(&clustering.labels) {
        let cursor = cursor_per_rank.entry(burst.id.rank).or_insert(0usize);
        if *cursor < per_rank_truth.len() {
            truth.push(per_rank_truth[*cursor]);
            labels.push(*label);
        }
        *cursor += 1;
    }
    let ari = adjusted_rand_index(&labels, &truth);
    assert!(ari > 0.8, "ARI {ari} with {} clusters", clustering.num_clusters);
}

#[test]
fn multiplexing_still_recovers_phases() {
    let program = build_syn(&SyntheticParams { iterations: 600, ..SyntheticParams::default() });
    let out = simulate(&program, &SimConfig { ranks: 4, ..SimConfig::default() });
    let groups = vec![
        vec![CounterKind::Instructions, CounterKind::Cycles, CounterKind::L1DMisses],
        vec![CounterKind::Instructions, CounterKind::Cycles, CounterKind::L2Misses],
        vec![CounterKind::Instructions, CounterKind::Cycles, CounterKind::L3Misses],
    ];
    let cfg = TracerConfig {
        multiplex: MultiplexMode::RoundRobin(groups),
        ..TracerConfig::default()
    };
    let trace = trace_run(&program.registry, &out.timelines, &cfg);
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    let model = analysis.dominant_model().expect("model under multiplexing");
    assert_eq!(model.phases.len(), 3, "candidates {:?}", model.fit.candidates);
    // Miss-rate metrics are estimated from one third of the samples but
    // must still be finite and ordered sensibly.
    for p in &model.phases {
        assert!(p.metrics.l2_mpki.is_finite());
        assert!(p.metrics.l1_mpki >= p.metrics.l3_mpki - 1e-6);
    }
}

#[test]
fn heavy_noise_is_survivable() {
    let program = build_syn(&SyntheticParams { iterations: 800, ..SyntheticParams::default() });
    let out = simulate(
        &program,
        &SimConfig { ranks: 4, noise: NoiseConfig::noisy(), ..SimConfig::default() },
    );
    let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    let model = analysis.dominant_model().expect("model under heavy noise");
    // MAD pruning must have discarded the preempted stragglers.
    assert!(model.instances_pruned > 0, "expected pruned outliers under noisy config");
    // Structure still recovered (±1 phase tolerated under heavy noise).
    assert!(
        (2..=4).contains(&model.phases.len()),
        "{} phases, candidates {:?}",
        model.phases.len(),
        model.fit.candidates
    );
}

#[test]
fn overhead_perturbs_but_does_not_destroy() {
    let program = build_syn(&SyntheticParams { iterations: 500, ..SyntheticParams::default() });
    let out = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
    let cfg = TracerConfig {
        overhead: OverheadConfig { per_sample_s: 20e-6, per_event_s: 1e-6 },
        ..TracerConfig::default()
    };
    let trace = trace_run(&program.registry, &out.timelines, &cfg);
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    let model = analysis.dominant_model().expect("model despite overhead");
    assert_eq!(model.phases.len(), 3, "candidates {:?}", model.fit.candidates);
}
