//! CSV export of folded profiles and fitted models, for external plotting
//! (gnuplot / matplotlib) of the figures the experiments regenerate.

use crate::phase::ClusterPhaseModel;
use phasefold_folding::ClusterFold;
use phasefold_model::{CounterKind, Fault, FaultKind};
use std::fmt::Write as _;

/// Wraps a filesystem failure in the fault taxonomy, keeping the path.
fn io_fault(path: &std::path::Path, e: std::io::Error) -> Fault {
    Fault::new(FaultKind::Io, format!("cannot write {}", path.display())).caused_by(e.to_string())
}

/// Folded scatter of one counter as `x,y` CSV (header included).
pub fn folded_points_csv(fold: &ClusterFold, counter: CounterKind) -> String {
    let mut out = String::from("x,y\n");
    for p in fold.profile(counter).iter() {
        let _ = writeln!(out, "{},{}", p.x, p.y);
    }
    out
}

/// The fitted instruction-rate step function sampled on `n` grid points,
/// as `x,rate_per_s` CSV.
pub fn rate_curve_csv(model: &ClusterPhaseModel, counter: CounterKind, n: usize) -> String {
    let mut out = String::from("x,rate\n");
    for i in 0..n {
        let x = (i as f64 + 0.5) / n as f64;
        let _ = writeln!(out, "{},{}", x, model.rate_at(counter, x));
    }
    out
}

/// Phase table as CSV: one row per phase with spans, rates and metrics.
pub fn phases_csv(model: &ClusterPhaseModel) -> String {
    let mut out =
        String::from("phase,x0,x1,duration_s,mips,ipc,l1_mpki,l2_mpki,l3_mpki,branch_misp\n");
    for p in &model.phases {
        let m = &p.metrics;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            p.index, p.x0, p.x1, p.duration_s, m.mips, m.ipc, m.l1_mpki, m.l2_mpki, m.l3_mpki,
            m.branch_misp_ratio
        );
    }
    out
}

/// A complete gnuplot figure for one counter of one cluster: writes
/// `<stem>.dat` (folded scatter), `<stem>_fit.dat` (fitted accumulated
/// curve) and `<stem>.gp` (script producing `<stem>.png`) into `dir`.
/// Returns the script path; filesystem failures surface as typed
/// [`FaultKind::Io`] faults carrying the offending path.
pub fn write_gnuplot_figure(
    dir: &std::path::Path,
    stem: &str,
    fold: &ClusterFold,
    model: &ClusterPhaseModel,
    counter: CounterKind,
) -> Result<std::path::PathBuf, Fault> {
    std::fs::create_dir_all(dir).map_err(|e| io_fault(dir, e))?;
    let scatter_path = dir.join(format!("{stem}.dat"));
    std::fs::write(&scatter_path, folded_points_csv(fold, counter).replace(',', " "))
        .map_err(|e| io_fault(&scatter_path, e))?;

    let mut fit = String::from("x y\n");
    for i in 0..=200 {
        let x = i as f64 / 200.0;
        let _ = writeln!(fit, "{} {}", x, model.fit.fit.predict(x));
    }
    let fit_path = dir.join(format!("{stem}_fit.dat"));
    std::fs::write(&fit_path, fit).map_err(|e| io_fault(&fit_path, e))?;

    let mut script = String::new();
    let _ = writeln!(script, "set terminal pngcairo size 900,600");
    let _ = writeln!(script, "set output '{stem}.png'");
    let _ = writeln!(script, "set xlabel 'burst fraction'");
    let _ = writeln!(
        script,
        "set ylabel 'normalised accumulated {}'",
        counter.mnemonic()
    );
    let _ = writeln!(script, "set key left top");
    for bp in model.breakpoints() {
        let _ = writeln!(
            script,
            "set arrow from {bp},0 to {bp},1 nohead dt 2 lc rgb 'gray'"
        );
    }
    let _ = writeln!(
        script,
        "plot '{stem}.dat' skip 1 with dots title 'folded samples', \\\n     '{stem}_fit.dat' skip 1 with lines lw 2 title 'PWLR fit'"
    );
    let script_path = dir.join(format!("{stem}.gp"));
    std::fs::write(&script_path, script).map_err(|e| io_fault(&script_path, e))?;
    Ok(script_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::pipeline::analyze_trace;
    use phasefold_cluster::{cluster_bursts, ClusterConfig};
    use phasefold_folding::{fold_trace, FoldConfig};
    use phasefold_model::{extract_bursts, DurNs};
    use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
    use phasefold_simapp::{simulate, SimConfig};
    use phasefold_tracer::{trace_run, TracerConfig};

    #[test]
    fn csv_outputs_are_well_formed() {
        let program = build(&SyntheticParams { iterations: 150, ..SyntheticParams::default() });
        let out = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        let bursts = extract_bursts(&trace, DurNs::from_micros(1));
        let clustering = cluster_bursts(&bursts, &ClusterConfig::default());
        let folds = fold_trace(&trace, &bursts, &clustering, &FoldConfig::default());
        let analysis = analyze_trace(&trace, &AnalysisConfig::default());
        let model = analysis.dominant_model().unwrap();

        let scatter = folded_points_csv(&folds[0], CounterKind::Instructions);
        assert!(scatter.starts_with("x,y\n"));
        assert!(scatter.lines().count() > 10);
        for line in scatter.lines().skip(1) {
            let mut parts = line.split(',');
            let x: f64 = parts.next().unwrap().parse().unwrap();
            let y: f64 = parts.next().unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }

        let curve = rate_curve_csv(model, CounterKind::Instructions, 50);
        assert_eq!(curve.lines().count(), 51);

        let phases = phases_csv(model);
        assert_eq!(phases.lines().count(), model.phases.len() + 1);
        assert!(phases.contains("mips"));

        // Gnuplot bundle.
        let dir = std::env::temp_dir().join("phasefold-export-test");
        let script =
            write_gnuplot_figure(&dir, "demo", &folds[0], model, CounterKind::Instructions)
                .unwrap();
        let text = std::fs::read_to_string(&script).unwrap();
        assert!(text.contains("plot 'demo.dat'"));
        assert!(text.contains("set arrow"), "breakpoint markers missing");
        assert!(dir.join("demo.dat").exists());
        assert!(dir.join("demo_fit.dat").exists());
        let fit = std::fs::read_to_string(dir.join("demo_fit.dat")).unwrap();
        assert_eq!(fit.lines().count(), 202);

        // Filesystem failures are typed faults, not panics: using an
        // existing *file* as the output directory must fail cleanly.
        let not_a_dir = dir.join("demo.dat");
        let err = write_gnuplot_figure(&not_a_dir, "x", &folds[0], model, CounterKind::Cycles)
            .unwrap_err();
        assert_eq!(err.kind, phasefold_model::FaultKind::Io);
        assert!(err.to_string().contains("demo.dat"), "{err}");
    }
}
