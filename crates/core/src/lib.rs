//! # phasefold
//!
//! Rust reproduction of *"Identifying Code Phases Using Piece-Wise Linear
//! Regressions"* (Servat, Llort, González, Giménez, Labarta — IEEE IPDPS
//! 2014, DOI 10.1109/IPDPS.2014.100).
//!
//! The mechanism combines **piece-wise linear regressions**, **coarse-grain
//! sampling** and **minimal instrumentation** to detect performance phases
//! inside the computation regions of parallel applications — even when
//! phase granularity is far below the sampling period — and maps each
//! phase's node-level performance back onto the application's syntactical
//! structure (function, file, line).
//!
//! ## Pipeline
//!
//! ```text
//! trace (events + coarse samples)
//!   └─ burst extraction      phasefold-model
//!   └─ DBSCAN clustering     phasefold-cluster
//!   └─ folding               phasefold-folding
//!   └─ PWLR fitting          phasefold-regress
//!   └─ phases + metrics + source mapping   (this crate)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use phasefold::{run_study, AnalysisConfig};
//! use phasefold::report::render_report;
//! use phasefold_simapp::workloads::cg::{build, CgParams};
//! use phasefold_simapp::SimConfig;
//! use phasefold_tracer::TracerConfig;
//!
//! let program = build(&CgParams { iterations: 60, ..CgParams::default() });
//! let study = run_study(
//!     &program,
//!     &SimConfig { ranks: 2, ..SimConfig::default() },
//!     &TracerConfig::default(),
//!     &AnalysisConfig::default(),
//! );
//! let report = render_report(&study.analysis, &study.trace.registry);
//! assert!(report.contains("cluster"));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod compare;
pub mod config;
pub mod driver;
pub mod eval;
pub mod export;
pub mod metrics;
pub mod phase;
pub mod pipeline;
pub mod pool;
pub mod online;
pub mod report;
pub mod signal;
pub mod srcmap;
pub mod unfold;

pub use compare::{compare_analyses, render_comparison, Comparison, MatchKind, PhaseDelta};
pub use config::AnalysisConfig;
pub use driver::{run_study, StudyOutput};
pub use eval::{match_models_to_templates, rate_profile_error, score_boundaries, BoundaryScore};
pub use metrics::{Bottleneck, PhaseMetrics};
pub use phase::{ClusterPhaseModel, Phase};
pub use pipeline::{analyze_trace, try_analyze_trace, Analysis};
pub use pool::TaskPanic;
pub use online::OnlineAnalyzer;
pub use signal::{activity_signal, detect_trace_period, ActivitySignal, TracePeriod};
pub use srcmap::SourceAttribution;
pub use unfold::{reconstruct, RankReconstruction, ReconSegment};

// The fault taxonomy lives in the dependency-free base crate so every
// stage can speak it; re-exported here as `phasefold::fault` because the
// pipeline is where policies are applied.
pub use phasefold_model::fault;
pub use phasefold_model::{Fault, FaultKind, FaultPolicy, FaultReport, Severity};

// Re-export the substrate crates so downstream users need a single
// dependency.
pub use phasefold_cluster as cluster;
pub use phasefold_folding as folding;
pub use phasefold_model as model;
pub use phasefold_regress as regress;
pub use phasefold_simapp as simapp;
pub use phasefold_tracer as tracer;
