//! Minimal HTTP/1.1 — exactly the subset the daemon needs, parsed
//! incrementally.
//!
//! Request side: [`RequestParser`] is a restartable state machine fed
//! from a connection's read buffer; it consumes whatever bytes are
//! available and either yields a complete [`Request`], asks for more
//! input, or reports a typed [`HttpError`]. It enforces a hard byte cap
//! on the request line + headers (oversized or hostile headers cannot
//! balloon memory) and accepts bodies sent either with `Content-Length`
//! or `Transfer-Encoding: chunked` — the latter is what streaming trace
//! ingestion uses, one chunk per batch of PRV record lines. Body memory
//! is committed as bytes actually arrive, never up-front from a
//! client-claimed length.
//!
//! Response side: status line + headers + `Content-Length` body (the
//! server never chunk-encodes responses), rendered to bytes with
//! [`render_response`] for the event loop's write buffers or written
//! directly with [`write_response`] on the blocking shed path.
//!
//! Every defect is a typed [`HttpError`] that maps onto a 4xx status;
//! the event loop answers what it can attribute a status to, then closes
//! the connection, so one bad client write never takes the daemon down.

use std::io::Write;
use std::net::TcpStream;
use std::time::Instant;

/// Hard cap on the summed bytes of the request line + all header lines.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Hard cap on a single request body (64 MiB — a large trace is ~10 MiB).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// What went wrong while reading a request, mapped to a response status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or chunk framing → 400.
    BadRequest(String),
    /// Request line + headers exceeded [`MAX_HEADER_BYTES`] → 431.
    HeadersTooLarge,
    /// Body exceeded the configured cap → 413.
    BodyTooLarge,
    /// The peer stalled mid-request past the read deadline → 408.
    Timeout,
    /// The peer closed the connection before or mid-request; nothing to
    /// answer.
    Closed,
    /// Any other transport failure; nothing to answer.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code a still-writable connection should answer with
    /// (`None` when the peer is gone).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large")),
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::Closed | HttpError::Io(_) => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        match e.kind() {
            // A read timeout surfaces as WouldBlock (unix) or TimedOut.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe => HttpError::Closed,
            _ => HttpError::Io(e),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path without the query string, e.g. `/v1/streams/abc/records`.
    pub path: String,
    /// Raw query string (text after `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The (already de-chunked) body.
    pub body: Vec<u8>,
    /// Wall time spent receiving headers + body, measured from right
    /// after the request line arrived. Excludes keep-alive idle wait
    /// (the clock starts once the peer is actively sending), so it can
    /// be folded into per-request latency without charging the server
    /// for client think time.
    pub read_ns: u64,
}

impl Request {
    /// First value of a (lower-case) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of one `key=value` pair in the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Per-line byte cap for chunk-size lines (a hex length never needs
/// more).
const CHUNK_SIZE_LINE_BUDGET: usize = 256;

/// Per-line byte cap for discarded trailer lines.
const TRAILER_LINE_BUDGET: usize = 1024;

#[derive(Debug, Clone, Copy)]
enum ParseState {
    RequestLine,
    Headers,
    FixedBody { remaining: usize },
    ChunkSize,
    ChunkData { remaining: usize },
    ChunkCrlf,
    Trailers,
}

/// Incremental request parser: feed it bytes as they arrive, get back
/// complete requests. One parser per connection; it resets itself after
/// each completed request, so keep-alive pipelining falls out naturally.
#[derive(Debug)]
pub struct RequestParser {
    max_body: usize,
    state: ParseState,
    /// Partial line being accumulated (request line, header, chunk size,
    /// or trailer, depending on `state`).
    line: Vec<u8>,
    /// Remaining byte budget for the current line discipline: the shared
    /// request-line + header cap, or the per-line chunk/trailer caps.
    budget: usize,
    /// Whether any byte of the current request has been consumed —
    /// distinguishes an idle keep-alive connection from one mid-request.
    started: bool,
    /// Started when the request line completes; see [`Request::read_ns`].
    t_read: Option<Instant>,
    method: String,
    path: String,
    query: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl RequestParser {
    /// A fresh parser enforcing the given body cap.
    pub fn new(max_body: usize) -> RequestParser {
        RequestParser {
            max_body,
            state: ParseState::RequestLine,
            line: Vec::new(),
            budget: MAX_HEADER_BYTES,
            started: false,
            t_read: None,
            method: String::new(),
            path: String::new(),
            query: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Whether the parser has consumed any byte of an in-progress
    /// request. False between requests (idle keep-alive).
    pub fn started(&self) -> bool {
        self.started
    }

    /// Consumes as much of `buf` as possible. Returns a complete request
    /// (leaving any pipelined leftover bytes in `buf`), `None` when more
    /// input is needed, or a framing error — after which the connection
    /// must be closed because byte boundaries are no longer trustworthy.
    pub fn feed(&mut self, buf: &mut Vec<u8>) -> Result<Option<Request>, HttpError> {
        let mut pos = 0usize;
        let result = self.step(buf, &mut pos);
        buf.drain(..pos);
        result
    }

    fn step(&mut self, buf: &[u8], pos: &mut usize) -> Result<Option<Request>, HttpError> {
        loop {
            match self.state {
                ParseState::RequestLine => {
                    let Some(line) = self.take_line(buf, pos)? else { return Ok(None) };
                    // The request line has arrived, so the peer is
                    // actively sending: time the rest of the receive.
                    self.t_read = Some(Instant::now());
                    let mut parts = line.split_whitespace();
                    let method = parts
                        .next()
                        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
                        .to_ascii_uppercase();
                    let target = parts
                        .next()
                        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
                    let version = parts
                        .next()
                        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
                    if !version.starts_with("HTTP/1.") {
                        return Err(HttpError::BadRequest(format!(
                            "unsupported version {version:?}"
                        )));
                    }
                    let (path, query) = match target.split_once('?') {
                        Some((p, q)) => (p.to_string(), q.to_string()),
                        None => (target.to_string(), String::new()),
                    };
                    self.method = method;
                    self.path = path;
                    self.query = query;
                    self.state = ParseState::Headers;
                }
                ParseState::Headers => {
                    let Some(line) = self.take_line(buf, pos)? else { return Ok(None) };
                    if !line.is_empty() {
                        let (name, value) = line.split_once(':').ok_or_else(|| {
                            HttpError::BadRequest(format!("malformed header {line:?}"))
                        })?;
                        self.headers
                            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                        continue;
                    }
                    // Blank line: headers done, decide the body framing.
                    let chunked = self
                        .header_value("transfer-encoding")
                        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
                    if chunked {
                        self.budget = CHUNK_SIZE_LINE_BUDGET;
                        self.state = ParseState::ChunkSize;
                    } else if let Some(len) = self.header_value("content-length") {
                        let len: usize = len.parse().map_err(|_| {
                            HttpError::BadRequest(format!("bad content-length {len:?}"))
                        })?;
                        if len > self.max_body {
                            return Err(HttpError::BodyTooLarge);
                        }
                        if len == 0 {
                            return self.complete();
                        }
                        self.state = ParseState::FixedBody { remaining: len };
                    } else {
                        return self.complete();
                    }
                }
                ParseState::FixedBody { remaining } => {
                    let take = remaining.min(buf.len() - *pos);
                    if take == 0 {
                        return Ok(None);
                    }
                    self.body.extend_from_slice(&buf[*pos..*pos + take]);
                    *pos += take;
                    if take == remaining {
                        return self.complete();
                    }
                    self.state = ParseState::FixedBody { remaining: remaining - take };
                }
                ParseState::ChunkSize => {
                    let Some(line) = self.take_line(buf, pos)? else { return Ok(None) };
                    let size_hex = line.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(size_hex, 16).map_err(|_| {
                        HttpError::BadRequest(format!("bad chunk size {line:?}"))
                    })?;
                    if size == 0 {
                        self.budget = TRAILER_LINE_BUDGET;
                        self.state = ParseState::Trailers;
                        continue;
                    }
                    if self.body.len() + size > self.max_body {
                        return Err(HttpError::BodyTooLarge);
                    }
                    self.state = ParseState::ChunkData { remaining: size };
                }
                ParseState::ChunkData { remaining } => {
                    let take = remaining.min(buf.len() - *pos);
                    if take == 0 {
                        return Ok(None);
                    }
                    self.body.extend_from_slice(&buf[*pos..*pos + take]);
                    *pos += take;
                    if take == remaining {
                        self.state = ParseState::ChunkCrlf;
                    } else {
                        self.state = ParseState::ChunkData { remaining: remaining - take };
                    }
                }
                ParseState::ChunkCrlf => {
                    if buf.len() - *pos < 2 {
                        return Ok(None);
                    }
                    let (a, b) = (buf[*pos], buf[*pos + 1]);
                    *pos += 2;
                    if (a, b) != (b'\r', b'\n') {
                        return Err(HttpError::BadRequest("missing CRLF after chunk".into()));
                    }
                    self.budget = CHUNK_SIZE_LINE_BUDGET;
                    self.state = ParseState::ChunkSize;
                }
                ParseState::Trailers => {
                    let Some(line) = self.take_line(buf, pos)? else { return Ok(None) };
                    if line.is_empty() {
                        return self.complete();
                    }
                    // Trailer discarded; each line gets a fresh cap.
                    self.budget = TRAILER_LINE_BUDGET;
                }
            }
        }
    }

    /// Accumulates one CRLF- (or bare-LF-) terminated line under the
    /// current byte budget. `None` = line incomplete, need more input.
    fn take_line(&mut self, buf: &[u8], pos: &mut usize) -> Result<Option<String>, HttpError> {
        while *pos < buf.len() {
            let byte = buf[*pos];
            *pos += 1;
            self.started = true;
            self.budget = self
                .budget
                .checked_sub(1)
                .ok_or(HttpError::HeadersTooLarge)?;
            if byte == b'\n' {
                if self.line.last() == Some(&b'\r') {
                    self.line.pop();
                }
                let line = std::mem::take(&mut self.line);
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| HttpError::BadRequest("non-UTF-8 header line".into()));
            }
            self.line.push(byte);
        }
        Ok(None)
    }

    fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn complete(&mut self) -> Result<Option<Request>, HttpError> {
        let read_ns = self
            .t_read
            .take()
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let req = Request {
            method: std::mem::take(&mut self.method),
            path: std::mem::take(&mut self.path),
            query: std::mem::take(&mut self.query),
            headers: std::mem::take(&mut self.headers),
            body: std::mem::take(&mut self.body),
            read_ns,
        };
        self.state = ParseState::RequestLine;
        self.budget = MAX_HEADER_BYTES;
        self.started = false;
        self.line.clear();
        Ok(Some(req))
    }
}

/// Renders one response with a `Content-Length` body to wire bytes for
/// an event-loop write buffer. `extra_headers` are appended verbatim.
pub fn render_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Writes one response directly to a (blocking) stream — used only on
/// the accept thread's over-capacity shed path, before a connection is
/// handed to a shard.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let owned: Vec<(String, String)> = extra_headers
        .iter()
        .map(|(n, v)| (n.to_string(), v.to_string()))
        .collect();
    let bytes = render_response(status, reason, content_type, &owned, body, keep_alive);
    stream.write_all(&bytes)?;
    stream.flush()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn feed_all(parser: &mut RequestParser, bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut buf = bytes.to_vec();
        parser.feed(&mut buf)
    }

    #[test]
    fn parses_a_simple_get() {
        let mut p = RequestParser::new(MAX_BODY_BYTES);
        let req = feed_all(&mut p, b"GET /healthz?x=1 HTTP/1.1\r\nHost: a\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("a"));
        assert!(req.body.is_empty());
        assert!(!p.started());
    }

    #[test]
    fn restarts_across_byte_at_a_time_input() {
        let raw = b"POST /v1/analyze HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        let mut p = RequestParser::new(MAX_BODY_BYTES);
        let mut buf = Vec::new();
        let mut got = None;
        for &b in raw.iter() {
            buf.push(b);
            if let Some(req) = p.feed(&mut buf).unwrap() {
                got = Some(req);
            }
        }
        let req = got.expect("request completes on final byte");
        assert_eq!(req.body, b"hello");
        assert!(buf.is_empty());
    }

    #[test]
    fn mid_request_state_is_visible() {
        let mut p = RequestParser::new(MAX_BODY_BYTES);
        assert!(!p.started());
        let mut buf = b"GET /he".to_vec();
        assert!(p.feed(&mut buf).unwrap().is_none());
        assert!(p.started());
    }

    #[test]
    fn decodes_chunked_bodies_with_extensions_and_trailers() {
        let raw = b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n\
                    5;ext=1\r\nhello\r\n6\r\n world\r\n0\r\nx-trailer: y\r\n\r\n";
        let mut p = RequestParser::new(MAX_BODY_BYTES);
        // Split at every boundary-ish offset to catch state bugs.
        for split in [1usize, 10, 30, 47, raw.len() - 1] {
            let mut buf = raw[..split].to_vec();
            assert!(p.feed(&mut buf).unwrap().is_none(), "early complete at {split}");
            buf.extend_from_slice(&raw[split..]);
            let req = p.feed(&mut buf).unwrap().expect("complete");
            assert_eq!(req.body, b"hello world");
        }
    }

    #[test]
    fn pipelined_requests_come_out_one_at_a_time() {
        let mut p = RequestParser::new(MAX_BODY_BYTES);
        let mut buf = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let first = p.feed(&mut buf).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let second = p.feed(&mut buf).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(buf.is_empty());
    }

    #[test]
    fn framing_defects_map_to_statuses() {
        let cases: [(&[u8], u16); 5] = [
            (b"POST /x HTTP/1.1\r\ncontent-length: notanumber\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n", 413),
            (b"GET /x HTTP/0.9\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nZZZ\r\n", 400),
        ];
        for (raw, want) in cases {
            let mut p = RequestParser::new(MAX_BODY_BYTES);
            let err = feed_all(&mut p, raw).expect_err("defect must error");
            let (status, _) = err.status().expect("answerable defect");
            assert_eq!(status, want, "case {:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn bad_chunk_crlf_is_rejected() {
        let raw = b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhelloXX";
        let mut p = RequestParser::new(MAX_BODY_BYTES);
        let err = feed_all(&mut p, raw).expect_err("bad CRLF");
        assert_eq!(err.status().map(|(s, _)| s), Some(400));
    }

    #[test]
    fn header_budget_is_enforced() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..64 {
            raw.extend_from_slice(format!("x-h-{i}: {}\r\n", "v".repeat(1000)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let mut p = RequestParser::new(MAX_BODY_BYTES);
        let err = feed_all(&mut p, &raw).expect_err("past the header cap");
        assert_eq!(err.status().map(|(s, _)| s), Some(431));
    }

    #[test]
    fn body_cap_applies_to_chunked_totals() {
        let raw = b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nffffffff\r\n";
        let mut p = RequestParser::new(1024);
        let err = feed_all(&mut p, raw).expect_err("oversized chunk");
        assert_eq!(err.status().map(|(s, _)| s), Some(413));
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let mut p = RequestParser::new(MAX_BODY_BYTES);
        let req = feed_all(&mut p, b"GET /lf HTTP/1.1\nhost: b\n\n").unwrap().unwrap();
        assert_eq!(req.path, "/lf");
        assert_eq!(req.header("host"), Some("b"));
    }

    #[test]
    fn render_response_matches_wire_format() {
        let bytes = render_response(200, "OK", "text/plain", &[], b"hi", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n\r\nhi"));
    }
}
