//! Binning of folded scatters onto a uniform grid.
//!
//! The DP breakpoint proposal works on binned data: folding can pool tens of
//! thousands of samples, and the O(B²·k) segmentation only needs a few
//! hundred well-averaged grid points to locate candidate breakpoints.

/// A scatter reduced to per-bin weighted means.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedSeries {
    /// Bin centres (x), ascending; only non-empty bins are kept.
    pub x: Vec<f64>,
    /// Weighted mean of y per bin.
    pub y: Vec<f64>,
    /// Total weight per bin (used as WLS weight downstream).
    pub weight: Vec<f64>,
}

impl BinnedSeries {
    /// Number of (non-empty) bins.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if no bin received any point.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Bins `(xs, ys)` with optional per-point weights into `n_bins` equal-width
/// bins over `[lo, hi]`. Points outside the range are clamped into the edge
/// bins. Empty bins are dropped.
pub fn bin_series(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
    n_bins: usize,
    lo: f64,
    hi: f64,
) -> BinnedSeries {
    assert_eq!(xs.len(), ys.len());
    assert!(n_bins > 0, "need at least one bin");
    assert!(hi > lo, "empty binning range");
    let width = (hi - lo) / n_bins as f64;
    let mut sum_w = vec![0.0f64; n_bins];
    let mut sum_wy = vec![0.0f64; n_bins];
    for (i, (&x, &y)) in xs.iter().zip(ys).enumerate() {
        let w = weights.map_or(1.0, |w| w[i]);
        if w <= 0.0 {
            continue;
        }
        let idx = (((x - lo) / width) as isize).clamp(0, n_bins as isize - 1) as usize;
        sum_w[idx] += w;
        sum_wy[idx] += w * y;
    }
    let mut out = BinnedSeries { x: Vec::new(), y: Vec::new(), weight: Vec::new() };
    for b in 0..n_bins {
        if sum_w[b] > 0.0 {
            out.x.push(lo + (b as f64 + 0.5) * width);
            out.y.push(sum_wy[b] / sum_w[b]);
            out.weight.push(sum_w[b]);
        }
    }
    out
}

/// Convenience: bins over the data's own x-range (falling back to `[0, 1]`
/// for an empty input).
pub fn bin_series_auto(xs: &[f64], ys: &[f64], n_bins: usize) -> BinnedSeries {
    let (lo, hi) = xs.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
        (l.min(x), h.max(x))
    });
    if !lo.is_finite() || hi <= lo {
        return bin_series(xs, ys, None, n_bins, 0.0, 1.0);
    }
    bin_series(xs, ys, None, n_bins, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_average_points() {
        let xs = [0.1, 0.15, 0.9];
        let ys = [1.0, 3.0, 10.0];
        let b = bin_series(&xs, &ys, None, 2, 0.0, 1.0);
        assert_eq!(b.len(), 2);
        assert!((b.x[0] - 0.25).abs() < 1e-12);
        assert!((b.y[0] - 2.0).abs() < 1e-12);
        assert_eq!(b.weight[0], 2.0);
        assert!((b.y[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn weights_are_respected() {
        let xs = [0.1, 0.2];
        let ys = [0.0, 10.0];
        let w = [3.0, 1.0];
        let b = bin_series(&xs, &ys, Some(&w), 1, 0.0, 1.0);
        assert!((b.y[0] - 2.5).abs() < 1e-12);
        assert_eq!(b.weight[0], 4.0);
    }

    #[test]
    fn zero_weight_points_ignored() {
        let b = bin_series(&[0.5], &[1.0], Some(&[0.0]), 4, 0.0, 1.0);
        assert!(b.is_empty());
    }

    #[test]
    fn out_of_range_points_clamp_to_edge_bins() {
        let b = bin_series(&[-5.0, 5.0], &[1.0, 2.0], None, 2, 0.0, 1.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.y, vec![1.0, 2.0]);
    }

    #[test]
    fn empty_bins_dropped() {
        let b = bin_series(&[0.05, 0.95], &[1.0, 2.0], None, 10, 0.0, 1.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn auto_range_handles_degenerate_input() {
        let b = bin_series_auto(&[], &[], 5);
        assert!(b.is_empty());
        let b = bin_series_auto(&[2.0, 2.0], &[1.0, 3.0], 5);
        // zero x-range -> falls back to [0,1], both points clamp into one bin
        assert_eq!(b.len(), 1);
        assert!((b.y[0] - 2.0).abs() < 1e-12);
    }
}
