//! Robustness: the analysis must degrade gracefully — never panic — on
//! degenerate or adversarial traces (no communication, samples only,
//! unbalanced markers, single burst, zero-duration artifacts).

use phasefold::{analyze_trace, AnalysisConfig};
use phasefold_model::{
    CallStack, CommKind, CounterKind, CounterSet, PartialCounterSet, RankId, Record, Sample,
    SourceRegistry, TimeNs, Trace,
};

fn counters(ins: f64) -> CounterSet {
    let mut c = CounterSet::ZERO;
    c[CounterKind::Instructions] = ins;
    c[CounterKind::Cycles] = ins * 2.0;
    c
}

fn sample(t: u64, ins: f64) -> Record {
    Record::Sample(Sample {
        time: TimeNs(t),
        counters: PartialCounterSet::from_full(&counters(ins)),
        callstack: CallStack::empty(),
    })
}

#[test]
fn empty_trace() {
    let trace = Trace::default();
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert_eq!(analysis.num_bursts, 0);
    assert!(analysis.models.is_empty());
}

#[test]
fn samples_only_no_communication() {
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    for i in 0..100u64 {
        stream.push(sample(i * 1_000_000, i as f64 * 1000.0)).unwrap();
    }
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    // No boundaries -> no bursts -> no models, but no panic either.
    assert_eq!(analysis.num_bursts, 0);
    assert!(analysis.models.is_empty());
}

#[test]
fn single_burst_is_not_enough_to_fold() {
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    stream
        .push(Record::CommExit { time: TimeNs(0), kind: CommKind::Wait, counters: counters(0.0) })
        .unwrap();
    stream.push(sample(500_000, 500.0)).unwrap();
    stream
        .push(Record::CommEnter {
            time: TimeNs(1_000_000),
            kind: CommKind::Wait,
            counters: counters(1000.0),
        })
        .unwrap();
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert_eq!(analysis.num_bursts, 1);
    assert!(analysis.models.is_empty());
}

#[test]
fn unbalanced_region_markers_are_tolerated() {
    let mut registry = SourceRegistry::new();
    let r0 = registry.intern("f", phasefold_model::RegionKind::Function, "f.c", 1);
    let mut trace = Trace::with_ranks(registry, 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    // Exit without enter, then enter without exit, wrapped around bursts.
    stream
        .push(Record::RegionExit { time: TimeNs(0), region: r0 })
        .unwrap();
    for i in 0..40u64 {
        let t0 = 1_000_000 * (2 * i + 1);
        let t1 = 1_000_000 * (2 * i + 2);
        stream
            .push(Record::CommExit {
                time: TimeNs(t0),
                kind: CommKind::Collective,
                counters: counters(i as f64 * 1000.0),
            })
            .unwrap();
        stream.push(sample(t0 + 500_000, i as f64 * 1000.0 + 500.0)).unwrap();
        stream
            .push(Record::CommEnter {
                time: TimeNs(t1),
                kind: CommKind::Collective,
                counters: counters((i + 1) as f64 * 1000.0),
            })
            .unwrap();
    }
    stream
        .push(Record::RegionEnter { time: TimeNs(200_000_000), region: r0 })
        .unwrap();
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    assert_eq!(analysis.num_bursts, 40);
    // Identical 1 ms bursts with linear counters: one cluster, one phase.
    assert_eq!(analysis.models.len(), 1);
    assert_eq!(analysis.models[0].phases.len(), 1);
}

#[test]
fn counters_frozen_at_boundaries_yield_no_model_but_no_panic() {
    // Bursts whose counter totals are all zero (e.g. counters unavailable).
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 1);
    let stream = trace.rank_mut(RankId(0)).unwrap();
    for i in 0..30u64 {
        let t0 = 1_000_000 * (2 * i);
        let t1 = 1_000_000 * (2 * i + 1);
        stream
            .push(Record::CommExit {
                time: TimeNs(t0),
                kind: CommKind::Collective,
                counters: CounterSet::ZERO,
            })
            .unwrap();
        stream
            .push(Record::Sample(Sample {
                time: TimeNs(t0 + 500_000),
                counters: PartialCounterSet::from_full(&CounterSet::ZERO),
                callstack: CallStack::empty(),
            }))
            .unwrap();
        stream
            .push(Record::CommEnter {
                time: TimeNs(t1),
                kind: CommKind::Collective,
                counters: CounterSet::ZERO,
            })
            .unwrap();
    }
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    // Zero totals mean no foldable points -> no models.
    assert!(analysis.models.is_empty());
    assert_eq!(analysis.num_bursts, 30);
}

#[test]
fn many_ranks_few_records_each() {
    let mut trace = Trace::with_ranks(SourceRegistry::new(), 64);
    for r in 0..64u32 {
        let stream = trace.rank_mut(RankId(r)).unwrap();
        stream
            .push(Record::CommExit {
                time: TimeNs(0),
                kind: CommKind::Collective,
                counters: counters(0.0),
            })
            .unwrap();
        stream.push(sample(500_000, 500.0)).unwrap();
        stream
            .push(Record::CommEnter {
                time: TimeNs(1_000_000),
                kind: CommKind::Collective,
                counters: counters(1000.0),
            })
            .unwrap();
    }
    let analysis = analyze_trace(&trace, &AnalysisConfig::default());
    // 64 identical bursts pooled across ranks fold fine.
    assert_eq!(analysis.num_bursts, 64);
    assert_eq!(analysis.models.len(), 1);
    assert_eq!(analysis.models[0].instances, 64);
}
