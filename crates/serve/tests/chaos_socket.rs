//! Chaos at the socket: hostile bytes, hostile timing, hostile framing.
//!
//! Reuses the `phasefold-chaos` corruptors for payload-level damage and
//! drives protocol-level damage (malformed HTTP, truncation, oversized
//! headers, early close, slow writers) over raw sockets. The liveness
//! invariant throughout: after every abuse the daemon still answers a
//! well-formed `/healthz`, and no streaming session leaks.

mod common;

use common::{boot, test_config, trace_text};
use phasefold_chaos::{corrupt_trace_text, ChaosConfig};
use phasefold_serve::{one_shot, ServeConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn assert_alive(addr: &str, context: &str) {
    let health = one_shot(addr, "GET", "/healthz", b"").unwrap_or_else(|e| {
        panic!("daemon dead after {context}: {e}");
    });
    assert_eq!(health.status, 200, "daemon unhealthy after {context}");
}

fn session_count(addr: &str) -> usize {
    let health = one_shot(addr, "GET", "/healthz", b"").expect("healthz");
    let text = health.text();
    text.lines()
        .find_map(|l| l.strip_prefix("\"sessions\": "))
        .and_then(|v| v.trim_end_matches(',').trim().parse().ok())
        .unwrap_or_else(|| panic!("healthz without sessions gauge: {text}"))
}

#[test]
fn corrupted_trace_bodies_never_kill_the_daemon() {
    let (handle, addr) = boot(test_config());
    let clean = trace_text(80, 1, 5);
    for seed in 0..8u64 {
        let (corrupted, stats) =
            corrupt_trace_text(&clean, &ChaosConfig::uniform(seed, 0.05 + seed as f64 * 0.05));
        let resp = one_shot(&addr, "POST", "/v1/analyze", corrupted.as_bytes())
            .expect("connection died on corrupt payload");
        assert!(
            resp.status == 200 || resp.status == 422 || resp.status == 503,
            "seed {seed} ({} corruptions): unexpected status {}",
            stats.total(),
            resp.status
        );
        assert_alive(&addr, &format!("corrupt payload seed {seed}"));
    }
    let stats = handle.shutdown();
    assert!(stats.clean, "drain was not clean: {stats:?}");
}

#[test]
fn corrupted_stream_chunks_quarantine_not_poison() {
    let (handle, addr) = boot(test_config());
    let clean = trace_text(120, 1, 6);
    let (corrupted, _) = corrupt_trace_text(&clean, &ChaosConfig::uniform(11, 0.10));

    let mut client =
        phasefold_serve::Client::connect(&addr, Duration::from_secs(30)).expect("connect");
    let push = client
        .request_chunked("POST", "/v1/streams/chaos-1/records", &[corrupted.as_bytes()])
        .expect("stream push died");
    assert_eq!(push.status, 200, "lenient session rejected batch: {}", push.text());

    // The snapshot endpoint still works on the partially-quarantined
    // session.
    let phases = client.request("GET", "/v1/streams/chaos-1/phases", &[], b"").expect("phases");
    assert_eq!(phases.status, 200);

    assert_eq!(session_count(&addr), 1);
    let del = client.request("DELETE", "/v1/streams/chaos-1", &[], b"").expect("delete");
    assert_eq!(del.status, 200);
    assert_eq!(session_count(&addr), 0, "session leaked after delete");
    handle.shutdown();
}

#[test]
fn malformed_http_is_answered_or_dropped_never_fatal() {
    let (handle, addr) = boot(test_config());
    let abuses: &[&[u8]] = &[
        b"\x00\x01\x02\x03garbage\r\n\r\n",
        b"GET\r\n\r\n",                           // no target
        b"FROB /v1/analyze HTTP/1.1\r\n\r\n",     // unknown method → 404 route
        b"GET / SPDY/99\r\n\r\n",                 // bad version
        b"POST /v1/analyze HTTP/1.1\r\ncontent-length: notanumber\r\n\r\n",
        b"POST /v1/analyze HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nZZZ\r\n",
        b"POST /v1/analyze HTTP/1.1\r\nno-colon-here\r\n\r\n",
        b"POST /v1/analyze HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n",
    ];
    for (i, abuse) in abuses.iter().enumerate() {
        let mut s = TcpStream::connect(&addr).expect("connect");
        let _ = s.write_all(abuse);
        let _ = s.flush();
        drop(s); // we do not care what (if anything) came back
        assert_alive(&addr, &format!("malformed request #{i}"));
    }
    handle.shutdown();
}

#[test]
fn oversized_headers_are_bounded() {
    let (handle, addr) = boot(test_config());
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.write_all(b"GET /healthz HTTP/1.1\r\n").expect("write");
    // Pour far more header bytes than the 16 KiB budget.
    let filler = format!("x-filler: {}\r\n", "a".repeat(1000));
    for _ in 0..64 {
        if s.write_all(filler.as_bytes()).is_err() {
            break; // server already cut us off — that is fine
        }
    }
    drop(s);
    assert_alive(&addr, "oversized headers");
    handle.shutdown();
}

#[test]
fn early_close_and_truncation_leak_nothing() {
    let (handle, addr) = boot(test_config());
    for i in 0..16 {
        let mut s = TcpStream::connect(&addr).expect("connect");
        // Truncate at a different point each round.
        let full = b"POST /v1/streams/leak/records HTTP/1.1\r\ncontent-length: 100\r\n\r\nR 0";
        let cut = (i * 7) % full.len();
        let _ = s.write_all(&full[..cut]);
        drop(s); // close mid-request
    }
    assert_alive(&addr, "early closes");
    // The truncated posts never reached routing, so no session appeared.
    assert_eq!(session_count(&addr), 0, "early-closed requests leaked sessions");
    let stats = handle.shutdown();
    assert!(stats.clean, "drain was not clean: {stats:?}");
}

#[test]
fn slow_writer_hits_the_read_timeout() {
    let config = ServeConfig {
        read_timeout: Duration::from_millis(300),
        ..test_config()
    };
    let (handle, addr) = boot(config);
    let started = std::time::Instant::now();
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.write_all(b"GET /healthz HTT").expect("write");
    // …then stall well past the read timeout.
    std::thread::sleep(Duration::from_millis(900));
    // Either the write fails (connection cut) or whatever comes back is
    // irrelevant; the invariant is that the daemon cut us off instead of
    // dedicating a thread to us forever, and stays healthy.
    let _ = s.write_all(b"P/1.1\r\n\r\n");
    drop(s);
    assert!(started.elapsed() >= Duration::from_millis(900));
    assert_alive(&addr, "slow writer");
    let stats = handle.shutdown();
    assert!(stats.clean, "drain was not clean: {stats:?}");
}
