//! Human-readable analysis reports: per-cluster phase tables with metrics,
//! source attribution and an ASCII profile sketch — the textual counterpart
//! of the paper's folded-profile figures.

use crate::metrics::Bottleneck;
use crate::phase::ClusterPhaseModel;
use crate::pipeline::Analysis;
use phasefold_model::{CounterKind, SourceRegistry};
use std::fmt::Write as _;

/// Renders the full analysis as a plain-text report.
pub fn render_report(analysis: &Analysis, registry: &SourceRegistry) -> String {
    let _sp = phasefold_obs::span!("report.render_report");
    let mut out = String::new();
    let _ = writeln!(out, "phasefold analysis report");
    let _ = writeln!(out, "=========================");
    let _ = writeln!(
        out,
        "bursts: {}   clusters: {}   spmd-score: {:.3}   noise: {}",
        analysis.num_bursts,
        analysis.clustering.num_clusters,
        analysis.clustering.spmd_score,
        analysis.clustering.labels.iter().filter(|l| l.is_none()).count(),
    );
    for model in &analysis.models {
        out.push('\n');
        render_model(&mut out, model, registry);
    }
    // Quarantined items, if any. Omitted entirely on clean runs so clean
    // reports stay byte-identical to pre-fault-report output.
    if !analysis.faults.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "fault report — {} quarantined item(s)", analysis.faults.len());
        out.push_str(&analysis.faults.render());
    }
    out
}

/// Renders one cluster's phase model.
pub fn render_model(out: &mut String, model: &ClusterPhaseModel, registry: &SourceRegistry) {
    let _ = writeln!(
        out,
        "cluster {} — {} instances ({} pruned), {} folded samples, mean burst {:.3} ms, total {:.3} s, fit R² {:.4}",
        model.cluster,
        model.instances,
        model.instances_pruned,
        model.folded_samples,
        model.mean_duration_s * 1e3,
        model.total_time_s(),
        model.r2(),
    );
    let _ = writeln!(out, "{}", sparkline(model, 60));
    if let Some(boot) = &model.bootstrap {
        let bps: Vec<String> = model
            .breakpoints()
            .iter()
            .zip(&boot.breakpoints)
            .map(|(bp, ci)| format!("{:.1}% [{:.1}, {:.1}]", bp * 100.0, ci.lo * 100.0, ci.hi * 100.0))
            .collect();
        let _ = writeln!(
            out,
            "  breakpoints (95% CI): {}   order stability: {:.0}% over {} replicates",
            if bps.is_empty() { "none".to_string() } else { bps.join(", ") },
            boot.order_stability * 100.0,
            boot.replicates,
        );
    }
    let _ = writeln!(
        out,
        "  {:<5} {:>13} {:>9} {:>8} {:>7} {:>8} {:>8} {:>8} {:>7}  {:<12} source",
        "phase", "span", "dur", "MIPS", "IPC", "L1MPKI", "L2MPKI", "L3MPKI", "BRmiss", "bottleneck",
    );
    for phase in &model.phases {
        let m = &phase.metrics;
        let mut source = phase
            .source
            .as_ref()
            .map(|s| format!("{} ({:.0}%)", s.render(registry), s.confidence * 100.0))
            .unwrap_or_else(|| "-".to_string());
        // A merged phase covers several kernels: name the runner-up too.
        if let Some((region, share)) = phase.source_histogram.get(1) {
            if *share >= 0.15 {
                source.push_str(&format!(" +{} ({:.0}%)", registry.name(*region), share * 100.0));
            }
        }
        let _ = writeln!(
            out,
            "  {:<5} {:>5.1}%-{:>5.1}% {:>7.3}ms {:>8.0} {:>7.2} {:>8.2} {:>8.2} {:>8.2} {:>6.1}%  {:<12} {}",
            phase.index,
            phase.x0 * 100.0,
            phase.x1 * 100.0,
            phase.duration_s * 1e3,
            m.mips,
            m.ipc,
            m.l1_mpki,
            m.l2_mpki,
            m.l3_mpki,
            m.branch_misp_ratio * 100.0,
            m.bottleneck().to_string(),
            source,
        );
    }
}

/// An ASCII sketch of the instruction-rate step function over the burst.
pub fn sparkline(model: &ClusterPhaseModel, width: usize) -> String {
    const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max_rate = model
        .phases
        .iter()
        .map(|p| p.rates[CounterKind::Instructions])
        .fold(0.0f64, f64::max);
    if max_rate <= 0.0 || width == 0 {
        return String::new();
    }
    let mut s = String::with_capacity(width * 3 + 8);
    s.push_str("  MIPS ");
    for i in 0..width {
        let x = (i as f64 + 0.5) / width as f64;
        let rate = model.rate_at(CounterKind::Instructions, x);
        let level = ((rate / max_rate) * (LEVELS.len() - 1) as f64).round() as usize;
        s.push(LEVELS[level.min(LEVELS.len() - 1)]);
    }
    s
}

/// Renders the analysis as GitHub-flavoured markdown (for reports, PRs and
/// experiment write-ups).
pub fn render_markdown(analysis: &Analysis, registry: &SourceRegistry) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# phasefold analysis\n");
    let _ = writeln!(
        out,
        "{} bursts, {} clusters, SPMD score {:.3}\n",
        analysis.num_bursts, analysis.clustering.num_clusters, analysis.clustering.spmd_score
    );
    for model in &analysis.models {
        let _ = writeln!(
            out,
            "## Cluster {} — {} instances, mean burst {:.3} ms, total {:.3} s, R² {:.4}\n",
            model.cluster,
            model.instances,
            model.mean_duration_s * 1e3,
            model.total_time_s(),
            model.r2()
        );
        let _ = writeln!(
            out,
            "| phase | span | duration | MIPS | IPC | L2 MPKI | L3 MPKI | bottleneck | source |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
        for p in &model.phases {
            let m = &p.metrics;
            let source = p
                .source
                .as_ref()
                .map(|s| s.render(registry))
                .unwrap_or_else(|| "—".into());
            let _ = writeln!(
                out,
                "| {} | {:.1}%–{:.1}% | {:.3} ms | {:.0} | {:.2} | {:.2} | {:.2} | {} | {} |",
                p.index,
                p.x0 * 100.0,
                p.x1 * 100.0,
                p.duration_s * 1e3,
                m.mips,
                m.ipc,
                m.l2_mpki,
                m.l3_mpki,
                m.bottleneck(),
                source,
            );
        }
        out.push('\n');
    }
    if !analysis.faults.is_empty() {
        let _ = writeln!(out, "## Fault report\n");
        for fault in &analysis.faults.faults {
            let _ = writeln!(out, "- {fault}");
        }
        out.push('\n');
    }
    out
}

/// Renders a whole-run MIPS timeline from a reconstruction — the ASCII
/// cousin of the Paraver view the original tool-chain re-injects its
/// models into. Each column is one time slice; height encodes the
/// reconstructed instantaneous instruction rate (`·` marks communication
/// or unmodelled gaps).
pub fn render_timeline(
    recon: &crate::unfold::RankReconstruction,
    horizon: phasefold_model::TimeNs,
    width: usize,
) -> String {
    const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if width == 0 || horizon.0 == 0 {
        return String::new();
    }
    let rates: Vec<f64> = (0..width)
        .map(|i| {
            let t = phasefold_model::TimeNs(
                (horizon.0 as f64 * (i as f64 + 0.5) / width as f64) as u64,
            );
            recon.rate_at(CounterKind::Instructions, t)
        })
        .collect();
    let max = rates.iter().cloned().fold(0.0f64, f64::max);
    let mut out = String::with_capacity(width * 3 + 8);
    out.push_str("  MIPS ");
    for r in rates {
        if r <= 0.0 {
            out.push('·');
        } else {
            let level = ((r / max) * (LEVELS.len() - 1) as f64).round() as usize;
            out.push(LEVELS[level.min(LEVELS.len() - 1)]);
        }
    }
    out
}

/// Identifies the most promising optimisation target: the phase with the
/// largest `total time × inefficiency` product, with a one-line hint.
pub fn suggest_optimization(analysis: &Analysis, registry: &SourceRegistry) -> Option<String> {
    let mut best: Option<(f64, String)> = None;
    for model in &analysis.models {
        for phase in &model.phases {
            let time_share = phase.duration_s * model.instances as f64;
            let b = phase.metrics.bottleneck();
            let inefficiency = match b {
                Bottleneck::ComputeBound => 0.1,
                Bottleneck::FrontendBound => 0.5,
                Bottleneck::CacheBound => 0.8,
                Bottleneck::BranchBound => 0.7,
                Bottleneck::MemoryBound => 1.0,
            };
            let score = time_share * inefficiency;
            let hint = match b {
                Bottleneck::MemoryBound => "reduce working set or add blocking/tiling",
                Bottleneck::CacheBound => "improve locality (blocking, layout, fusion)",
                Bottleneck::BranchBound => "simplify control flow / sort data to help the predictor",
                Bottleneck::FrontendBound => "increase ILP (unroll, vectorise, break dependencies)",
                Bottleneck::ComputeBound => "already efficient; consider algorithmic changes",
            };
            let place = phase
                .source
                .as_ref()
                .map(|s| s.render(registry))
                .unwrap_or_else(|| format!("cluster {} phase {}", model.cluster, phase.index));
            let msg = format!(
                "{place}: {b}, {:.1}% of cluster time — {hint}",
                100.0 * phase.span_fraction()
            );
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, msg));
            }
        }
    }
    best.map(|(_, msg)| msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::pipeline::analyze_trace;
    use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
    use phasefold_simapp::{simulate, SimConfig};
    use phasefold_tracer::{trace_run, TracerConfig};

    fn analysis() -> (Analysis, SourceRegistry) {
        let program = build(&SyntheticParams { iterations: 300, ..SyntheticParams::default() });
        let out = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        (analyze_trace(&trace, &AnalysisConfig::default()), program.registry)
    }

    #[test]
    fn report_contains_key_sections() {
        let (a, registry) = analysis();
        let report = render_report(&a, &registry);
        assert!(report.contains("phasefold analysis report"));
        assert!(report.contains("cluster 0"));
        assert!(report.contains("MIPS"));
        assert!(report.contains("bottleneck"));
        // Source attribution shows the synthetic kernel names.
        assert!(report.contains("phase0"), "report:\n{report}");
        assert!(report.contains("synthetic.c"));
    }

    #[test]
    fn sparkline_reflects_contrast() {
        let (a, _) = analysis();
        let model = a.dominant_model().unwrap();
        let line = sparkline(model, 40);
        // High-IPC phase renders full blocks, low-IPC phase low blocks.
        assert!(line.contains('█'));
        assert!(line.contains('▁') || line.contains('▂') || line.contains('▃'));
    }

    #[test]
    fn suggestion_points_somewhere() {
        let (a, registry) = analysis();
        let hint = suggest_optimization(&a, &registry).unwrap();
        assert!(hint.contains("—"), "{hint}");
    }

    #[test]
    fn markdown_report_is_well_formed() {
        let (a, registry) = analysis();
        let md = render_markdown(&a, &registry);
        assert!(md.starts_with("# phasefold analysis"));
        assert!(md.contains("## Cluster 0"));
        assert!(md.contains("| phase |"));
        // One table row per phase (header rows contain "phase |",
        // separator rows start with "|---").
        let rows = md.lines().filter(|l| l.starts_with("| ") && !l.contains("phase |")).count();
        let total_phases: usize = a.models.iter().map(|m| m.phases.len()).sum();
        assert_eq!(rows, total_phases);
    }

    #[test]
    fn timeline_renders_activity_and_gaps() {
        let program = build(&SyntheticParams { iterations: 200, ..SyntheticParams::default() });
        let out = simulate(&program, &SimConfig { ranks: 2, ..SimConfig::default() });
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        let config = AnalysisConfig::default();
        let analysis = analyze_trace(&trace, &config);
        let recons = crate::unfold::reconstruct(&trace, &analysis, &config);
        let line = render_timeline(&recons[0], trace.end_time(), 80);
        assert!(line.starts_with("  MIPS "));
        // Activity glyphs present.
        assert!(line.contains('█') || line.contains('▆') || line.contains('▇'));
        // Gaps render as dots. Whether the prologue leaves a visible gap
        // depends on the noise stream, so assert on a horizon padded past
        // the end of the trace, where the gap is guaranteed.
        let padded = phasefold_model::TimeNs(trace.end_time().0 * 5 / 4);
        assert!(render_timeline(&recons[0], padded, 80).contains('·'));
        assert_eq!(render_timeline(&recons[0], trace.end_time(), 0), "");
    }

    #[test]
    fn empty_analysis_renders() {
        let a = Analysis {
            clustering: phasefold_cluster::Clustering {
                labels: vec![],
                num_clusters: 0,
                eps: 0.1,
                spmd_score: 1.0,
            },
            num_bursts: 0,
            models: vec![],
            faults: phasefold_model::FaultReport::new(),
        };
        let report = render_report(&a, &SourceRegistry::new());
        assert!(report.contains("bursts: 0"));
        assert!(!report.contains("fault report"), "clean runs carry no fault section");
        assert!(suggest_optimization(&a, &SourceRegistry::new()).is_none());
    }

    #[test]
    fn fault_report_section_renders_when_populated() {
        use phasefold_model::{Fault, FaultKind};
        let mut a = Analysis {
            clustering: phasefold_cluster::Clustering {
                labels: vec![],
                num_clusters: 0,
                eps: 0.1,
                spmd_score: 1.0,
            },
            num_bursts: 0,
            models: vec![],
            faults: phasefold_model::FaultReport::new(),
        };
        a.faults.push(
            Fault::new(FaultKind::NanSamples, "poisoned counter")
                .in_cluster(2)
                .on_counter(CounterKind::Cycles),
        );
        let report = render_report(&a, &SourceRegistry::new());
        assert!(report.contains("fault report — 1 quarantined item(s)"), "{report}");
        assert!(report.contains("nan-samples"), "{report}");
        assert!(report.contains("counter=CYC cluster=2"), "{report}");
        let md = render_markdown(&a, &SourceRegistry::new());
        assert!(md.contains("## Fault report"), "{md}");
        assert!(md.contains("nan-samples"), "{md}");
    }
}
