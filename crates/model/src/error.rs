//! Error types for trace construction and (de)serialisation.

use crate::time::TimeNs;
use std::fmt;

/// Errors raised by the trace model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A record was pushed with a timestamp earlier than its predecessor.
    OutOfOrder {
        /// Offending record's timestamp.
        at: TimeNs,
        /// Timestamp of the previous record.
        previous: TimeNs,
    },
    /// The `.prv`-like input could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A record referenced a rank that the header did not declare.
    UnknownRank(u32),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::OutOfOrder { at, previous } => {
                write!(f, "record at {at} is earlier than previous record at {previous}")
            }
            ModelError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            ModelError::UnknownRank(r) => write!(f, "record references undeclared rank {r}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::OutOfOrder { at: TimeNs(1), previous: TimeNs(2) };
        assert!(e.to_string().contains("earlier"));
        let e = ModelError::Parse { line: 3, message: "bad field".into() };
        assert!(e.to_string().contains("line 3"));
        let e = ModelError::UnknownRank(9);
        assert!(e.to_string().contains('9'));
    }
}
