//! Multi-thread stress and property tests for the lock-free histograms.

use phasefold_obs::hist::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS,
};
use proptest::prelude::*;

/// N writer threads hammer one histogram; `_count` and `_sum` must be
/// exact and the cumulative bucket series monotone, because every store is
/// a fetch_add (nothing is sampled or dropped).
#[test]
fn concurrent_writers_lose_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                // Deterministic per-thread value stream spanning many octaves.
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..PER_THREAD {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    h.record(x >> (x % 50));
                }
            });
        }
    });
    let snap = h.snapshot("stress");
    assert_eq!(snap.count, THREADS * PER_THREAD);

    // Recompute the exact sum and per-bucket counts sequentially.
    let mut want_sum = 0u64;
    let mut want_buckets = vec![0u64; NUM_BUCKETS];
    for t in 0..THREADS {
        let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..PER_THREAD {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let v = x >> (x % 50);
            want_sum = want_sum.wrapping_add(v);
            want_buckets[bucket_index(v)] += 1;
        }
    }
    assert_eq!(snap.sum, want_sum, "sum must be exact under concurrency");
    for &(idx, c) in &snap.buckets {
        assert_eq!(c, want_buckets[idx], "bucket {idx}");
    }
    // Bucket counts account for every observation.
    assert_eq!(snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(), snap.count);
    // Cumulative series is monotone non-decreasing by construction; verify
    // the snapshot ordering that the Prometheus exporter relies on.
    let mut prev_idx = None;
    for &(idx, _) in &snap.buckets {
        assert!(prev_idx.is_none_or(|p| idx > p), "bucket indices must ascend");
        prev_idx = Some(idx);
    }
}

/// The registry path (histogram! → named histogram) is exact too.
#[test]
fn registry_histogram_is_exact_across_threads() {
    phasefold_obs::set_enabled(true);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for v in 1..=1000u64 {
                    phasefold_obs::histogram!("test.stress.registry", v);
                }
            });
        }
    });
    phasefold_obs::set_enabled(false);
    let snap = phasefold_obs::hist::hist_value("test.stress.registry").expect("registered");
    assert_eq!(snap.count, 4000);
    assert_eq!(snap.sum, 4 * 500_500);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_value(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}]");
    }

    /// Power-of-two boundary values (the bucketing edge cases): the index
    /// is monotone across v-1, v, v+1 and bounds always invert.
    #[test]
    fn boundaries_are_monotone(shift in 1u32..63) {
        let v = 1u64 << shift;
        for w in [v - 1, v, v + 1] {
            let idx = bucket_index(w);
            let (lo, hi) = bucket_bounds(idx);
            prop_assert!(lo <= w && w <= hi);
        }
        prop_assert!(bucket_index(v - 1) <= bucket_index(v));
        prop_assert!(bucket_index(v) <= bucket_index(v + 1));
    }

    /// Quantiles of a recorded sample stay within the documented relative
    /// error (half a sub-bucket ≈ 12.5%, plus integer rounding on tiny
    /// values).
    #[test]
    fn quantile_error_is_bounded(base in 1u64..1_000_000, n in 10usize..200) {
        let h = Histogram::new();
        for i in 0..n as u64 {
            h.record(base + i);
        }
        let snap: HistogramSnapshot = h.snapshot("q");
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = base + rank as u64 - 1;
            let est = snap.quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(err <= 0.125 + 1.0 / exact as f64,
                "q={q} est={est} exact={exact} err={err}");
        }
    }
}
