//! End-to-end integration: simulate → trace → analyse each workload
//! archetype, checking the analysis output against the simulator's ground
//! truth.

use phasefold::{match_models_to_templates, rate_profile_error, score_boundaries, AnalysisConfig};
use phasefold_model::CounterKind;
use phasefold_simapp::workloads::{cg, md, stencil};
use phasefold_simapp::{Program, SimConfig};
use phasefold_tracer::TracerConfig;

fn study(program: &Program, ranks: usize) -> phasefold::StudyOutput {
    phasefold::run_study(
        program,
        &SimConfig { ranks, ..SimConfig::default() },
        &TracerConfig::default(),
        &AnalysisConfig::default(),
    )
}

#[test]
fn cg_phases_are_detected_and_attributed() {
    let program = cg::build(&cg::CgParams::default());
    let s = study(&program, 4);
    assert!(!s.analysis.models.is_empty());
    // The dominant cluster must split into more than one phase (spmv+dot or
    // axpy+axpy+dot bursts) with good fit quality.
    let model = s.analysis.dominant_model().unwrap();
    assert!(model.r2() > 0.95, "r2 = {}", model.r2());
    assert!(model.phases.len() >= 2, "{} phases", model.phases.len());
    // Attributions must name cg regions.
    let attributed = model.phases.iter().filter(|p| p.source.is_some()).count();
    assert!(attributed >= model.phases.len() / 2);
    for p in &model.phases {
        if let Some(src) = &p.source {
            let name = s.trace.registry.name(src.region).to_string();
            assert!(name.starts_with("cg_solve/"), "unexpected region {name}");
        }
    }
}

#[test]
fn stencil_boundaries_match_ground_truth() {
    let program = stencil::build(&stencil::StencilParams::default());
    let s = study(&program, 4);
    let pairs = match_models_to_templates(&s.analysis.models, &s.sim.ground_truth);
    assert!(!pairs.is_empty(), "no model/template match");
    let mut checked = 0;
    for (mi, ti) in pairs {
        let model = &s.analysis.models[mi];
        let template = &s.sim.ground_truth.templates[ti];
        if model.instances < 40 {
            continue; // poorly-sampled minority template
        }
        let score = score_boundaries(model.breakpoints(), &template.boundaries(), 0.06);
        assert!(
            score.recall >= 0.5,
            "template {ti}: recall {} (detected {:?} vs truth {:?})",
            score.recall,
            model.breakpoints(),
            template.boundaries()
        );
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn md_detects_both_burst_templates() {
    let program = md::build(&md::MdParams::default());
    let s = study(&program, 4);
    // Plain steps and rebuild steps have different shapes.
    assert!(
        s.analysis.clustering.num_clusters >= 2,
        "only {} clusters",
        s.analysis.clustering.num_clusters
    );
    assert!(s.analysis.clustering.spmd_score > 0.85);
}

#[test]
fn rate_profiles_are_accurate_for_dominant_cluster() {
    let program = cg::build(&cg::CgParams::default());
    let s = study(&program, 4);
    let pairs = match_models_to_templates(&s.analysis.models, &s.sim.ground_truth);
    let model0 = s.analysis.dominant_model().unwrap();
    let (mi, ti) = pairs
        .iter()
        .find(|(mi, _)| std::ptr::eq(&s.analysis.models[*mi], model0))
        .copied()
        .expect("dominant model matched to a template");
    let err = rate_profile_error(
        &s.analysis.models[mi],
        &s.sim.ground_truth.templates[ti],
        CounterKind::Instructions,
        256,
    );
    // The folding-accuracy claim: mean absolute difference below ~5 %
    // (allow 10 % here: the integration config uses default noise).
    assert!(err < 0.10, "instruction-rate profile error {err}");
}

#[test]
fn analysis_orders_models_by_total_time() {
    let program = md::build(&md::MdParams::default());
    let s = study(&program, 2);
    let times: Vec<f64> = s.analysis.models.iter().map(|m| m.total_time_s()).collect();
    for w in times.windows(2) {
        assert!(w[0] >= w[1], "{times:?}");
    }
}

#[test]
fn run_study_is_deterministic() {
    let program = stencil::build(&stencil::StencilParams::default());
    let a = study(&program, 2);
    let b = study(&program, 2);
    assert_eq!(a.trace.total_records(), b.trace.total_records());
    assert_eq!(a.analysis.models.len(), b.analysis.models.len());
    for (ma, mb) in a.analysis.models.iter().zip(&b.analysis.models) {
        assert_eq!(ma.breakpoints(), mb.breakpoints());
        assert_eq!(ma.instances, mb.instances);
    }
}
