//! **E12 (extension) — robustness to load imbalance**: systematic per-rank
//! speed differences must not corrupt structure detection or phase models;
//! the imbalance surfaces as collective waiting time instead.
//!
//! ```text
//! cargo run --release -p phasefold-bench --bin exp_imbalance
//! ```

use phasefold::{run_study, score_boundaries, AnalysisConfig};
use phasefold_bench::{banner, fmt, pct, write_results, Table};
use phasefold_simapp::workloads::synthetic::{build, true_boundaries, SyntheticParams};
use phasefold_simapp::{SegmentKind, SimConfig};
use phasefold_tracer::TracerConfig;

fn main() {
    banner(
        "E12",
        "phase detection under load imbalance",
        "per-rank speed spread → waiting in collectives, not broken phase models",
    );
    let mut table = Table::new(&[
        "speed_spread",
        "clusters",
        "spmd_score",
        "phases",
        "recall",
        "bp_MAE",
        "wait_share_fastest",
    ]);

    let params = SyntheticParams { iterations: 400, ..SyntheticParams::default() };
    let program = build(&params);
    let truth = true_boundaries(&params);

    for &spread in &[0.0, 0.1, 0.2, 0.4, 0.8] {
        let study = run_study(
            &program,
            &SimConfig { ranks: 8, rank_speed_spread: spread, ..SimConfig::default() },
            &TracerConfig::default(),
            &AnalysisConfig::default(),
        );
        // Waiting share of the fastest rank (rank 7 under positive spread).
        let tl = &study.sim.timelines[7];
        let mut comm = 0.0;
        let mut total = 0.0;
        for seg in tl.segments() {
            let d = seg.end.saturating_since(seg.start).as_secs_f64();
            total += d;
            if matches!(seg.kind, SegmentKind::Comm { .. }) {
                comm += d;
            }
        }
        let (phases, recall, mae) = match study.analysis.dominant_model() {
            Some(m) => {
                let s = score_boundaries(m.breakpoints(), &truth, 0.05);
                (m.phases.len(), s.recall, s.mean_abs_error)
            }
            None => (0, 0.0, f64::NAN),
        };
        table.row(vec![
            format!("{spread:.1}"),
            study.analysis.clustering.num_clusters.to_string(),
            fmt(study.analysis.clustering.spmd_score, 3),
            phases.to_string(),
            fmt(recall, 2),
            fmt(mae, 4),
            pct(comm / total.max(1e-12)),
        ]);
    }

    println!("{}", table.render_text());
    let path = write_results("e12_imbalance.csv", &table.render_csv());
    println!("csv written to {}", path.display());
    println!(
        "\nexpected shape: the waiting share of the fastest rank grows steadily\n\
         with the spread, while phase count, recall and breakpoint accuracy stay\n\
         essentially flat — imbalance lands in communication, where it belongs.\n\
         At extreme spreads the clustering legitimately splits per rank-speed\n\
         group (bursts *are* different lengths) and the SPMD score collapses —\n\
         the tool's designed signal that the execution is no longer SPMD-uniform."
    );
}
