//! Ground-truth timelines: continuous counter evolution with O(log n)
//! point queries.
//!
//! This is the signal the real machine would expose through its PMU: at any
//! instant `t`, the accumulated value of every counter, the current call
//! stack and the current source line. The tracer samples it; evaluation
//! experiments (E1) compare analysis output against it directly.

use crate::spmd::{ScheduledRank, TimedItem};
use phasefold_model::{CallStack, CommKind, CounterSet, RegionId, TimeNs};

/// What was running during a timeline segment.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentKind {
    /// A kernel: the region, its hot line and the full region stack.
    Compute {
        /// Kernel region.
        region: RegionId,
        /// Hot source line.
        line: u32,
        /// Region stack, outermost first.
        stack: Vec<RegionId>,
    },
    /// A communication operation (incl. waiting).
    Comm {
        /// Operation kind.
        kind: CommKind,
    },
    /// Idle gap (should not normally occur).
    Idle,
}

/// A half-open interval `[start, end)` of stationary behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Interval start.
    pub start: TimeNs,
    /// Interval end.
    pub end: TimeNs,
    /// Accumulated counters at `start`.
    pub base_counters: CounterSet,
    /// Counter deltas over the interval.
    pub delta: CounterSet,
    /// What ran.
    pub kind: SegmentKind,
}

impl Segment {
    /// Instantaneous counter rates (per second) during the segment.
    pub fn rates(&self) -> CounterSet {
        let dur = self.end.saturating_since(self.start).as_secs_f64();
        if dur <= 0.0 {
            CounterSet::ZERO
        } else {
            self.delta.scale(1.0 / dur)
        }
    }
}

/// One rank's queryable ground-truth timeline.
#[derive(Debug, Clone, Default)]
pub struct RankTimeline {
    segments: Vec<Segment>,
    /// Region enter/exit markers in time order (for the tracer).
    markers: Vec<(TimeNs, RegionId, bool)>, // (time, region, is_enter)
}

impl RankTimeline {
    /// Builds a timeline from a scheduled rank. Communication intervals
    /// accrue a small cycle count (spin-waiting) and nothing else.
    pub fn from_scheduled(rank: &ScheduledRank, clock_hz: f64) -> RankTimeline {
        let mut segments = Vec::new();
        let mut markers = Vec::new();
        let mut acc = CounterSet::ZERO;
        for item in &rank.items {
            match item {
                TimedItem::Enter { at, region } => markers.push((*at, *region, true)),
                TimedItem::Exit { at, region } => markers.push((*at, *region, false)),
                TimedItem::Compute { start, end, spec } => {
                    segments.push(Segment {
                        start: *start,
                        end: *end,
                        base_counters: acc,
                        delta: spec.counters,
                        kind: SegmentKind::Compute {
                            region: spec.region,
                            line: spec.line,
                            stack: spec.stack.clone(),
                        },
                    });
                    acc.add_assign(&spec.counters);
                }
                TimedItem::Comm { start, end, kind } => {
                    let dur = end.saturating_since(*start).as_secs_f64();
                    let mut delta = CounterSet::ZERO;
                    // Cycles keep ticking while spinning in the runtime.
                    delta[phasefold_model::CounterKind::Cycles] = dur * clock_hz;
                    // A trickle of runtime instructions (polling loop).
                    delta[phasefold_model::CounterKind::Instructions] = dur * clock_hz * 0.3;
                    delta[phasefold_model::CounterKind::Branches] = dur * clock_hz * 0.1;
                    segments.push(Segment {
                        start: *start,
                        end: *end,
                        base_counters: acc,
                        delta,
                        kind: SegmentKind::Comm { kind: *kind },
                    });
                    acc.add_assign(&delta);
                }
            }
        }
        RankTimeline { segments, markers }
    }

    /// The segments in time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Region markers in time order, `(time, region, is_enter)`.
    pub fn markers(&self) -> &[(TimeNs, RegionId, bool)] {
        &self.markers
    }

    /// End of the last segment (t = 0 for an empty timeline).
    pub fn end_time(&self) -> TimeNs {
        self.segments.last().map_or(TimeNs::ZERO, |s| s.end)
    }

    /// The segment covering `t`, if any.
    pub fn segment_at(&self, t: TimeNs) -> Option<&Segment> {
        if self.segments.is_empty() {
            return None;
        }
        let idx = self.segments.partition_point(|s| s.end <= t);
        self.segments.get(idx).filter(|s| s.start <= t)
    }

    /// Accumulated counters at time `t` (piece-wise linear interpolation —
    /// exactly what a PMU read at `t` would return).
    pub fn counters_at(&self, t: TimeNs) -> CounterSet {
        if self.segments.is_empty() {
            return CounterSet::ZERO;
        }
        let idx = self.segments.partition_point(|s| s.end <= t);
        if idx >= self.segments.len() {
            let last = self.segments.last().unwrap();
            return last.base_counters.add(&last.delta);
        }
        let seg = &self.segments[idx];
        if t <= seg.start {
            return seg.base_counters;
        }
        let frac = t.normalized_within(seg.start, seg.end);
        seg.base_counters.add(&seg.delta.scale(frac))
    }

    /// Call stack a sampling interrupt at `t` would capture. Communication
    /// and idle intervals return an empty stack (the PC is in the runtime).
    pub fn callstack_at(&self, t: TimeNs) -> CallStack {
        match self.segment_at(t).map(|s| &s.kind) {
            Some(SegmentKind::Compute { line, stack, .. }) => {
                CallStack::new(stack.clone(), *line)
            }
            _ => CallStack::empty(),
        }
    }

    /// Instantaneous rates at `t` (zero outside any segment).
    pub fn rates_at(&self, t: TimeNs) -> CounterSet {
        self.segment_at(t).map_or(CounterSet::ZERO, Segment::rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{unroll, ScriptItem};
    use crate::kernel::{CpuConfig, KernelProfile};
    use crate::noise::NoiseConfig;
    use crate::program::{Program, ProgramBuilder};
    use crate::spmd::{schedule, CommConfig};
    use phasefold_model::CounterKind;

    fn simple_timeline() -> RankTimeline {
        let p = two_kernel_program();
        let cpu = CpuConfig::default();
        let scripts = vec![unroll(&p, &cpu, NoiseConfig::NONE, 0)];
        let sched = schedule(&scripts, &CommConfig::default());
        RankTimeline::from_scheduled(&sched[0], cpu.clock_hz)
    }

    fn two_kernel_program() -> Program {
        let mut b = ProgramBuilder::new("two");
        let mut fast = KernelProfile::balanced();
        fast.working_set_bytes = 1024.0;
        let mut slow = KernelProfile::balanced();
        slow.working_set_bytes = 64.0 * 1024.0 * 1024.0;
        let k1 = b.kernel("fast", "two.c", 5, 20_000, fast);
        let k2 = b.kernel("slow", "two.c", 9, 20_000, slow);
        let c = b.comm(CommKind::Collective, 8.0);
        let lp = b.loop_block("it", "two.c", 3, 4, ProgramBuilder::seq(vec![k1, k2, c]));
        let main = b.function("main", "two.c", 1, lp);
        b.finish(main)
    }

    #[test]
    fn counters_are_monotone_along_time() {
        let tl = simple_timeline();
        let end = tl.end_time();
        let mut prev = CounterSet::ZERO;
        for i in 0..=50 {
            let t = TimeNs((end.0 as f64 * i as f64 / 50.0) as u64);
            let c = tl.counters_at(t);
            assert!(c.dominates(&prev, 1e-6), "t={t}");
            prev = c;
        }
    }

    #[test]
    fn counters_at_segment_boundaries_are_continuous() {
        let tl = simple_timeline();
        for seg in tl.segments() {
            let at_start = tl.counters_at(seg.start);
            let expect = seg.base_counters;
            for (k, v) in expect.iter() {
                assert!(
                    (at_start[k] - v).abs() <= 1e-6 * v.max(1.0),
                    "{k} at {:?}",
                    seg.start
                );
            }
        }
    }

    #[test]
    fn midpoint_interpolates_half_delta() {
        let tl = simple_timeline();
        let seg = &tl.segments()[0];
        let mid = TimeNs((seg.start.0 + seg.end.0) / 2);
        let c = tl.counters_at(mid);
        let expect = seg.base_counters.add(&seg.delta.scale(0.5));
        let k = CounterKind::Instructions;
        assert!((c[k] - expect[k]).abs() < 1e-3 * expect[k].max(1.0));
    }

    #[test]
    fn callstack_resolves_inside_compute_only() {
        let tl = simple_timeline();
        let compute_seg = tl
            .segments()
            .iter()
            .find(|s| matches!(s.kind, SegmentKind::Compute { .. }))
            .unwrap();
        let mid = TimeNs((compute_seg.start.0 + compute_seg.end.0) / 2);
        let cs = tl.callstack_at(mid);
        assert_eq!(cs.depth(), 3); // main > it > kernel
        let comm_seg = tl
            .segments()
            .iter()
            .find(|s| matches!(s.kind, SegmentKind::Comm { .. }))
            .unwrap();
        let mid = TimeNs((comm_seg.start.0 + comm_seg.end.0) / 2);
        assert!(tl.callstack_at(mid).is_empty());
    }

    #[test]
    fn rates_differ_between_fast_and_slow_kernels() {
        let tl = simple_timeline();
        let mut rates = Vec::new();
        for seg in tl.segments() {
            if let SegmentKind::Compute { .. } = seg.kind {
                rates.push(seg.rates()[CounterKind::Instructions]);
            }
        }
        // Alternating fast/slow kernels -> at least 2x rate contrast.
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 2.0 * min, "max={max} min={min}");
    }

    #[test]
    fn query_beyond_end_returns_totals() {
        let tl = simple_timeline();
        let total = tl.counters_at(TimeNs(u64::MAX));
        let sum: f64 = tl
            .segments()
            .iter()
            .map(|s| s.delta[CounterKind::Instructions])
            .sum();
        assert!((total[CounterKind::Instructions] - sum).abs() < 1e-3 * sum);
    }

    #[test]
    fn markers_match_script() {
        let p = two_kernel_program();
        let cpu = CpuConfig::default();
        let script = unroll(&p, &cpu, NoiseConfig::NONE, 0);
        let n_markers = script
            .iter()
            .filter(|i| matches!(i, ScriptItem::Enter(_) | ScriptItem::Exit(_)))
            .count();
        let sched = schedule(&[script], &CommConfig::default());
        let tl = RankTimeline::from_scheduled(&sched[0], cpu.clock_hz);
        assert_eq!(tl.markers().len(), n_markers);
    }

    #[test]
    fn empty_timeline_queries() {
        let tl = RankTimeline::default();
        assert_eq!(tl.counters_at(TimeNs(5)), CounterSet::ZERO);
        assert!(tl.segment_at(TimeNs(5)).is_none());
        assert_eq!(tl.end_time(), TimeNs::ZERO);
        assert!(tl.callstack_at(TimeNs(5)).is_empty());
    }
}
