//! Seeded structured generation of PRV traces and analysis configurations.
//!
//! The fuzzer does not mutate raw bytes: it generates a [`TraceSpec`] — a
//! structured description of ranks, burst templates, and per-burst sample
//! schedules — and deterministically renders it into a [`Trace`]. Working
//! in spec space keeps every generated trace *valid* (monotone times,
//! accumulating counters unless deliberately saturated), makes shrinking a
//! matter of deleting spec elements, and lets metamorphic checks rebuild
//! the same program under a time shift or scale exactly.

use phasefold::AnalysisConfig;
use phasefold_model::{
    CallStack, CommKind, CounterKind, CounterSet, FaultPolicy, PartialCounterSet, RankId, Record,
    Sample, SourceRegistry, TimeNs, Trace,
};
use rand::{Rng, SeedableRng};
use rand::rngs::StdRng;

/// The slice of [`AnalysisConfig`] the fuzzer varies, in a form that can be
/// round-tripped through a corpus-file header line.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseConfig {
    /// Minimum burst duration in microseconds.
    pub min_burst_us: u64,
    /// DBSCAN core threshold.
    pub min_pts: usize,
    /// Explicit ε (`None` = derive from the k-dist curve).
    pub eps: Option<f64>,
    /// MAD multiplier for outlier-instance pruning.
    pub mad_k: f64,
    /// Minimum surviving instances per folded cluster.
    pub min_instances: usize,
    /// Minimum folded points before fitting is attempted.
    pub min_folded_points: usize,
    /// Maximum PWLR segments.
    pub max_segments: usize,
    /// Strict fault policy (lenient otherwise).
    pub strict: bool,
}

impl Default for CaseConfig {
    fn default() -> CaseConfig {
        CaseConfig {
            min_burst_us: 10,
            min_pts: 4,
            eps: None,
            mad_k: 3.0,
            min_instances: 4,
            min_folded_points: 30,
            max_segments: 4,
            strict: false,
        }
    }
}

impl CaseConfig {
    /// Expands into a full [`AnalysisConfig`] (defaults elsewhere).
    pub fn to_analysis(&self) -> AnalysisConfig {
        let mut config = AnalysisConfig {
            min_burst_duration: phasefold_model::DurNs::from_micros(self.min_burst_us),
            ..AnalysisConfig::default()
        };
        config.cluster.min_pts = self.min_pts;
        config.cluster.eps = self.eps;
        config.fold.mad_k = self.mad_k;
        config.fold.min_instances = self.min_instances;
        config.min_folded_points = self.min_folded_points;
        config.pwlr.max_segments = self.max_segments;
        config.fault_policy = if self.strict { FaultPolicy::Strict } else { FaultPolicy::Lenient };
        config
    }

    /// Renders the corpus header form, e.g.
    /// `min_burst_us=10 min_pts=4 eps=auto mad_k=3 ...`.
    pub fn render(&self) -> String {
        format!(
            "min_burst_us={} min_pts={} eps={} mad_k={} min_instances={} min_folded_points={} max_segments={} policy={}",
            self.min_burst_us,
            self.min_pts,
            self.eps.map_or("auto".to_string(), |e| format!("{e:?}")),
            self.mad_k,
            self.min_instances,
            self.min_folded_points,
            self.max_segments,
            if self.strict { "strict" } else { "lenient" },
        )
    }

    /// Parses the [`CaseConfig::render`] form. Unknown keys are an error so
    /// a corpus file cannot silently lose a constraint to a typo.
    pub fn parse(line: &str) -> Result<CaseConfig, String> {
        let mut config = CaseConfig::default();
        for kv in line.split_whitespace() {
            let (key, value) = kv.split_once('=').ok_or_else(|| format!("bad key=value `{kv}`"))?;
            fn parsed<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
                value.parse().map_err(|_| format!("bad value for {key}: `{value}`"))
            }
            match key {
                "min_burst_us" => config.min_burst_us = parsed(key, value)?,
                "min_pts" => config.min_pts = parsed(key, value)?,
                "eps" => {
                    config.eps =
                        if value == "auto" { None } else { Some(parsed(key, value)?) }
                }
                "mad_k" => config.mad_k = parsed(key, value)?,
                "min_instances" => config.min_instances = parsed(key, value)?,
                "min_folded_points" => config.min_folded_points = parsed(key, value)?,
                "max_segments" => config.max_segments = parsed(key, value)?,
                "policy" => config.strict = value == "strict",
                _ => return Err(format!("unknown config key `{key}`")),
            }
        }
        Ok(config)
    }
}

/// One burst shape: per-segment instruction rates (equal-length segments —
/// the piece-wise linear structure the PWLR fit must recover) plus a
/// constant cycle rate.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstTemplate {
    /// Nominal duration in nanoseconds.
    pub dur_ns: u64,
    /// Instructions per nanosecond, one rate per equal-length segment.
    pub instr_rates: Vec<f64>,
    /// Cycles per nanosecond (constant across the burst).
    pub cycle_rate: f64,
}

/// One burst occurrence in a rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstInstance {
    /// Which [`TraceSpec::templates`] entry this instantiates.
    pub template: usize,
    /// Communication gap preceding the burst (ns).
    pub gap_ns: u64,
    /// Actual duration (template duration with jitter applied), ns.
    pub dur_ns: u64,
    /// Number of samples to fire inside the burst.
    pub samples: u32,
    /// Simulate a counter wrap: end-of-burst counters *below* the start.
    pub saturate: bool,
}

/// A structured trace description; rendering it is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Burst shapes shared by all ranks.
    pub templates: Vec<BurstTemplate>,
    /// Per-rank burst sequences.
    pub ranks: Vec<Vec<BurstInstance>>,
}

impl TraceSpec {
    /// Renders the spec into a [`Trace`], with every time first shifted by
    /// `offset_ns` and then multiplied by `scale` (both exact integer
    /// operations, which is what makes the shift/scale metamorphic checks
    /// bit-exact at the folding layer).
    pub fn build(&self, offset_ns: u64, scale: u64) -> Trace {
        let t = |ns: u64| TimeNs((ns + offset_ns) * scale);
        let mut trace = Trace::with_ranks(SourceRegistry::new(), self.ranks.len());
        for (r, instances) in self.ranks.iter().enumerate() {
            let stream = match trace.rank_mut(RankId(r as u32)) {
                Some(s) => s,
                None => continue,
            };
            let mut now: u64 = 1_000; // small lead-in before the first burst
            let mut counters = CounterSet::ZERO;
            for inst in instances {
                let template = &self.templates[inst.template % self.templates.len().max(1)];
                now += inst.gap_ns.max(1);
                // Burst start: communication ends here.
                let start = now;
                let start_counters = counters;
                let _ = stream.push(Record::CommExit {
                    time: t(start),
                    kind: CommKind::Collective,
                    counters: start_counters,
                });
                // Samples at evenly spaced interior offsets, with counter
                // readings integrated from the segment rates.
                for s in 0..inst.samples {
                    let frac = (s as u64 + 1) * inst.dur_ns / (inst.samples as u64 + 1);
                    let abs = integrate(template, inst.dur_ns, frac).add(&start_counters);
                    let mut partial = PartialCounterSet::EMPTY;
                    partial.set(CounterKind::Instructions, abs[CounterKind::Instructions]);
                    partial.set(CounterKind::Cycles, abs[CounterKind::Cycles]);
                    let _ = stream.push(Record::Sample(Sample {
                        time: t(start + frac),
                        counters: partial,
                        callstack: CallStack::empty(),
                    }));
                }
                now += inst.dur_ns.max(1);
                counters = if inst.saturate {
                    // Wrapped/saturated hardware counter: the end-of-burst
                    // reading falls *below* the start. The checked burst
                    // extractor must quarantine this instance.
                    start_counters.scale(0.5)
                } else {
                    integrate(template, inst.dur_ns, inst.dur_ns).add(&start_counters)
                };
                let _ = stream.push(Record::CommEnter {
                    time: t(now),
                    kind: CommKind::Collective,
                    counters,
                });
            }
            // Trailing communication exit so the last burst is closed but no
            // burst is left half-open at the end of the stream.
            let _ = stream.push(Record::CommExit {
                time: t(now + 500),
                kind: CommKind::Collective,
                counters,
            });
        }
        trace
    }

    /// Total bursts across all ranks (spec-level, before filtering).
    pub fn num_bursts(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }
}

/// Counter readings accumulated `at_ns` into a burst of length `dur_ns`
/// under the template's piece-wise constant rates.
fn integrate(template: &BurstTemplate, dur_ns: u64, at_ns: u64) -> CounterSet {
    let segments = template.instr_rates.len().max(1);
    let seg_len = (dur_ns / segments as u64).max(1);
    let mut instr = 0.0f64;
    let mut remaining = at_ns;
    for (i, &rate) in template.instr_rates.iter().enumerate() {
        let span = if i + 1 == segments { remaining } else { remaining.min(seg_len) };
        instr += rate * span as f64;
        remaining -= span;
        if remaining == 0 {
            break;
        }
    }
    let mut out = CounterSet::ZERO;
    out[CounterKind::Instructions] = instr;
    out[CounterKind::Cycles] = template.cycle_rate * at_ns as f64;
    out
}

/// A generated or loaded verification case: the trace plus its exact
/// canonical text and the configuration to analyze it under.
#[derive(Debug, Clone)]
pub struct Case {
    /// The trace under test.
    pub trace: Trace,
    /// Canonical PRV text of `trace` (what goes into a corpus file).
    pub text: String,
    /// Analysis configuration for this case.
    pub config: CaseConfig,
    /// The structured spec, when the case was generated (corpus-loaded
    /// cases have none; shrinking needs it).
    pub spec: Option<TraceSpec>,
}

impl Case {
    /// Builds a case from a spec at unit scale and zero offset.
    pub fn from_spec(spec: TraceSpec, config: CaseConfig) -> Case {
        let trace = spec.build(0, 1);
        let text = phasefold_model::prv::write_trace(&trace);
        Case { trace, text, config, spec: Some(spec) }
    }
}

/// Draws a random spec + config from `rng`. The domain deliberately mixes
/// clean SPMD structure (so clustering/folding/fitting all engage) with
/// edge shapes: zero-sample bursts, sub-threshold durations, saturated
/// counters, single-rank traces, and flat (zero-rate) counter plateaus.
pub fn random_spec(rng: &mut StdRng) -> (TraceSpec, CaseConfig) {
    let num_templates = rng.gen_range(1usize..4);
    let templates: Vec<BurstTemplate> = (0..num_templates)
        .map(|i| {
            let dur_ns = rng.gen_range(30_000u64..500_000) * (i as u64 + 1);
            let segments = rng.gen_range(1usize..4);
            let instr_rates: Vec<f64> = (0..segments)
                .map(|_| {
                    if rng.gen_bool(0.08) {
                        0.0 // plateau: a phase that retires nothing
                    } else {
                        rng.gen_range(0.5f64..8.0)
                    }
                })
                .collect();
            BurstTemplate { dur_ns, instr_rates, cycle_rate: rng.gen_range(1.0f64..4.0) }
        })
        .collect();

    let ranks = rng.gen_range(1usize..5);
    let iterations = rng.gen_range(5usize..28);
    let rank_specs: Vec<Vec<BurstInstance>> = (0..ranks)
        .map(|_| {
            (0..iterations)
                .flat_map(|i| {
                    let template = i % templates.len();
                    let base = templates[template].dur_ns;
                    // ±3% deterministic-jitter so durations cluster but are
                    // not identical (exercises the MAD pruning path).
                    let jitter = rng.gen_range(0u64..(base / 16).max(1));
                    let mut out = vec![BurstInstance {
                        template,
                        gap_ns: rng.gen_range(2_000u64..80_000),
                        dur_ns: base - base / 32 + jitter,
                        samples: rng.gen_range(0u32..18),
                        saturate: rng.gen_bool(0.02),
                    }];
                    if rng.gen_bool(0.05) {
                        // A sub-microsecond blip that the min-duration
                        // filter should drop.
                        out.push(BurstInstance {
                            template,
                            gap_ns: rng.gen_range(1_000u64..5_000),
                            dur_ns: rng.gen_range(1u64..900),
                            samples: 0,
                            saturate: false,
                        });
                    }
                    out
                })
                .collect()
        })
        .collect();

    let config = CaseConfig {
        min_burst_us: if rng.gen_bool(0.3) { 0 } else { 10 },
        min_pts: rng.gen_range(3usize..6),
        eps: if rng.gen_bool(0.3) { Some(rng.gen_range(0.05f64..0.3)) } else { None },
        mad_k: rng.gen_range(2.0f64..4.0),
        min_instances: if rng.gen_bool(0.3) { 2 } else { 4 },
        min_folded_points: if rng.gen_bool(0.3) { 10 } else { 30 },
        max_segments: rng.gen_range(3usize..6),
        strict: rng.gen_bool(0.15),
    };
    (TraceSpec { templates, ranks: rank_specs }, config)
}

/// Deterministic RNG for a seed, namespaced by check so independent draws
/// do not alias across checks that share a seed.
pub fn rng_for(seed: u64, namespace: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ namespace.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_and_roundtrips() {
        let mut rng = rng_for(7, 0);
        let (spec, config) = random_spec(&mut rng);
        let a = Case::from_spec(spec.clone(), config.clone());
        let b = Case::from_spec(spec, config);
        assert_eq!(a.text, b.text);
        let (parsed, faults) = phasefold_model::prv::parse_trace_lenient(&a.text).unwrap();
        assert!(faults.is_empty(), "generated trace must be clean: {faults:?}");
        assert_eq!(phasefold_model::prv::write_trace(&parsed), a.text);
    }

    #[test]
    fn config_header_roundtrips() {
        let mut rng = rng_for(11, 1);
        for _ in 0..50 {
            let (_, config) = random_spec(&mut rng);
            let parsed = CaseConfig::parse(&config.render()).unwrap();
            assert_eq!(parsed, config);
        }
        assert!(CaseConfig::parse("bogus_key=1").is_err());
    }

    #[test]
    fn saturate_flag_produces_a_counter_decrease() {
        let spec = TraceSpec {
            templates: vec![BurstTemplate {
                dur_ns: 50_000,
                instr_rates: vec![2.0],
                cycle_rate: 2.0,
            }],
            ranks: vec![vec![
                BurstInstance { template: 0, gap_ns: 5_000, dur_ns: 50_000, samples: 2, saturate: false },
                BurstInstance { template: 0, gap_ns: 5_000, dur_ns: 50_000, samples: 2, saturate: true },
            ]],
        };
        let trace = spec.build(0, 1);
        let mut faults = phasefold_model::fault::FaultReport::new();
        let bursts = phasefold_model::burst::extract_bursts_checked(
            &trace,
            phasefold_model::DurNs::ZERO,
            &mut faults,
        );
        assert_eq!(bursts.len(), 1);
        assert_eq!(faults.len(), 1);
    }
}
