//! Model-order selection: how many phases does the profile actually have?
//!
//! Adding a breakpoint never increases SSE, so the segment count must be
//! chosen by a penalised criterion. We follow standard segmented-regression
//! practice and count, for `k` breakpoints, `p = 2k + 2` parameters: the
//! intercept, `k + 1` slopes, and the `k` estimated breakpoint locations.

/// Which penalised criterion to minimise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionCriterion {
    /// Bayesian information criterion: `n·ln(SSE/n) + p·ln(n)`. The default;
    /// consistent (recovers the true order as folded samples accumulate).
    Bic,
    /// Akaike information criterion: `n·ln(SSE/n) + 2p`. Less conservative;
    /// tends to over-segment noisy profiles (ablated in experiment E10).
    Aic,
    /// No selection: always use exactly this many segments (the behaviour
    /// of a fixed-`k` tool; ablation baseline).
    FixedSegments(usize),
}

impl Default for SelectionCriterion {
    fn default() -> SelectionCriterion {
        SelectionCriterion::Bic
    }
}

/// Number of free parameters of a continuous PWL model with `k` breakpoints.
pub fn num_parameters(num_breakpoints: usize) -> usize {
    2 * num_breakpoints + 2
}

/// Criterion value for a fit with `num_breakpoints` on `n` points with the
/// given SSE. Lower is better. `FixedSegments` scores its chosen order at
/// `−∞` and everything else at `+∞`.
pub fn score(
    criterion: SelectionCriterion,
    n: usize,
    sse: f64,
    num_breakpoints: usize,
) -> f64 {
    let p = num_parameters(num_breakpoints) as f64;
    let nf = n.max(1) as f64;
    // Guard the log for (near-)perfect fits.
    let mse = (sse / nf).max(1e-300);
    match criterion {
        SelectionCriterion::Bic => nf * mse.ln() + p * nf.ln(),
        SelectionCriterion::Aic => nf * mse.ln() + 2.0 * p,
        SelectionCriterion::FixedSegments(m) => {
            if num_breakpoints + 1 == m {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count() {
        assert_eq!(num_parameters(0), 2);
        assert_eq!(num_parameters(3), 8);
    }

    #[test]
    fn bic_penalises_extra_breakpoints_at_equal_sse() {
        let s1 = score(SelectionCriterion::Bic, 100, 1.0, 1);
        let s2 = score(SelectionCriterion::Bic, 100, 1.0, 2);
        assert!(s1 < s2);
    }

    #[test]
    fn bic_rewards_large_sse_reduction() {
        let flat = score(SelectionCriterion::Bic, 100, 10.0, 0);
        let kinked = score(SelectionCriterion::Bic, 100, 0.1, 1);
        assert!(kinked < flat);
    }

    #[test]
    fn aic_penalty_is_weaker_than_bic_for_large_n() {
        // Same SSE, one extra breakpoint: BIC penalty 2·ln(n), AIC penalty 4.
        let n = 1000;
        let d_bic = score(SelectionCriterion::Bic, n, 1.0, 2)
            - score(SelectionCriterion::Bic, n, 1.0, 1);
        let d_aic = score(SelectionCriterion::Aic, n, 1.0, 2)
            - score(SelectionCriterion::Aic, n, 1.0, 1);
        assert!(d_aic < d_bic);
    }

    #[test]
    fn fixed_selects_only_its_order() {
        let c = SelectionCriterion::FixedSegments(3);
        assert_eq!(score(c, 10, 1.0, 2), f64::NEG_INFINITY);
        assert_eq!(score(c, 10, 1.0, 1), f64::INFINITY);
    }

    #[test]
    fn zero_sse_is_finite() {
        let s = score(SelectionCriterion::Bic, 50, 0.0, 1);
        assert!(s.is_finite());
    }
}
