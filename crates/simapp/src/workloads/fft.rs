//! Spectral (pseudo-FFT) archetype: compute-dense transform stages
//! separated by all-to-all transposes.
//!
//! The communication-heavy counterpart of the other workloads: two
//! high-IPC FFT stages per step with pack/unpack streaming phases around a
//! large collective transpose. Exercises the analysis on an application
//! whose time is *not* dominated by computation — the wait time lands in
//! the communication records, and the compute bursts stay cleanly phased.

use crate::kernel::KernelProfile;
use crate::program::{Program, ProgramBuilder};
use phasefold_model::CommKind;

/// Parameters of the FFT archetype.
#[derive(Debug, Clone, Copy)]
pub struct FftParams {
    /// Transform steps.
    pub steps: u64,
    /// Local grid points per rank.
    pub local_points: u64,
}

impl Default for FftParams {
    fn default() -> FftParams {
        FftParams { steps: 150, local_points: 64 * 1024 }
    }
}

fn fft_stage_profile(p: &FftParams) -> KernelProfile {
    // Radix butterflies: FP-dense, cache-blocked by construction.
    KernelProfile {
        instr_per_iter: 5.0 * (p.local_points as f64).log2(),
        frac_loads: 0.28,
        frac_stores: 0.14,
        frac_fp: 0.50,
        frac_branches: 0.03,
        branch_misp_rate: 0.002,
        base_ipc: 3.0,
        // The transform is tile-blocked: butterflies touch L1-resident
        // tiles, streaming each point once per pass.
        working_set_bytes: 24.0 * 1024.0,
        streamed_bytes_per_iter: 16.0,
        locality: 0.92,
    }
}

fn pack_profile(_p: &FftParams) -> KernelProfile {
    KernelProfile {
        instr_per_iter: 6.0,
        frac_loads: 0.40,
        frac_stores: 0.30,
        frac_fp: 0.0,
        frac_branches: 0.04,
        branch_misp_rate: 0.002,
        base_ipc: 2.6,
        working_set_bytes: 1e6,
        streamed_bytes_per_iter: 32.0,
        locality: 0.7, // strided gather into send buffers
    }
}

/// Builds the FFT program.
pub fn build(p: &FftParams) -> Program {
    let mut b = ProgramBuilder::new("fft");
    let n = p.local_points;
    let transpose_bytes = p.local_points as f64 * 32.0;

    let fft1 = b.kernel("step/fft_x", "fft.c", 510, n, fft_stage_profile(p));
    let pack = b.kernel("step/pack", "fft.c", 540, n, pack_profile(p));
    let transpose = b.comm(CommKind::Collective, transpose_bytes);
    let unpack = b.kernel("step/unpack", "fft.c", 560, n, pack_profile(p));
    let fft2 = b.kernel("step/fft_y", "fft.c", 580, n, fft_stage_profile(p));
    let transpose_back = b.comm(CommKind::Collective, transpose_bytes);

    let body = ProgramBuilder::seq(vec![fft1, pack, transpose, unpack, fft2, transpose_back]);
    let lp = b.loop_block("step/loop", "fft.c", 500, p.steps, body);
    let step_fn = b.function("fft_step", "fft.c", 490, lp);
    let main = b.function("main", "fft_main.c", 8, step_fn);
    b.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unroll;
    use crate::groundtruth::GroundTruth;
    use crate::kernel::CpuConfig;
    use crate::noise::NoiseConfig;
    use crate::spmd::{schedule, CommConfig, TimedItem};

    #[test]
    fn builds_and_counts() {
        let p = build(&FftParams::default());
        p.validate();
        assert_eq!(p.total_comms(), 300);
    }

    #[test]
    fn fft_stages_outperform_pack() {
        // The transform stages are the compute-efficient phases; the
        // strided pack/unpack phases are bandwidth-bound and far slower.
        let cpu = CpuConfig::default();
        let p = FftParams::default();
        let fft_ipc = fft_stage_profile(&p).effective_ipc(&cpu);
        let pack_ipc = pack_profile(&p).effective_ipc(&cpu);
        assert!(fft_ipc > 1.0, "fft ipc {fft_ipc}");
        assert!(fft_ipc > 3.0 * pack_ipc, "fft {fft_ipc} vs pack {pack_ipc}");
    }

    #[test]
    fn bursts_alternate_two_templates() {
        // Burst A: unpack+fft_y (between the two transposes);
        // burst B: fft_x+pack (after transpose_back).
        let prog = build(&FftParams { steps: 6, ..FftParams::default() });
        let script = unroll(&prog, &CpuConfig::default(), NoiseConfig::NONE, 0);
        let gt = GroundTruth::from_script(&script);
        assert_eq!(gt.templates.len(), 2);
        for t in &gt.templates {
            assert_eq!(t.num_phases(), 2, "{t:?}");
        }
    }

    #[test]
    fn communication_fraction_is_substantial() {
        let prog = build(&FftParams { steps: 10, ..FftParams::default() });
        let cpu = CpuConfig::default();
        let scripts = vec![unroll(&prog, &cpu, NoiseConfig::NONE, 0)];
        let sched = schedule(&scripts, &CommConfig::default());
        let mut comm = 0.0;
        let mut compute = 0.0;
        for item in &sched[0].items {
            match item {
                TimedItem::Comm { start, end, .. } => {
                    comm += end.as_secs_f64() - start.as_secs_f64()
                }
                TimedItem::Compute { start, end, .. } => {
                    compute += end.as_secs_f64() - start.as_secs_f64()
                }
                _ => {}
            }
        }
        let frac = comm / (comm + compute);
        // Even single-rank (no waiting), the transposes move the whole
        // array: communication must be a visible share of the step.
        assert!(frac > 0.03, "comm fraction {frac}");
    }
}
