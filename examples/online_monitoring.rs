//! On-line monitoring: analyse the application *while it runs*.
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```
//!
//! The companion on-line framework (Llort et al., IPDPS'10) performs the
//! structure detection during execution and refines it as data streams in.
//! This example replays a recorded run through the [`OnlineAnalyzer`] in
//! chunks — as if records were arriving over a tree-based reduction
//! network — printing a snapshot after every "monitoring interval".

use phasefold::report::render_report;
use phasefold::{AnalysisConfig, OnlineAnalyzer};
use phasefold_simapp::workloads::cg::{build, CgParams};
use phasefold_simapp::{simulate, SimConfig};
use phasefold_tracer::{trace_run, TracerConfig};

fn main() {
    let program = build(&CgParams::default());
    let sim = simulate(&program, &SimConfig { ranks: 4, ..SimConfig::default() });
    let trace = trace_run(&program.registry, &sim.timelines, &TracerConfig::default());

    let mut online = OnlineAnalyzer::new(AnalysisConfig::default(), 200);
    let streams: Vec<_> = trace.iter_ranks().collect();
    let max_len = streams.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let chunk = 400;
    let mut offset = 0;
    let mut interval = 0;
    while offset < max_len {
        for (rank, stream) in &streams {
            let records = stream.records();
            let end = (offset + chunk).min(records.len());
            if offset < end {
                online.push_records(*rank, &records[offset..end]);
            }
        }
        offset += chunk;
        interval += 1;
        println!(
            "── monitoring interval {interval}: {} bursts seen, warm: {} ──",
            online.bursts_seen(),
            online.is_warm()
        );
        let snapshot = online.snapshot();
        if let Some(model) = snapshot.dominant_model() {
            println!(
                "   dominant cluster: {} phases from {} folded samples (R² {:.4})",
                model.phases.len(),
                model.folded_samples,
                model.r2()
            );
        } else {
            println!("   no model yet (warm-up or too few folded samples)");
        }
    }

    println!("\nfinal on-line report:\n");
    println!("{}", render_report(&online.snapshot(), &trace.registry));
}
