//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the surface this workspace uses:
//!
//! * [`thread::scope`] — scoped threads with the crossbeam calling
//!   convention (`spawn` closures receive `&Scope`), implemented on top of
//!   `std::thread::scope` (Rust >= 1.63).
//! * [`deque`] — `Injector` / `Worker` / `Stealer` with the crossbeam-deque
//!   API shape. Internally these are mutex-guarded `VecDeque`s rather than
//!   lock-free Chase-Lev deques: correctness and API compatibility over raw
//!   throughput. Queue operations in this workspace hand out coarse tasks
//!   (a whole fold or counter refit per pop), so lock contention is
//!   negligible next to task cost.
//! * [`utils::Backoff`] — spin/yield backoff for idle workers.

/// Scoped threads in the crossbeam calling convention.
pub mod thread {
    use std::any::Any;

    /// Result type of [`scope`]: `Err` carries a spawned thread's panic
    /// payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle passed to the scope closure and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives a
        /// `&Scope` so it can spawn further siblings.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing stack
    /// frame. All spawned threads are joined before `scope` returns.
    ///
    /// Panic semantics differ slightly from real crossbeam: a panicking
    /// child re-raises on join (std behaviour) instead of being collected
    /// into the `Err` variant, so the `Err` arm is unreachable in practice.
    /// Workspace callers only `.expect()` the result, which is compatible.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Work-stealing deques (mutex-backed stand-in for `crossbeam-deque`).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// True if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// FIFO injector queue shared by all workers.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector { q: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.q.lock().unwrap().push_back(task);
        }

        /// Steals a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True if the queue has no tasks.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.q.lock().unwrap().len()
        }
    }

    #[derive(Clone, Copy)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// A worker-owned deque. The owner pushes and pops at one end; thieves
    /// steal from the other through [`Stealer`] handles.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker queue (owner pops the most recent push).
        pub fn new_lifo() -> Self {
            Worker { q: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Lifo }
        }

        /// Creates a FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker { q: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Fifo }
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, task: T) {
            self.q.lock().unwrap().push_back(task);
        }

        /// Pops a task from the owner end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.q.lock().unwrap();
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        /// True if the deque has no tasks.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: Arc::clone(&self.q) }
        }
    }

    /// A handle that steals from the opposite end of a [`Worker`]'s deque.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { q: Arc::clone(&self.q) }
        }
    }

    impl<T> Stealer<T> {
        /// Steals a task from the victim's cold end.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True if the victim's deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }
    }
}

/// Miscellaneous utilities.
pub mod utils {
    use std::cell::Cell;

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops, mirroring
    /// `crossbeam_utils::Backoff`.
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Backoff {
        /// Creates a fresh backoff counter.
        pub fn new() -> Self {
            Backoff { step: Cell::new(0) }
        }

        /// Resets the counter.
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Backs off briefly after a failed attempt (spin only).
        pub fn spin(&self) {
            for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Backs off while waiting for another thread to make progress,
        /// escalating from spinning to yielding the OS scheduler.
        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                for _ in 0..1u32 << self.step.get() {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// True once backoff has escalated far enough that the caller
        /// should block instead of spinning.
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Worker};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let mut outputs = vec![0u64; 4];
        crate::thread::scope(|scope| {
            for (slot, &v) in outputs.iter_mut().zip(&data) {
                scope.spawn(move |_| {
                    *slot = v * 10;
                });
            }
        })
        .expect("join");
        assert_eq!(outputs, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                inner.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("join");
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn deque_lifo_and_steal_order() {
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Owner pops newest first.
        assert_eq!(w.pop(), Some(3));
        // Thief steals oldest first.
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert!(w.pop().is_none());
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo_across_threads() {
        let inj: Injector<usize> = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let sum = std::sync::atomic::AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    while let Some(v) = inj.steal().success() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("join");
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 4950);
        assert!(inj.is_empty());
    }
}
