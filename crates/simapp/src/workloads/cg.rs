//! Conjugate-gradient solver archetype ("CG-POP"-like).
//!
//! Per solver iteration: halo exchange, sparse matrix–vector product
//! (memory-bound, irregular), a dot product (followed by an allreduce), two
//! AXPY updates (streaming) and a second dot+allreduce. The optimised
//! variant fuses the two AXPYs with the trailing dot product — one pass over
//! the vectors instead of three, the classic "small transformation"
//! (companion paper reports 10–30 % from changes of this size).

use crate::kernel::KernelProfile;
use crate::program::{Block, Program, ProgramBuilder};
use phasefold_model::CommKind;

/// Parameters of the CG archetype.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// Solver iterations (bursts ≈ 2× this: halo- and allreduce-separated).
    pub iterations: u64,
    /// Unknowns per rank (sets vector lengths / working sets).
    pub local_rows: u64,
    /// Average non-zeros per row.
    pub nnz_per_row: f64,
    /// Fuse the AXPYs and trailing dot into one streaming kernel.
    pub fused: bool,
}

impl Default for CgParams {
    fn default() -> CgParams {
        CgParams {
            iterations: 150,
            local_rows: 40_000,
            nnz_per_row: 5.0,
            fused: false,
        }
    }
}

fn spmv_profile(p: &CgParams) -> KernelProfile {
    // Irregular gather: low locality, large working set (matrix + vectors).
    let bytes_per_row = p.nnz_per_row * 12.0 + 24.0; // CSR entries + vectors
    KernelProfile {
        instr_per_iter: p.nnz_per_row * 9.0 + 12.0,
        frac_loads: 0.42,
        frac_stores: 0.05,
        frac_fp: 0.30,
        frac_branches: 0.07,
        branch_misp_rate: 0.015,
        base_ipc: 2.6,
        working_set_bytes: p.local_rows as f64 * bytes_per_row,
        streamed_bytes_per_iter: bytes_per_row,
        locality: 0.85,
    }
}

fn dot_profile(p: &CgParams) -> KernelProfile {
    KernelProfile {
        instr_per_iter: 10.0,
        frac_loads: 0.40,
        frac_stores: 0.02,
        frac_fp: 0.40,
        frac_branches: 0.05,
        branch_misp_rate: 0.002,
        base_ipc: 3.0,
        working_set_bytes: p.local_rows as f64 * 16.0,
        streamed_bytes_per_iter: 16.0,
        locality: 1.0,
    }
}

fn axpy_profile(p: &CgParams) -> KernelProfile {
    KernelProfile {
        instr_per_iter: 8.0,
        frac_loads: 0.35,
        frac_stores: 0.18,
        frac_fp: 0.25,
        frac_branches: 0.05,
        branch_misp_rate: 0.002,
        base_ipc: 2.8,
        working_set_bytes: p.local_rows as f64 * 24.0,
        streamed_bytes_per_iter: 24.0,
        locality: 1.0,
    }
}

/// Fused axpy+axpy+dot: one pass, fewer streamed bytes per useful flop.
fn fused_profile(p: &CgParams) -> KernelProfile {
    KernelProfile {
        instr_per_iter: 22.0,
        frac_loads: 0.32,
        frac_stores: 0.12,
        frac_fp: 0.36,
        frac_branches: 0.04,
        branch_misp_rate: 0.002,
        base_ipc: 3.1,
        working_set_bytes: p.local_rows as f64 * 40.0,
        streamed_bytes_per_iter: 40.0, // one combined pass vs 16+24+24
        locality: 1.0,
    }
}

/// Builds the CG program.
pub fn build(p: &CgParams) -> Program {
    let mut b = ProgramBuilder::new(if p.fused { "cg-fused" } else { "cg" });
    let rows = p.local_rows;
    let halo_bytes = (p.local_rows as f64).sqrt() * 8.0 * 4.0;

    let spmv = b.kernel("cg_solve/spmv", "cg.c", 120, rows, spmv_profile(p));
    let dot1 = b.kernel("cg_solve/dot_pq", "cg.c", 141, rows, dot_profile(p));
    let body: Vec<Block> = if p.fused {
        let fused = b.kernel("cg_solve/fused_axpy_dot", "cg.c", 150, rows, fused_profile(p));
        vec![
            b.comm(CommKind::Send, halo_bytes),
            spmv,
            dot1,
            b.comm(CommKind::Collective, 8.0),
            fused,
            b.comm(CommKind::Collective, 8.0),
        ]
    } else {
        let axpy_x = b.kernel("cg_solve/axpy_x", "cg.c", 151, rows, axpy_profile(p));
        let axpy_r = b.kernel("cg_solve/axpy_r", "cg.c", 155, rows, axpy_profile(p));
        let dot2 = b.kernel("cg_solve/dot_rr", "cg.c", 159, rows, dot_profile(p));
        vec![
            b.comm(CommKind::Send, halo_bytes),
            spmv,
            dot1,
            b.comm(CommKind::Collective, 8.0),
            axpy_x,
            axpy_r,
            dot2,
            b.comm(CommKind::Collective, 8.0),
        ]
    };
    let lp = b.loop_block("cg_solve/iter", "cg.c", 110, p.iterations, ProgramBuilder::seq(body));
    let solve = b.function("cg_solve", "cg.c", 100, lp);
    let main = b.function("main", "cg_main.c", 10, solve);
    b.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unroll;
    use crate::groundtruth::GroundTruth;
    use crate::kernel::CpuConfig;
    use crate::noise::NoiseConfig;
    use phasefold_model::CounterKind;

    #[test]
    fn baseline_builds_with_expected_structure() {
        let p = build(&CgParams::default());
        p.validate();
        // 3 comms per iteration.
        assert_eq!(p.total_comms(), 450);
        assert!(p.registry.lookup("cg_solve/spmv").is_some());
    }

    #[test]
    fn spmv_is_the_slow_phase() {
        let params = CgParams::default();
        let cpu = CpuConfig::default();
        let spmv_ipc = spmv_profile(&params).effective_ipc(&cpu);
        let dot_ipc = dot_profile(&params).effective_ipc(&cpu);
        assert!(spmv_ipc < dot_ipc, "spmv {spmv_ipc} vs dot {dot_ipc}");
    }

    #[test]
    fn fused_variant_is_faster() {
        let cpu = CpuConfig::default();
        let base = build(&CgParams::default());
        let fused = build(&CgParams { fused: true, ..CgParams::default() });
        let total = |prog: &Program| -> f64 {
            unroll(prog, &cpu, NoiseConfig::NONE, 0)
                .iter()
                .filter_map(|i| match i {
                    crate::engine::ScriptItem::Compute(c) => Some(c.dur_s),
                    _ => None,
                })
                .sum()
        };
        let t_base = total(&base);
        let t_fused = total(&fused);
        let speedup = t_base / t_fused;
        assert!(
            speedup > 1.05 && speedup < 1.6,
            "fusion speedup {speedup} out of the plausible 10-30% band"
        );
    }

    #[test]
    fn ground_truth_has_multi_phase_bursts() {
        let prog = build(&CgParams { iterations: 10, ..CgParams::default() });
        let script = unroll(&prog, &CpuConfig::default(), NoiseConfig::NONE, 0);
        let gt = GroundTruth::from_script(&script);
        // Burst between the two collectives holds axpy+axpy+dot = 3 phases
        // (axpy_x and axpy_r share a profile but are distinct regions).
        let max_phases = gt.templates.iter().map(|t| t.num_phases()).max().unwrap();
        assert!(max_phases >= 2, "max phases {max_phases}");
    }

    #[test]
    fn spmv_has_the_worst_cache_behaviour() {
        let params = CgParams::default();
        let cpu = CpuConfig::default();
        let spmv = spmv_profile(&params).counter_rates(&cpu);
        let dot = dot_profile(&params).counter_rates(&cpu);
        let miss_per_ins = |c: &phasefold_model::CounterSet, k: CounterKind| {
            c[k] / c[CounterKind::Instructions]
        };
        // The dot streams L1-overflowing vectors too, so the contrast is
        // moderate but must be consistently in spmv's disfavour.
        assert!(
            miss_per_ins(&spmv, CounterKind::L1DMisses)
                > 1.2 * miss_per_ins(&dot, CounterKind::L1DMisses)
        );
        assert!(
            miss_per_ins(&spmv, CounterKind::L3Misses)
                > 1.2 * miss_per_ins(&dot, CounterKind::L3Misses)
        );
    }
}
