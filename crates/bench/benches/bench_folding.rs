//! Criterion micro-bench: the folding transform over trace size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phasefold_cluster::{cluster_bursts, ClusterConfig};
use phasefold_folding::{fold_trace, FoldConfig};
use phasefold_model::{extract_bursts, DurNs};
use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
use phasefold_simapp::{simulate, SimConfig};
use phasefold_tracer::{trace_run, TracerConfig};

fn bench_folding(c: &mut Criterion) {
    let mut group = c.benchmark_group("fold_trace");
    group.sample_size(20);
    for &iterations in &[200u64, 800] {
        let program = build(&SyntheticParams { iterations, ..SyntheticParams::default() });
        let out = simulate(&program, &SimConfig { ranks: 4, ..SimConfig::default() });
        let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
        let bursts = extract_bursts(&trace, DurNs::from_micros(10));
        let clustering = cluster_bursts(&bursts, &ClusterConfig::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, _| b.iter(|| fold_trace(&trace, &bursts, &clustering, &FoldConfig::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_folding);
criterion_main!(benches);
