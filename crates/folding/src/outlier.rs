//! Outlier-instance pruning.
//!
//! Folding normalises per instance, so moderate duration variation is
//! harmless — but an instance hit by a long OS preemption stretches its
//! time axis: its samples land at the wrong `x` relative to the phase
//! structure, smearing breakpoints. The classic remedy (used by the
//! folding tool-chain) is robust: drop instances whose duration deviates
//! from the cluster median by more than `k` MADs.

use crate::instance::FoldInstance;

/// Splits `instances` into (kept, pruned) by the duration MAD test.
///
/// With fewer than 4 instances everything is kept. The MAD is floored at
/// 0.1 % of the median duration: on near-deterministic data the raw MAD
/// collapses to quantisation noise (nanoseconds), which would declare
/// *everything* an outlier — durations within a fraction of a percent of
/// the median are never outliers, whatever the MAD says.
pub fn prune_outliers(
    instances: Vec<FoldInstance>,
    k: f64,
) -> (Vec<FoldInstance>, Vec<FoldInstance>) {
    if instances.len() < 4 {
        return (instances, Vec::new());
    }
    let mut durations: Vec<f64> = instances.iter().map(|i| i.dur_s).collect();
    durations.sort_by(f64::total_cmp);
    let median = durations[durations.len() / 2];
    let mut deviations: Vec<f64> = durations.iter().map(|d| (d - median).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    let mad = deviations[deviations.len() / 2];
    let scale = mad.max(median * 1e-3);
    if scale <= 0.0 {
        return (instances, Vec::new());
    }
    let threshold = k * scale;
    let mut kept = Vec::with_capacity(instances.len());
    let mut pruned = Vec::new();
    for inst in instances {
        if (inst.dur_s - median).abs() <= threshold {
            kept.push(inst);
        } else {
            pruned.push(inst);
        }
    }
    (kept, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(dur_s: f64) -> FoldInstance {
        FoldInstance { burst_index: 0, dur_s, samples: Vec::new() }
    }

    #[test]
    fn keeps_homogeneous_instances() {
        let instances: Vec<_> = (0..20).map(|i| instance(1.0 + 0.01 * (i % 3) as f64)).collect();
        let (kept, pruned) = prune_outliers(instances, 3.0);
        assert_eq!(kept.len(), 20);
        assert!(pruned.is_empty());
    }

    #[test]
    fn drops_preempted_instance() {
        let mut instances: Vec<_> =
            (0..30).map(|i| instance(1.0 + 0.005 * (i % 5) as f64)).collect();
        instances.push(instance(2.5)); // OS-preempted straggler
        let (kept, pruned) = prune_outliers(instances, 3.0);
        assert_eq!(pruned.len(), 1);
        assert!((pruned[0].dur_s - 2.5).abs() < 1e-12);
        assert_eq!(kept.len(), 30);
    }

    #[test]
    fn small_sets_pass_through() {
        let instances = vec![instance(1.0), instance(100.0)];
        let (kept, pruned) = prune_outliers(instances, 3.0);
        assert_eq!(kept.len(), 2);
        assert!(pruned.is_empty());
    }

    #[test]
    fn zero_mad_uses_relative_fallback() {
        // 29 identical durations (MAD = 0) + 1 outlier.
        let mut instances: Vec<_> = (0..29).map(|_| instance(1.0)).collect();
        instances.push(instance(1.5));
        let (kept, pruned) = prune_outliers(instances, 3.0);
        assert_eq!(pruned.len(), 1);
        assert_eq!(kept.len(), 29);
    }

    #[test]
    fn all_identical_keeps_everything() {
        let instances: Vec<_> = (0..10).map(|_| instance(2.0)).collect();
        let (kept, pruned) = prune_outliers(instances, 3.0);
        assert_eq!(kept.len(), 10);
        assert!(pruned.is_empty());
    }

    #[test]
    fn larger_k_is_more_permissive() {
        let mut instances: Vec<_> = (0..20).map(|i| instance(1.0 + 0.01 * (i % 7) as f64)).collect();
        instances.push(instance(1.2));
        let (_, pruned_tight) = prune_outliers(instances.clone(), 2.0);
        let (_, pruned_loose) = prune_outliers(instances, 50.0);
        assert!(pruned_tight.len() >= pruned_loose.len());
        assert!(pruned_loose.is_empty());
    }
}
