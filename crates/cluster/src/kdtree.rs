//! A k-d tree over fixed-dimension points, supporting the ε-range queries
//! DBSCAN needs. Built once over all points (median split), queried many
//! times; no external dependencies.

/// A k-d tree over `D`-dimensional points.
#[derive(Debug, Clone)]
pub struct KdTree<const D: usize> {
    /// Points in tree order (reordered copy of the input).
    points: Vec<[f64; D]>,
    /// Original index of each tree-ordered point.
    original: Vec<usize>,
}

impl<const D: usize> KdTree<D> {
    /// Builds a balanced tree (median splits) over `points`.
    pub fn build(points: &[[f64; D]]) -> KdTree<D> {
        let mut original: Vec<usize> = (0..points.len()).collect();
        let mut pts: Vec<[f64; D]> = points.to_vec();
        if !pts.is_empty() {
            build_recursive(&mut pts, &mut original, 0);
        }
        KdTree { points: pts, original }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Original indices of all points within Euclidean distance `eps` of
    /// `query` (inclusive). Includes the query point itself if present.
    pub fn within(&self, query: &[f64; D], eps: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if !self.points.is_empty() {
            self.search(0, self.points.len(), 0, query, eps * eps, &mut out);
        }
        out
    }

    fn search(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        query: &[f64; D],
        eps2: f64,
        out: &mut Vec<usize>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let p = &self.points[mid];
        if dist2(p, query) <= eps2 {
            out.push(self.original[mid]);
        }
        let next_axis = (axis + 1) % D;
        let delta = query[axis] - p[axis];
        let eps = eps2.sqrt();
        // Search the near side always; the far side only if the splitting
        // plane is within eps.
        if delta <= 0.0 {
            self.search(lo, mid, next_axis, query, eps2, out);
            if -delta <= eps {
                self.search(mid + 1, hi, next_axis, query, eps2, out);
            }
        } else {
            self.search(mid + 1, hi, next_axis, query, eps2, out);
            if delta <= eps {
                self.search(lo, mid, next_axis, query, eps2, out);
            }
        }
    }

    /// Distance to the k-th nearest *other* point for every point (the
    /// "k-dist" curve used to pick DBSCAN's ε). Brute force — used once at
    /// parameterisation time on the (small) burst set.
    pub fn k_dist(points: &[[f64; D]], k: usize) -> Vec<f64> {
        let n = points.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut dists: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| dist2(&points[i], &points[j]).sqrt())
                .collect();
            dists.sort_by(|a, b| a.total_cmp(b));
            out.push(dists.get(k.saturating_sub(1)).copied().unwrap_or(f64::INFINITY));
        }
        out
    }
}

fn build_recursive<const D: usize>(points: &mut [[f64; D]], original: &mut [usize], axis: usize) {
    let n = points.len();
    if n <= 1 {
        return;
    }
    let mid = n / 2;
    // Median partition along the axis (select_nth keeps pairing intact via
    // co-sorting through an index permutation).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| points[a][axis].total_cmp(&points[b][axis]));
    let reordered_pts: Vec<[f64; D]> = idx.iter().map(|&i| points[i]).collect();
    let reordered_orig: Vec<usize> = idx.iter().map(|&i| original[i]).collect();
    points.copy_from_slice(&reordered_pts);
    original.copy_from_slice(&reordered_orig);
    let next = (axis + 1) % D;
    let (left, rest) = points.split_at_mut(mid);
    let (_, right) = rest.split_at_mut(1);
    let (oleft, orest) = original.split_at_mut(mid);
    let (_, oright) = orest.split_at_mut(1);
    build_recursive(left, oleft, next);
    build_recursive(right, oright, next);
}

fn dist2<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut s = 0.0;
    for d in 0..D {
        let diff = a[d] - b[d];
        s += diff * diff;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_within(points: &[[f64; 2]], q: &[f64; 2], eps: f64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..points.len())
            .filter(|&i| dist2(&points[i], q).sqrt() <= eps)
            .collect();
        v.sort_unstable();
        v
    }

    fn pseudo_points(n: usize) -> Vec<[f64; 2]> {
        (0..n)
            .map(|i| {
                let a = ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
                let b = ((i as u64).wrapping_mul(0x9E3779B9) % 1000) as f64 / 1000.0;
                [a, b]
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = pseudo_points(200);
        let tree = KdTree::build(&pts);
        for (qi, q) in pts.iter().enumerate().step_by(17) {
            for eps in [0.05, 0.2, 0.7] {
                let mut got = tree.within(q, eps);
                got.sort_unstable();
                let want = brute_within(&pts, q, eps);
                assert_eq!(got, want, "query {qi} eps {eps}");
            }
        }
    }

    #[test]
    fn empty_tree() {
        let tree: KdTree<2> = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.within(&[0.0, 0.0], 1.0).is_empty());
    }

    #[test]
    fn single_point() {
        let tree = KdTree::build(&[[0.5, 0.5]]);
        assert_eq!(tree.within(&[0.5, 0.5], 0.0), vec![0]);
        assert_eq!(tree.within(&[0.6, 0.5], 0.05), Vec::<usize>::new());
        assert_eq!(tree.within(&[0.6, 0.5], 0.2), vec![0]);
    }

    #[test]
    fn duplicate_points_all_found() {
        let pts = vec![[0.1, 0.1]; 5];
        let tree = KdTree::build(&pts);
        let mut got = tree.within(&[0.1, 0.1], 1e-9);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn three_dimensional_works() {
        let pts: Vec<[f64; 3]> = (0..50)
            .map(|i| [i as f64 * 0.1, (i % 7) as f64, (i % 3) as f64])
            .collect();
        let tree = KdTree::build(&pts);
        let got = tree.within(&pts[10], 1e-9);
        assert_eq!(got, vec![10]);
    }

    #[test]
    fn k_dist_on_uniform_grid() {
        // 1-D embedded grid: nearest neighbour distance is the spacing.
        let pts: Vec<[f64; 2]> = (0..10).map(|i| [i as f64, 0.0]).collect();
        let d1 = KdTree::k_dist(&pts, 1);
        assert!(d1.iter().all(|&d| (d - 1.0).abs() < 1e-12));
        let d2 = KdTree::k_dist(&pts, 2);
        // End points' 2nd neighbour is 2 away; interior points' is 1.
        assert!((d2[0] - 2.0).abs() < 1e-12);
        assert!((d2[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_dist_degenerate() {
        let pts = vec![[0.0, 0.0]];
        assert_eq!(KdTree::k_dist(&pts, 1), vec![f64::INFINITY]);
    }
}
