//! # phasefold-chaos
//!
//! Deterministic fault-injection for phasefold's `.prv`-like text traces.
//!
//! Production telemetry is imperfect: collectors truncate records when
//! buffers fill, clock adjustments reorder timestamps, PMUs saturate, and
//! sampling glitches inject NaN runs or drop samples outright. This crate
//! reproduces those defects *deterministically* — a fixed seed and
//! configuration always yield byte-identical corruption — so the
//! fault-tolerance of the analysis pipeline can be measured and regression
//! tested (see the `exp_fault_tolerance` experiment and `phasefold chaos`).
//!
//! The corruptors operate on the text form, exactly where real damage
//! happens (after the tracer, before the parser). Header lines (`#…`) are
//! never touched: structural defects make a trace unreadable in any
//! format, which is a different failure class from record-level damage.
//!
//! Per body line the corruptors draw in a fixed order — drop, truncate,
//! shuffle, saturate, NaN — and the first that fires wins, so corruption
//! sites depend only on the seed, the rates and the line sequence, never
//! on map iteration order or wall-clock anything.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod daemon;

pub use daemon::DaemonHarness;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counter values at or above this are considered saturated (a pegged or
/// wrapped 64-bit PMU register, rendered to f64).
pub const SATURATED_COUNTER: f64 = u64::MAX as f64;

/// Corruption rates (per body line, in `[0, 1]`) plus the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the deterministic corruption stream.
    pub seed: u64,
    /// Probability of dropping a sample (`S`) line entirely.
    pub drop: f64,
    /// Probability of truncating a body line mid-record (a collector dying
    /// or a buffer filling while flushing).
    pub truncate: f64,
    /// Probability of swapping a record's timestamp with the previous body
    /// line's on the same rank — producing non-monotonic time.
    pub shuffle: f64,
    /// Probability of saturating a communication (`C`) line's counters to
    /// [`SATURATED_COUNTER`].
    pub saturate: f64,
    /// Probability of replacing a sample (`S`) line's counter values with
    /// NaN.
    pub nan: f64,
}

impl ChaosConfig {
    /// No corruption at all (rates zero); useful as a baseline.
    pub fn clean(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, drop: 0.0, truncate: 0.0, shuffle: 0.0, saturate: 0.0, nan: 0.0 }
    }

    /// Every corruptor at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop: rate,
            truncate: rate,
            shuffle: rate,
            saturate: rate,
            nan: rate,
        }
    }
}

/// What [`corrupt_trace_text`] actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorruptionStats {
    /// Body lines examined.
    pub lines_seen: usize,
    /// Sample lines removed.
    pub dropped: usize,
    /// Lines cut mid-record.
    pub truncated: usize,
    /// Timestamp pairs swapped.
    pub shuffled: usize,
    /// Comm lines with counters pegged to [`SATURATED_COUNTER`].
    pub saturated: usize,
    /// Sample lines with counter values replaced by NaN.
    pub nan_injected: usize,
}

impl CorruptionStats {
    /// Total corrupted lines (each line is hit by at most one corruptor).
    pub fn total(&self) -> usize {
        self.dropped + self.truncated + self.shuffled + self.saturated + self.nan_injected
    }
}

/// Rank and timestamp-token position of a body line, if it has one.
fn time_slot(fields: &[&str]) -> Option<(String, usize)> {
    match fields.first().copied() {
        // R <rank> <dir> <time> <region> / C <rank> <dir> <time> <kind> …
        Some("R") | Some("C") if fields.len() > 3 => Some((fields[1].to_string(), 3)),
        // S <rank> <time> <counters> <stack>
        Some("S") if fields.len() > 2 => Some((fields[1].to_string(), 2)),
        _ => None,
    }
}

/// Applies the configured corruptors to a trace's text form, returning the
/// corrupted text and what was done. Deterministic: same input, same
/// config → byte-identical output.
pub fn corrupt_trace_text(text: &str, config: &ChaosConfig) -> (String, CorruptionStats) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = CorruptionStats::default();
    let mut out: Vec<String> = Vec::new();
    // Per rank: index into `out` of the last body line carrying a time.
    let mut last_timed: std::collections::HashMap<String, usize> = std::collections::HashMap::new();

    for line in text.lines() {
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            out.push(trimmed.to_string());
            continue;
        }
        stats.lines_seen += 1;
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        let tag = fields.first().copied().unwrap_or("");

        // Fixed draw order; first corruptor that fires wins. Every rate is
        // drawn even when inapplicable to this tag so the random stream
        // stays aligned across configs with the same seed.
        let drop = rng.gen_bool(config.drop) && tag == "S";
        let truncate = rng.gen_bool(config.truncate);
        let shuffle = rng.gen_bool(config.shuffle);
        let saturate = rng.gen_bool(config.saturate) && tag == "C";
        let nan = rng.gen_bool(config.nan) && tag == "S";

        if drop {
            stats.dropped += 1;
            continue;
        }
        if truncate && fields.len() > 1 {
            stats.truncated += 1;
            // Keep a random non-empty prefix of the fields: a record cut
            // mid-flush.
            let keep = rng.gen_range(1..fields.len());
            out.push(fields[..keep].join(" "));
            continue;
        }
        if shuffle {
            if let Some((rank, slot)) = time_slot(&fields) {
                if let Some(&prev_idx) = last_timed.get(&rank) {
                    let prev_fields: Vec<String> =
                        out[prev_idx].split_whitespace().map(str::to_string).collect();
                    if let Some((_, prev_slot)) =
                        time_slot(&prev_fields.iter().map(String::as_str).collect::<Vec<_>>())
                    {
                        stats.shuffled += 1;
                        let mut cur: Vec<String> =
                            fields.iter().map(|f| f.to_string()).collect();
                        let mut prev = prev_fields;
                        std::mem::swap(&mut cur[slot], &mut prev[prev_slot]);
                        out[prev_idx] = prev.join(" ");
                        let idx = out.len();
                        out.push(cur.join(" "));
                        last_timed.insert(rank, idx);
                        continue;
                    }
                }
            }
        }
        // C <rank> <dir> <time> <kind> <v0..v9>: counters start at field 5.
        if saturate && fields.len() > 5 {
            stats.saturated += 1;
            let mut cur: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
            for v in cur.iter_mut().skip(5) {
                *v = format!("{SATURATED_COUNTER}");
            }
            let idx = out.len();
            if let Some((rank, _)) = time_slot(&fields) {
                last_timed.insert(rank, idx);
            }
            out.push(cur.join(" "));
            continue;
        }
        if nan && fields.len() > 3 && fields[2] != "-" {
            // S <rank> <time> <counters> <stack>: poison each K:V value.
            stats.nan_injected += 1;
            let poisoned: String = fields[3]
                .split(',')
                .map(|pair| match pair.split_once(':') {
                    Some((k, _)) => format!("{k}:NaN"),
                    None => pair.to_string(),
                })
                .collect::<Vec<_>>()
                .join(",");
            let mut cur: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
            cur[3] = poisoned;
            let idx = out.len();
            if let Some((rank, _)) = time_slot(&fields) {
                last_timed.insert(rank, idx);
            }
            out.push(cur.join(" "));
            continue;
        }

        let idx = out.len();
        if let Some((rank, _)) = time_slot(&fields) {
            last_timed.insert(rank, idx);
        }
        out.push(trimmed.to_string());
    }

    let mut joined = out.join("\n");
    joined.push('\n');
    (joined, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = "#PHASEFOLD_TRACE v1\n\
        #RANKS 2\n\
        #REGION 0 F main main.c 1\n\
        R 0 E 100 0\n\
        C 0 E 1000 COLL 1 2 3 4 5 6 7 8 9 10\n\
        S 0 1500 INS:5,CYC:9 0\n\
        S 0 2500 INS:6,CYC:11 0\n\
        S 1 300 INS:1 -\n\
        C 0 X 3000 COLL 2 3 4 5 6 7 8 9 10 11\n\
        R 0 X 4000 0\n";

    #[test]
    fn clean_config_is_identity_modulo_line_endings() {
        let (text, stats) = corrupt_trace_text(TRACE, &ChaosConfig::clean(7));
        assert_eq!(text, TRACE);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.lines_seen, 7);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ChaosConfig::uniform(42, 0.5);
        let (a, sa) = corrupt_trace_text(TRACE, &cfg);
        let (b, sb) = corrupt_trace_text(TRACE, &cfg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = corrupt_trace_text(TRACE, &ChaosConfig::uniform(43, 0.5));
        assert_ne!(a, c, "different seeds corrupt differently");
    }

    #[test]
    fn headers_survive_any_corruption_rate() {
        let (text, _) = corrupt_trace_text(TRACE, &ChaosConfig::uniform(1, 1.0));
        assert!(text.starts_with("#PHASEFOLD_TRACE v1\n"));
        assert!(text.contains("#RANKS 2"));
        assert!(text.contains("#REGION 0"));
    }

    #[test]
    fn drop_removes_only_sample_lines() {
        let cfg = ChaosConfig { drop: 1.0, ..ChaosConfig::clean(3) };
        let (text, stats) = corrupt_trace_text(TRACE, &cfg);
        assert_eq!(stats.dropped, 3);
        assert!(!text.contains("\nS "));
        assert!(text.contains("\nR 0 E 100 0\n"));
        assert!(text.contains("\nC 0 E 1000"));
    }

    #[test]
    fn nan_poisons_sample_counters_only() {
        let cfg = ChaosConfig { nan: 1.0, ..ChaosConfig::clean(3) };
        let (text, stats) = corrupt_trace_text(TRACE, &cfg);
        assert_eq!(stats.nan_injected, 3);
        assert!(text.contains("INS:NaN,CYC:NaN"), "{text}");
        // C-line counters untouched.
        assert!(text.contains("C 0 E 1000 COLL 1 2 3 4 5 6 7 8 9 10"), "{text}");
    }

    #[test]
    fn saturate_pegs_comm_counters() {
        let cfg = ChaosConfig { saturate: 1.0, ..ChaosConfig::clean(3) };
        let (text, stats) = corrupt_trace_text(TRACE, &cfg);
        assert_eq!(stats.saturated, 2);
        assert!(text.contains(&format!("COLL {SATURATED_COUNTER}")), "{text}");
    }

    #[test]
    fn shuffle_creates_non_monotonic_time() {
        let cfg = ChaosConfig { shuffle: 1.0, ..ChaosConfig::clean(3) };
        let (text, stats) = corrupt_trace_text(TRACE, &cfg);
        assert!(stats.shuffled > 0);
        // Rank 0's first two timed lines got their timestamps swapped at
        // least once somewhere: the text differs but keeps every token set.
        assert_ne!(text, TRACE);
        assert_eq!(text.lines().count(), TRACE.lines().count());
    }

    #[test]
    fn truncate_cuts_records_short() {
        let cfg = ChaosConfig { truncate: 1.0, ..ChaosConfig::clean(9) };
        let (text, stats) = corrupt_trace_text(TRACE, &cfg);
        assert_eq!(stats.truncated, 7);
        // With only truncation active, body lines map 1:1 to the originals;
        // each must have strictly fewer fields than it started with.
        let originals: Vec<&str> = TRACE.lines().filter(|l| !l.starts_with('#')).collect();
        let corrupted: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(originals.len(), corrupted.len());
        for (orig, cut) in originals.iter().zip(&corrupted) {
            assert!(
                cut.split_whitespace().count() < orig.split_whitespace().count(),
                "truncated line must be shorter: {cut:?} vs {orig:?}"
            );
        }
    }

    #[test]
    fn corrupted_trace_still_parses_leniently() {
        use phasefold_model::prv;
        let (text, stats) = corrupt_trace_text(TRACE, &ChaosConfig::uniform(11, 0.4));
        assert!(stats.total() > 0);
        let (trace, report) = prv::parse_trace_lenient(&text).expect("structure intact");
        // Lenient parsing quarantines the damage instead of failing.
        assert!(trace.total_records() <= 7);
        let _ = report;
    }
}
