//! Convenience driver: program → simulation → trace → analysis in one
//! call. Examples and experiments build on this.

use crate::config::AnalysisConfig;
use crate::pipeline::{analyze_trace, Analysis};
use phasefold_model::Trace;
use phasefold_simapp::{simulate, Program, SimConfig, SimOutput};
use phasefold_tracer::{trace_run, TracerConfig};

/// Everything a full simulated study produces.
#[derive(Debug)]
pub struct StudyOutput {
    /// Simulation result (ground-truth timelines + true phase structure).
    pub sim: SimOutput,
    /// The recorded trace.
    pub trace: Trace,
    /// The analysis of that trace.
    pub analysis: Analysis,
}

/// Simulates `program`, traces it, and analyses the trace.
pub fn run_study(
    program: &Program,
    sim: &SimConfig,
    tracer: &TracerConfig,
    analysis: &AnalysisConfig,
) -> StudyOutput {
    let _sp = phasefold_obs::span!("driver.run_study {}", program.name);
    let sim_out = {
        let _sp = phasefold_obs::span!("driver.simulate");
        simulate(program, sim)
    };
    let trace = trace_run(&program.registry, &sim_out.timelines, tracer);
    let result = analyze_trace(&trace, analysis);
    StudyOutput { sim: sim_out, trace, analysis: result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phasefold_simapp::workloads::cg::{build, CgParams};

    #[test]
    fn cg_study_end_to_end() {
        let program = build(&CgParams { iterations: 80, ..CgParams::default() });
        let study = run_study(
            &program,
            &SimConfig { ranks: 4, ..SimConfig::default() },
            &TracerConfig::default(),
            &AnalysisConfig::default(),
        );
        assert!(study.analysis.num_bursts > 100);
        assert!(!study.analysis.models.is_empty());
        assert!(study.trace.total_records() > 500);
        assert!(!study.sim.ground_truth.templates.is_empty());
    }
}
