//! Guided optimisation: the paper's case-study loop.
//!
//! ```text
//! cargo run --release --example guided_optimization
//! ```
//!
//! The IPDPS'14 evaluation takes optimized in-production applications,
//! describes their phases, and applies *small* code transformations
//! suggested by the per-phase metrics — obtaining measurable speedups
//! (the companion journal paper reports 10–30 %). This example replays
//! that loop on the three workload archetypes:
//!
//! * CG: the vector phases are memory-streaming-bound → fuse the AXPYs
//!   with the trailing dot product (one pass instead of three),
//! * stencil: the flux phase is memory-bound with a slab-sized working
//!   set → cache-block it,
//! * MD: the neighbour-build phase is irregular and branch-bound → rebuild
//!   less often (larger skin radius).

use phasefold::report::suggest_optimization;
use phasefold::{run_study, AnalysisConfig, StudyOutput};
use phasefold_simapp::workloads::{cg, md, stencil};
use phasefold_simapp::{Program, SimConfig};
use phasefold_tracer::TracerConfig;

fn study(program: &Program) -> StudyOutput {
    run_study(
        program,
        &SimConfig { ranks: 4, ..SimConfig::default() },
        &TracerConfig::default(),
        &AnalysisConfig::default(),
    )
}

/// Total compute time of the study (sum over clusters of instances × mean
/// burst duration) — the quantity the transformation shrinks.
fn compute_time(s: &StudyOutput) -> f64 {
    s.analysis.models.iter().map(|m| m.total_time_s()).sum()
}

fn case(
    name: &str,
    transformation: &str,
    baseline: Program,
    optimized: Program,
) {
    println!("case study: {name}");
    let base = study(&baseline);
    if let Some(hint) = suggest_optimization(&base.analysis, &base.trace.registry) {
        println!("  analysis hint ........ {hint}");
    }
    println!("  transformation ....... {transformation}");
    let opt = study(&optimized);
    let t0 = compute_time(&base);
    let t1 = compute_time(&opt);
    println!(
        "  compute time ......... {t0:.3} s -> {t1:.3} s  (speedup {:.2}x, {:+.1} %)",
        t0 / t1,
        100.0 * (t0 - t1) / t0
    );
    // Show how the targeted phase's metrics moved.
    if let (Some(mb), Some(mo)) =
        (base.analysis.dominant_model(), opt.analysis.dominant_model())
    {
        let worst_base = mb
            .phases
            .iter()
            .max_by(|a, b| a.duration_s.partial_cmp(&b.duration_s).unwrap())
            .unwrap();
        let worst_opt = mo
            .phases
            .iter()
            .max_by(|a, b| a.duration_s.partial_cmp(&b.duration_s).unwrap())
            .unwrap();
        println!(
            "  longest phase ........ IPC {:.2} -> {:.2}, L3 MPKI {:.2} -> {:.2}",
            worst_base.metrics.ipc,
            worst_opt.metrics.ipc,
            worst_base.metrics.l3_mpki,
            worst_opt.metrics.l3_mpki
        );
    }
    println!();
}

fn main() {
    case(
        "cg (conjugate gradient)",
        "fuse axpy_x + axpy_r + dot_rr into one streaming pass",
        cg::build(&cg::CgParams::default()),
        cg::build(&cg::CgParams { fused: true, ..cg::CgParams::default() }),
    );
    case(
        "stencil (explicit hydro)",
        "cache-block the flux kernel (slab -> L3-resident tiles)",
        stencil::build(&stencil::StencilParams::default()),
        stencil::build(&stencil::StencilParams { blocked: true, ..stencil::StencilParams::default() }),
    );
    case(
        "md (molecular dynamics)",
        "raise the neighbour-list rebuild interval from 20 to 80 steps",
        md::build(&md::MdParams::default()),
        md::build(&md::MdParams { decades: 2, rebuild_every: 80, ..md::MdParams::default() }),
    );
}
