//! A self-contained, line-oriented text trace format in the spirit of
//! Paraver's `.prv`.
//!
//! The original tool-chain persists Extrae traces to Paraver files and the
//! analysis stages re-read them. We mirror that decoupling so the analyzer
//! can run on traces produced elsewhere (or earlier). The format is
//! deliberately simple and diff-friendly:
//!
//! ```text
//! #PHASEFOLD_TRACE v1
//! #RANKS 2
//! #REGION 0 F main main.c 1
//! #REGION 1 K solve/spmv solve.c 42
//! R 0 E 1000 0                 // rank 0 enters region 0 at t=1000 ns
//! C 0 E 5000 COLL v0 v1 ... v9 // comm enter, full counter read
//! C 0 X 6000 COLL v0 v1 ... v9 // comm exit
//! S 0 5500 INS:123,CYC:456 0;1@44   // sample: counters + call stack
//! R 0 X 9000 0
//! ```
//!
//! Floats use Rust's shortest round-trip representation, so
//! write → parse → write is byte-stable. Tokens (region names, files) are
//! percent-escaped so they may contain spaces.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::callstack::{CallStack, RegionId, RegionKind, SourceRegistry};
use crate::counter::{CounterKind, CounterSet, PartialCounterSet, NUM_COUNTERS};
use crate::error::ModelError;
use crate::event::{CommKind, Record, Sample};
use crate::fault::{Fault, FaultReport, Severity};
use crate::time::TimeNs;
use crate::trace::{RankId, Trace};
use std::fmt::Write as _;

/// Upper bound on the rank count a `#RANKS` header may declare. Each
/// declared rank pre-allocates a `RankTrace`, so an unvalidated header is
/// an allocation amplifier: untrusted input (the serve daemon feeds this
/// parser straight from request bodies) could otherwise request tens of
/// GiB with a dozen bytes. Real deployments are orders of magnitude below
/// this.
pub const MAX_DECLARED_RANKS: usize = 1 << 20;

/// Percent-escapes spaces, `%` and control characters in a token.
fn escape(token: &str) -> String {
    let mut out = String::with_capacity(token.len());
    for c in token.chars() {
        match c {
            ' ' => out.push_str("%20"),
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\t' => out.push_str("%09"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(token: &str) -> Result<String, String> {
    let mut out = String::with_capacity(token.len());
    let bytes = token.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = token.get(i + 1..i + 3).ok_or("truncated escape")?;
            let v = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?;
            out.push(v as char);
            i += 3;
        } else {
            // Safe: iterating UTF-8 boundaries via chars would be cleaner but
            // all multi-byte chars pass through unchanged byte-wise.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&token[i..i + ch_len]);
            i += ch_len;
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Serialises a trace to the `.prv`-like text format.
///
/// ```
/// use phasefold_model::{prv, RankId, Record, RegionId, SourceRegistry, TimeNs, Trace};
/// use phasefold_model::RegionKind;
///
/// let mut registry = SourceRegistry::new();
/// let main = registry.intern("main", RegionKind::Function, "main.c", 1);
/// let mut trace = Trace::with_ranks(registry, 1);
/// trace
///     .rank_mut(RankId(0))
///     .unwrap()
///     .push(Record::RegionEnter { time: TimeNs(100), region: main })
///     .unwrap();
///
/// let text = prv::write_trace(&trace);
/// let parsed = prv::parse_trace(&text).unwrap();
/// assert_eq!(parsed.total_records(), 1);
/// assert_eq!(prv::write_trace(&parsed), text); // byte-stable round trip
/// ```
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("#PHASEFOLD_TRACE v1\n");
    let _ = writeln!(out, "#RANKS {}", trace.num_ranks());
    for (id, info) in trace.registry.iter() {
        let _ = writeln!(
            out,
            "#REGION {} {} {} {} {}",
            id.0,
            info.kind.tag(),
            escape(&info.name),
            escape(&info.location.file),
            info.location.line
        );
    }
    for (rank, stream) in trace.iter_ranks() {
        for record in stream.records() {
            write_record(&mut out, rank, record);
        }
    }
    out
}

fn write_counter_set(out: &mut String, c: &CounterSet) {
    for v in c.as_array() {
        let _ = write!(out, " {v}");
    }
}

fn write_record(out: &mut String, rank: RankId, record: &Record) {
    match record {
        Record::RegionEnter { time, region } => {
            let _ = writeln!(out, "R {} E {} {}", rank.0, time.0, region.0);
        }
        Record::RegionExit { time, region } => {
            let _ = writeln!(out, "R {} X {} {}", rank.0, time.0, region.0);
        }
        Record::CommEnter { time, kind, counters } => {
            let _ = write!(out, "C {} E {} {}", rank.0, time.0, kind.mnemonic());
            write_counter_set(out, counters);
            out.push('\n');
        }
        Record::CommExit { time, kind, counters } => {
            let _ = write!(out, "C {} X {} {}", rank.0, time.0, kind.mnemonic());
            write_counter_set(out, counters);
            out.push('\n');
        }
        Record::Sample(s) => {
            let _ = write!(out, "S {} {} ", rank.0, s.time.0);
            if s.counters.is_empty() {
                out.push('-');
            } else {
                let mut first = true;
                for (k, v) in s.counters.iter() {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "{}:{v}", k.mnemonic());
                }
            }
            out.push(' ');
            if s.callstack.is_empty() {
                out.push('-');
            } else {
                let mut first = true;
                for f in &s.callstack.frames {
                    if !first {
                        out.push(';');
                    }
                    first = false;
                    let _ = write!(out, "{}", f.0);
                }
                if s.callstack.leaf_line != 0 {
                    let _ = write!(out, "@{}", s.callstack.leaf_line);
                }
            }
            out.push('\n');
        }
    }
}

struct LineParser<'a> {
    line_no: usize,
    fields: std::str::SplitWhitespace<'a>,
}

impl<'a> LineParser<'a> {
    fn err(&self, message: impl Into<String>) -> ModelError {
        ModelError::Parse { line: self.line_no, message: message.into() }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, ModelError> {
        self.fields
            .next()
            .ok_or_else(|| self.err(format!("missing field: {what}")))
    }

    fn next_u32(&mut self, what: &str) -> Result<u32, ModelError> {
        let f = self.next(what)?;
        f.parse().map_err(|_| self.err(format!("bad {what}: {f:?}")))
    }

    fn next_u64(&mut self, what: &str) -> Result<u64, ModelError> {
        let f = self.next(what)?;
        f.parse().map_err(|_| self.err(format!("bad {what}: {f:?}")))
    }

    fn next_f64(&mut self, what: &str) -> Result<f64, ModelError> {
        let f = self.next(what)?;
        f.parse().map_err(|_| self.err(format!("bad {what}: {f:?}")))
    }

    fn counter_set(&mut self) -> Result<CounterSet, ModelError> {
        let mut values = [0.0; NUM_COUNTERS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.next_f64(&format!("counter[{i}]"))?;
        }
        Ok(CounterSet::from_array(values))
    }
}

/// Parses the `.prv`-like text format back into a [`Trace`].
///
/// Strict: the first defective line aborts with a typed [`ModelError`].
pub fn parse_trace(input: &str) -> Result<Trace, ModelError> {
    parse_impl(input, None)
}

/// Lenient variant of [`parse_trace`]: defective *body records* (truncated
/// fields, bad values, undeclared ranks, non-monotonic timestamps) are
/// quarantined — recorded in the returned [`FaultReport`] with their line
/// number — and parsing continues with the next line.
///
/// Structural defects that make the whole trace unreadable (bad magic
/// header, missing `#RANKS`, non-dense region table) are still fatal and
/// returned as an `Err` with [`Severity::Fatal`].
pub fn parse_trace_lenient(input: &str) -> Result<(Trace, FaultReport), Fault> {
    let mut report = FaultReport::new();
    match parse_impl(input, Some(&mut report)) {
        Ok(trace) => Ok((trace, report)),
        Err(e) => Err(Fault::from(e).severity(Severity::Fatal)),
    }
}

/// Shared parser core. With `faults: None` every error propagates (strict
/// mode); with `Some(report)` body-record errors are recorded and the line
/// skipped, while header/structure errors still propagate.
fn parse_impl(input: &str, mut faults: Option<&mut FaultReport>) -> Result<Trace, ModelError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or(ModelError::Parse {
        line: 1,
        message: "empty input".into(),
    })?;
    if header.trim() != "#PHASEFOLD_TRACE v1" {
        return Err(ModelError::Parse {
            line: 1,
            message: format!("bad header: {header:?}"),
        });
    }
    let mut registry = SourceRegistry::new();
    let mut trace: Option<Trace> = None;
    let mut pending_regions: Vec<(u32, RegionKind, String, String, u32)> = Vec::new();
    let mut n_ranks: Option<usize> = None;

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut p = LineParser { line_no, fields: line.split_whitespace() };
        let tag = match p.next("record tag") {
            Ok(t) => t,
            Err(_) => continue, // whitespace-only line
        };
        match tag {
            "#RANKS" => {
                let n = p.next_u32("rank count")? as usize;
                // The header is structural, so this is fatal in both
                // modes. A trace cannot meaningfully declare more ranks
                // than it has bytes: every real rank costs at least one
                // record line, and the byte bound keeps a tiny hostile
                // body from forcing a huge per-rank allocation.
                if n > MAX_DECLARED_RANKS || n > input.len() {
                    return Err(p.err(format!(
                        "declared rank count {n} exceeds the allowed maximum \
                         (min of {MAX_DECLARED_RANKS} and the input size {})",
                        input.len()
                    )));
                }
                n_ranks = Some(n);
            }
            "#REGION" => {
                let id = p.next_u32("region id")?;
                let kind_tok = p.next("region kind")?;
                let kind_char = kind_tok.chars().next().unwrap_or('?');
                let kind = RegionKind::from_tag(kind_char)
                    .ok_or_else(|| p.err(format!("bad region kind {kind_tok:?}")))?;
                let name = unescape(p.next("region name")?).map_err(|e| p.err(e))?;
                let file = unescape(p.next("region file")?).map_err(|e| p.err(e))?;
                let line_nr = p.next_u32("region line")?;
                pending_regions.push((id, kind, name, file, line_nr));
            }
            "R" | "C" | "S" => {
                // First body record: freeze the header. Structural errors
                // here are fatal in both modes.
                if trace.is_none() {
                    let ranks = n_ranks.ok_or_else(|| p.err("missing #RANKS header"))?;
                    pending_regions.sort_by_key(|(id, ..)| *id);
                    for (expect, (id, kind, name, file, line_nr)) in
                        pending_regions.iter().enumerate()
                    {
                        if *id as usize != expect {
                            return Err(p.err(format!(
                                "region ids must be dense, found {id} at position {expect}"
                            )));
                        }
                        registry.intern(name, *kind, file, *line_nr);
                    }
                    trace = Some(Trace::with_ranks(std::mem::take(&mut registry), ranks));
                }
                let Some(trace) = trace.as_mut() else {
                    unreachable!("trace initialised above");
                };
                match parse_body_record(&mut p, tag, trace) {
                    Ok(()) => {}
                    Err(e) => match faults.as_deref_mut() {
                        Some(report) => report.push(Fault::from(e).at_line(line_no)),
                        None => return Err(e),
                    },
                }
            }
            other => {
                let e = ModelError::Parse {
                    line: line_no,
                    message: format!("unknown record tag {other:?}"),
                };
                match faults.as_deref_mut() {
                    Some(report) => report.push(Fault::from(e)),
                    None => return Err(e),
                }
            }
        }
    }

    // Header-only trace (no body records): still valid.
    match trace {
        Some(t) => Ok(t),
        None => {
            let ranks = n_ranks.ok_or(ModelError::Parse {
                line: 1,
                message: "missing #RANKS header".into(),
            })?;
            pending_regions.sort_by_key(|(id, ..)| *id);
            for (id, kind, name, file, line_nr) in &pending_regions {
                let _ = id;
                registry.intern(name, *kind, file, *line_nr);
            }
            Ok(Trace::with_ranks(registry, ranks))
        }
    }
}

/// Parses one standalone `R`/`C`/`S` body line into its rank and record,
/// without a surrounding trace. This is the streaming-ingestion entry
/// point: a served session receives raw record lines one chunk at a time
/// and feeds them to an `OnlineAnalyzer`, so there is no header block and
/// no rank stream to push onto. Header lines (`#…`) and unknown tags are
/// rejected with a [`ModelError::Parse`] carrying `line_no`.
pub fn parse_record_line(line: &str, line_no: usize) -> Result<(RankId, Record), ModelError> {
    let mut p = LineParser { line_no, fields: line.split_whitespace() };
    let tag = p.next("record tag")?;
    match tag {
        "R" | "C" | "S" => {
            let (rank, record) = parse_record_fields(&mut p, tag)?;
            Ok((RankId(rank), record))
        }
        other => Err(p.err(format!("unknown record tag {other:?}"))),
    }
}

/// Parses the fields of one `R`/`C`/`S` body line (after the tag).
fn parse_record_fields(
    p: &mut LineParser<'_>,
    tag: &str,
) -> Result<(u32, Record), ModelError> {
    let rank = p.next_u32("rank")?;
    let record = match tag {
        "R" => {
            let dir = p.next("direction")?;
            let time = TimeNs(p.next_u64("time")?);
            let region = RegionId(p.next_u32("region")?);
            match dir {
                "E" => Record::RegionEnter { time, region },
                "X" => Record::RegionExit { time, region },
                other => return Err(p.err(format!("bad direction {other:?}"))),
            }
        }
        "C" => {
            let dir = p.next("direction")?;
            let time = TimeNs(p.next_u64("time")?);
            let kind_tok = p.next("comm kind")?;
            let kind = CommKind::from_mnemonic(kind_tok)
                .ok_or_else(|| p.err(format!("bad comm kind {kind_tok:?}")))?;
            let counters = p.counter_set()?;
            match dir {
                "E" => Record::CommEnter { time, kind, counters },
                "X" => Record::CommExit { time, kind, counters },
                other => return Err(p.err(format!("bad direction {other:?}"))),
            }
        }
        "S" => {
            let time = TimeNs(p.next_u64("time")?);
            let counters_tok = p.next("sample counters")?;
            let stack_tok = p.next("sample callstack")?;
            let counters = parse_sample_counters(p, counters_tok)?;
            let callstack = parse_callstack(p, stack_tok)?;
            Record::Sample(Sample { time, counters, callstack })
        }
        other => return Err(p.err(format!("unknown record tag {other:?}"))),
    };
    Ok((rank, record))
}

/// Parses one `R`/`C`/`S` body line and pushes it onto its rank's stream.
fn parse_body_record(
    p: &mut LineParser<'_>,
    tag: &str,
    trace: &mut Trace,
) -> Result<(), ModelError> {
    let (rank, record) = parse_record_fields(p, tag)?;
    let stream = trace
        .rank_mut(RankId(rank))
        .ok_or(ModelError::UnknownRank(rank))?;
    stream.push(record)
}

fn parse_sample_counters(
    p: &LineParser<'_>,
    tok: &str,
) -> Result<PartialCounterSet, ModelError> {
    if tok == "-" {
        return Ok(PartialCounterSet::EMPTY);
    }
    let mut out = PartialCounterSet::EMPTY;
    for pair in tok.split(',') {
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| p.err(format!("bad counter pair {pair:?}")))?;
        let kind = CounterKind::from_mnemonic(k)
            .ok_or_else(|| p.err(format!("unknown counter {k:?}")))?;
        let value: f64 = v
            .parse()
            .map_err(|_| p.err(format!("bad counter value {v:?}")))?;
        out.set(kind, value);
    }
    Ok(out)
}

fn parse_callstack(p: &LineParser<'_>, tok: &str) -> Result<CallStack, ModelError> {
    if tok == "-" {
        return Ok(CallStack::empty());
    }
    let (frames_tok, leaf_line) = match tok.rsplit_once('@') {
        Some((f, l)) => {
            let line: u32 = l
                .parse()
                .map_err(|_| p.err(format!("bad leaf line {l:?}")))?;
            (f, line)
        }
        None => (tok, 0),
    };
    let mut frames = Vec::new();
    for f in frames_tok.split(';') {
        let id: u32 = f
            .parse()
            .map_err(|_| p.err(format!("bad frame id {f:?}")))?;
        frames.push(RegionId(id));
    }
    Ok(CallStack::new(frames, leaf_line))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::callstack::RegionKind;
    use crate::fault::FaultKind;

    fn sample_trace() -> Trace {
        let mut registry = SourceRegistry::new();
        let main = registry.intern("main", RegionKind::Function, "main.c", 1);
        let spmv = registry.intern("solve spmv", RegionKind::Kernel, "dir with space/solve.c", 42);
        let mut trace = Trace::with_ranks(registry, 2);
        let mut c0 = CounterSet::ZERO;
        c0[CounterKind::Instructions] = 1234.5;
        c0[CounterKind::Cycles] = 5e9;
        let stream = trace.rank_mut(RankId(0)).unwrap();
        stream
            .push(Record::RegionEnter { time: TimeNs(10), region: main })
            .unwrap();
        stream
            .push(Record::CommExit { time: TimeNs(100), kind: CommKind::Collective, counters: c0 })
            .unwrap();
        let mut pc = PartialCounterSet::EMPTY;
        pc.set(CounterKind::Instructions, 0.125);
        stream
            .push(Record::Sample(Sample {
                time: TimeNs(150),
                counters: pc,
                callstack: CallStack::new(vec![main, spmv], 44),
            }))
            .unwrap();
        stream
            .push(Record::CommEnter {
                time: TimeNs(300),
                kind: CommKind::Send,
                counters: c0.scale(2.0),
            })
            .unwrap();
        let stream1 = trace.rank_mut(RankId(1)).unwrap();
        stream1
            .push(Record::Sample(Sample {
                time: TimeNs(5),
                counters: PartialCounterSet::EMPTY,
                callstack: CallStack::empty(),
            }))
            .unwrap();
        trace
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.num_ranks(), trace.num_ranks());
        assert_eq!(parsed.registry.len(), trace.registry.len());
        for (id, info) in trace.registry.iter() {
            assert_eq!(parsed.registry.get(id), Some(info));
        }
        for (rank, stream) in trace.iter_ranks() {
            assert_eq!(parsed.rank(rank).unwrap().records(), stream.records());
        }
    }

    #[test]
    fn write_is_stable_under_reparse() {
        let trace = sample_trace();
        let text1 = write_trace(&trace);
        let text2 = write_trace(&parse_trace(&text1).unwrap());
        assert_eq!(text1, text2);
    }

    #[test]
    fn escaping_roundtrip() {
        for s in ["plain", "with space", "100%", "tab\there", "uni¢ode", ""] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_trace("#SOMETHING_ELSE\n").is_err());
        assert!(parse_trace("").is_err());
    }

    #[test]
    fn rejects_unknown_rank() {
        let input = "#PHASEFOLD_TRACE v1\n#RANKS 1\nR 5 E 0 0\n";
        assert_eq!(parse_trace(input).unwrap_err(), ModelError::UnknownRank(5));
    }

    #[test]
    fn rejects_sparse_region_ids() {
        let input = "#PHASEFOLD_TRACE v1\n#RANKS 1\n#REGION 3 F main main.c 1\nR 0 E 0 0\n";
        assert!(matches!(parse_trace(input), Err(ModelError::Parse { .. })));
    }

    #[test]
    fn rejects_hostile_rank_counts() {
        // A few bytes must not be able to demand a multi-GiB allocation:
        // the declared rank count is bounded by the input size…
        let tiny = "#PHASEFOLD_TRACE v1\n#RANKS 4000000000\n";
        assert!(matches!(parse_trace(tiny), Err(ModelError::Parse { .. })));
        // …and lenient mode treats it as fatal too (structural defect).
        assert!(parse_trace_lenient(tiny).is_err());
        // Even a body padded past the absolute cap is rejected.
        let padded = format!(
            "#PHASEFOLD_TRACE v1\n#RANKS {}\n{}",
            MAX_DECLARED_RANKS + 1,
            " ".repeat(MAX_DECLARED_RANKS + 64)
        );
        assert!(matches!(parse_trace(&padded), Err(ModelError::Parse { .. })));
    }

    #[test]
    fn header_only_trace_parses() {
        let input = "#PHASEFOLD_TRACE v1\n#RANKS 3\n#REGION 0 F main main.c 1\n";
        let t = parse_trace(input).unwrap();
        assert_eq!(t.num_ranks(), 3);
        assert_eq!(t.registry.len(), 1);
        assert_eq!(t.total_records(), 0);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let input = "#PHASEFOLD_TRACE v1\n#RANKS 1\nR 0 E notatime 0\n";
        match parse_trace(input) {
            Err(ModelError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn lenient_skips_truncated_line_and_reports_it() {
        let input = "#PHASEFOLD_TRACE v1\n#RANKS 1\nR 0 E 100 0\nR 0 X\nS 0 500 - -\n";
        let (t, report) = parse_trace_lenient(input).unwrap();
        assert_eq!(t.total_records(), 2, "good lines around the bad one survive");
        assert_eq!(report.len(), 1);
        let f = &report.faults[0];
        assert_eq!(f.kind, FaultKind::MalformedTrace);
        assert_eq!(f.provenance.line, Some(4));
        // Strict mode rejects the same input.
        assert!(parse_trace(input).is_err());
    }

    #[test]
    fn lenient_skips_non_monotonic_records() {
        let input = "#PHASEFOLD_TRACE v1\n#RANKS 1\nS 0 500 - -\nS 0 100 - -\nS 0 600 - -\n";
        let (t, report) = parse_trace_lenient(input).unwrap();
        assert_eq!(t.total_records(), 2);
        assert_eq!(report.len(), 1);
        assert_eq!(report.faults[0].kind, FaultKind::NonMonotonicTime);
        assert_eq!(report.faults[0].provenance.line, Some(4));
        assert!(matches!(parse_trace(input), Err(ModelError::OutOfOrder { .. })));
    }

    #[test]
    fn lenient_skips_unknown_rank_and_tag() {
        let input = "#PHASEFOLD_TRACE v1\n#RANKS 1\nR 5 E 0 0\nQ what is this\nS 0 1 - -\n";
        let (t, report) = parse_trace_lenient(input).unwrap();
        assert_eq!(t.total_records(), 1);
        assert_eq!(report.len(), 2);
        assert_eq!(report.faults[0].kind, FaultKind::MalformedTrace);
        assert_eq!(report.faults[0].provenance.rank, Some(5));
        assert_eq!(report.faults[1].kind, FaultKind::MalformedTrace);
    }

    #[test]
    fn lenient_still_rejects_structural_defects() {
        let fatal = parse_trace_lenient("#NOT_A_TRACE\n").unwrap_err();
        assert_eq!(fatal.severity, Severity::Fatal);
        assert!(parse_trace_lenient("#PHASEFOLD_TRACE v1\nS 0 1 - -\n").is_err());
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let text = write_trace(&sample_trace());
        let strict = parse_trace(&text).unwrap();
        let (lenient, report) = parse_trace_lenient(&text).unwrap();
        assert!(report.is_empty());
        assert_eq!(write_trace(&lenient), write_trace(&strict));
    }

    #[test]
    fn record_line_parses_standalone() {
        let (rank, rec) = parse_record_line("R 3 E 1000 7", 12).unwrap();
        assert_eq!(rank, RankId(3));
        assert!(matches!(
            rec,
            Record::RegionEnter { time: TimeNs(1000), region: RegionId(7) }
        ));
        let (rank, rec) = parse_record_line("S 1 500 INS:0.5 -", 1).unwrap();
        assert_eq!(rank, RankId(1));
        assert!(matches!(rec, Record::Sample(_)));
        // Errors carry the caller-supplied line number.
        match parse_record_line("R 0 E notatime 0", 42) {
            Err(ModelError::Parse { line, .. }) => assert_eq!(line, 42),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_record_line("#RANKS 2", 1).is_err());
        assert!(parse_record_line("Q nonsense", 1).is_err());
        // Round trip: every record a trace writer emits parses back.
        let trace = sample_trace();
        let text = write_trace(&trace);
        for (no, line) in text.lines().enumerate() {
            if line.starts_with('#') {
                continue;
            }
            let (rank, rec) = parse_record_line(line, no + 1).unwrap();
            assert!(trace.rank(rank).unwrap().records().contains(&rec));
        }
    }

    #[test]
    fn sample_without_counters_or_stack() {
        let input = "#PHASEFOLD_TRACE v1\n#RANKS 1\nS 0 500 - -\n";
        let t = parse_trace(input).unwrap();
        let recs = t.rank(RankId(0)).unwrap().records();
        match &recs[0] {
            Record::Sample(s) => {
                assert!(s.counters.is_empty());
                assert!(s.callstack.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
