//! Exporters: Chrome-trace JSON, metrics JSON, Prometheus text
//! exposition, and a human summary table.

use crate::span::SpanEvent;
use crate::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot as a Chrome-trace / Perfetto `trace_event` JSON
/// array: one `ph:"M"` metadata event per named lane, then one complete
/// (`ph:"X"`) event per span with microsecond timestamps. Load the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut events: Vec<String> = Vec::with_capacity(snap.spans.len() + snap.lanes.len() + 1);
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"phasefold\"}}"
            .to_string(),
    );
    for (lane, name) in &snap.lanes {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }
    // Stable viewer ordering: by lane, then start time.
    let mut spans: Vec<&SpanEvent> = snap.spans.iter().collect();
    spans.sort_by(|a, b| (a.lane, a.start_ns).cmp(&(b.lane, b.start_ns)));
    for s in spans {
        let args = if s.trace_id != 0 {
            format!(
                ",\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_span_id\":{}}}",
                s.trace_id, s.span_id, s.parent_id
            )
        } else {
            String::new()
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"phasefold\",\"ph\":\"X\",\"pid\":1,\
             \"tid\":{},\"ts\":{:.3},\"dur\":{:.3}{args}}}",
            json_escape(&s.name),
            s.lane,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
        ));
    }
    let mut out = String::from("[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// Renders counters, gauges, histograms (count/sum and p50/p95/p99 in
/// milliseconds), and per-span-name aggregates as a JSON object (one
/// scalar — or one single-line object — per line, so shell tooling can
/// grep it).
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"phasefold-obs-metrics/1\",");
    let _ = writeln!(out, "  \"counters\": {{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        let comma = if i + 1 < snap.counters.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {v}{comma}", json_escape(name));
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"gauges\": {{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        let comma = if i + 1 < snap.gauges.len() { "," } else { "" };
        let v = if v.is_finite() { format!("{v}") } else { "null".to_string() };
        let _ = writeln!(out, "    \"{}\": {v}{comma}", json_escape(name));
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"histograms\": {{");
    for (i, h) in snap.hists.iter().enumerate() {
        let comma = if i + 1 < snap.hists.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"count\": {}, \"sum_ms\": {:.3}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3} }}{comma}",
            json_escape(&h.name),
            h.count,
            h.sum as f64 / 1e6,
            h.quantile(0.50) as f64 / 1e6,
            h.quantile(0.95) as f64 / 1e6,
            h.quantile(0.99) as f64 / 1e6,
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"spans\": {{");
    let aggs = aggregate_spans(&snap.spans);
    for (i, (name, a)) in aggs.iter().enumerate() {
        let comma = if i + 1 < aggs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"count\": {}, \"total_ms\": {:.3}, \"max_ms\": {:.3} }}{comma}",
            json_escape(name),
            a.count,
            a.total_ns as f64 / 1e6,
            a.max_ns as f64 / 1e6,
        );
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Sanitizes a metric name for Prometheus: every character outside
/// `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gains a `_` prefix.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders counters, gauges, and histograms in the Prometheus text
/// exposition format (`0.0.4`). Histogram values are nanoseconds by
/// convention, so bucket `le` bounds and `_sum` are emitted in seconds;
/// cumulative `_bucket` counts end with the mandatory `+Inf` bucket.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        if v.is_finite() {
            let _ = writeln!(out, "{n} {v}");
        } else {
            let _ = writeln!(out, "{n} NaN");
        }
    }
    for h in &snap.hists {
        let n = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for &(idx, c) in &h.buckets {
            cum += c;
            let (_, upper_ns) = crate::hist::bucket_bounds(idx);
            let _ = writeln!(out, "{n}_bucket{{le=\"{:.9}\"}} {cum}", upper_ns as f64 / 1e9);
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum as f64 / 1e9);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// Per-span-name aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed spans with this name.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// Aggregates spans by name. Names carrying per-item suffixes are grouped
/// by their stem (text before the first ` #`), so `refit #3` and
/// `refit #7` aggregate as `refit`.
pub fn aggregate_spans(spans: &[SpanEvent]) -> BTreeMap<String, SpanAgg> {
    let mut out: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for s in spans {
        let stem = s.name.split(" #").next().unwrap_or(&s.name).to_string();
        let a = out.entry(stem).or_default();
        a.count += 1;
        a.total_ns += s.dur_ns;
        a.max_ns = a.max_ns.max(s.dur_ns);
    }
    out
}

/// Renders a human-readable summary: span aggregates sorted by total time
/// (descending), then counters and gauges.
pub fn summary_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut aggs: Vec<(String, SpanAgg)> = aggregate_spans(&snap.spans).into_iter().collect();
    aggs.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
    if !aggs.is_empty() {
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "total ms", "mean ms", "max ms"
        );
        for (name, a) in &aggs {
            let mean = a.total_ns as f64 / a.count.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>12.3} {:>12.3} {:>12.3}",
                name,
                a.count,
                a.total_ns as f64 / 1e6,
                mean / 1e6,
                a.max_ns as f64 / 1e6,
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\n{:<40} {:>16}", "counter", "value");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{:<40} {:>16}", name, v);
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "\n{:<40} {:>16}", "gauge", "value");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{:<40} {:>16.6}", name, v);
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_snapshot() -> Snapshot {
        let h = Histogram::new();
        for v in [1_000_000u64, 2_000_000, 4_000_000] {
            h.record(v);
        }
        Snapshot {
            spans: vec![
                SpanEvent {
                    name: "fold #0".into(),
                    lane: 0,
                    start_ns: 1000,
                    dur_ns: 500,
                    ..SpanEvent::default()
                },
                SpanEvent {
                    name: "fold #1".into(),
                    lane: 1,
                    start_ns: 1200,
                    dur_ns: 700,
                    ..SpanEvent::default()
                },
                SpanEvent {
                    name: "fit".into(),
                    lane: 0,
                    start_ns: 2000,
                    dur_ns: 100,
                    trace_id: 9,
                    span_id: 21,
                    parent_id: 20,
                },
            ],
            lanes: vec![(0, "main".into()), (1, "pool-worker-0".into())],
            counters: vec![("pool.steals".into(), 3)],
            gauges: vec![("cluster.eps".into(), 0.125)],
            hists: vec![h.snapshot("serve.latency.analyze")],
        }
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let json = chrome_trace_json(&sample_snapshot());
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"pool-worker-0\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":0.500"));
        // Traced spans carry their ids; untraced spans carry no args.
        assert!(json.contains("\"args\":{\"trace_id\":9,\"span_id\":21,\"parent_span_id\":20}"));
        assert_eq!(json.matches("\"trace_id\"").count(), 1);
    }

    #[test]
    fn metrics_json_lists_all_sections() {
        let json = metrics_json(&sample_snapshot());
        assert!(json.contains("\"pool.steals\": 3"));
        assert!(json.contains("\"cluster.eps\": 0.125"));
        assert!(json.contains("\"fold\": { \"count\": 2"));
        let hist_line = json
            .lines()
            .find(|l| l.contains("\"serve.latency.analyze\""))
            .expect("histogram line");
        assert!(hist_line.contains("\"count\": 3"), "{hist_line}");
        assert!(hist_line.contains("\"sum_ms\": 7.000"), "{hist_line}");
        assert!(hist_line.contains("\"p50_ms\":"), "{hist_line}");
        assert!(hist_line.contains("\"p99_ms\":"), "{hist_line}");
    }

    #[test]
    fn prometheus_text_round_trips_every_metric() {
        let snap = sample_snapshot();
        let prom = prometheus_text(&snap);
        // Counters and gauges appear exactly once as sample lines.
        assert_eq!(prom.lines().filter(|l| *l == "pool_steals 3").count(), 1);
        assert_eq!(prom.lines().filter(|l| *l == "cluster_eps 0.125").count(), 1);
        // Histogram series: cumulative buckets ending in +Inf, sum, count.
        let buckets: Vec<&str> = prom
            .lines()
            .filter(|l| l.starts_with("serve_latency_analyze_bucket"))
            .collect();
        assert!(buckets.len() >= 2, "{prom}");
        assert!(buckets.last().unwrap().contains("le=\"+Inf\"} 3"), "{prom}");
        let mut prev = 0u64;
        for b in &buckets {
            let c: u64 = b.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(c >= prev, "cumulative buckets must be monotone: {prom}");
            prev = c;
        }
        assert!(prom.lines().any(|l| l == "serve_latency_analyze_count 3"), "{prom}");
        assert!(prom.lines().any(|l| l.starts_with("serve_latency_analyze_sum 0.007")), "{prom}");
        assert!(prom.contains("# TYPE serve_latency_analyze histogram"));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("serve.latency.analyze"), "serve_latency_analyze");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a-b c"), "a_b_c");
    }

    #[test]
    fn aggregation_groups_by_stem() {
        let aggs = aggregate_spans(&sample_snapshot().spans);
        assert_eq!(aggs["fold"].count, 2);
        assert_eq!(aggs["fold"].total_ns, 1200);
        assert_eq!(aggs["fold"].max_ns, 700);
        assert_eq!(aggs["fit"].count, 1);
    }

    #[test]
    fn summary_sorts_by_total_time() {
        let text = summary_table(&sample_snapshot());
        let fold_pos = text.find("fold").unwrap();
        let fit_pos = text.find("fit").unwrap();
        assert!(fold_pos < fit_pos, "{text}");
        assert!(text.contains("pool.steals"));
        assert!(text.contains("cluster.eps"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
