//! Phase-aware matching of two fingerprints and the regression verdict.
//!
//! Builds change more than performance between deploys: phases *shift*
//! (span drift from changed trip counts), *split* (the PWLR resolves an
//! extra breakpoint), and *merge* (two segments fuse when their rates
//! converge). A matcher that pairs phases by position alone reports every
//! such change as a phase appearing and another vanishing — useless for a
//! deploy gate. This module matches in falling order of evidence quality:
//!
//! 1. **Source identity** — same region *name + file* strings. Line
//!    numbers shift between builds and region ids are registry-local, so
//!    neither participates. The strongest signal: code identity.
//! 2. **Signature similarity** — counter-*mix* distance (log-ratio RMS of
//!    L1-normalized rate vectors) plus small position/width terms. The mix
//!    is invariant under uniform slowdown — a phase that got 30% slower is
//!    still the same phase — which is exactly the case a regression
//!    detector must not mis-read as "old phase vanished, new phase
//!    appeared". Extends `core::compare`'s Source/Overlap fallbacks with
//!    [`MatchKind::Signature`].
//! 3. **Span overlap** — one-to-one only with *mutual* coverage ≥ 60%, so
//!    a blind overlap match cannot steal one half of a split.
//! 4. **Split/merge** — an unmatched phase whose span is covered ≥ 80% by
//!    two or more unmatched phases on the other side is reported as one
//!    split (or merge) verdict with summed durations, not as churn.
//!
//! Whatever remains is genuinely new or vanished and is surfaced as such.
//! The verdict applies the regression threshold only to phases carrying at
//! least `min_time_share` of baseline time — a 50% regression of a 0.1%
//! phase is noise, not a blocked deploy — plus one aggregate check over
//! the matched per-burst durations so death-by-many-small-cuts still
//! trips the gate.

use crate::fingerprint::{ClusterFingerprint, Fingerprint, PhaseFingerprint};
use phasefold::MatchKind;

/// Tunables of [`compare_fingerprints`].
#[derive(Debug, Clone, Copy)]
pub struct MatchConfig {
    /// Relative per-phase (and aggregate) duration growth that counts as
    /// a regression. The default (0.08) is calibrated by E21's threshold
    /// sweep: a real 10% slowdown measures as 10% ± run-to-run noise, so
    /// a gate at exactly 0.10 only catches the upper half of that
    /// distribution (recall 0.17). 0.08 is the largest threshold that
    /// recalls ≥ 90% of 10% slowdowns while keeping both the
    /// false-positive rate and recall on sub-threshold 5% drift at zero.
    pub regression_threshold: f64,
    /// Minimum share of baseline time a phase needs for its regression to
    /// gate; smaller phases are reported but never trip the verdict.
    pub min_time_share: f64,
    /// Maximum signature distance for a [`MatchKind::Signature`] pair.
    pub signature_cutoff: f64,
    /// Span-coverage fraction required to call a split or merge.
    pub split_coverage: f64,
}

impl Default for MatchConfig {
    fn default() -> MatchConfig {
        MatchConfig {
            regression_threshold: 0.08,
            min_time_share: 0.02,
            signature_cutoff: 0.45,
            split_coverage: 0.8,
        }
    }
}

/// How the matched phase sets relate structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchShape {
    /// One baseline phase matched one candidate phase.
    OneToOne,
    /// One baseline phase split into several candidate phases.
    Split,
    /// Several baseline phases merged into one candidate phase.
    Merge,
}

impl MatchShape {
    /// Stable lower-case label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            MatchShape::OneToOne => "one_to_one",
            MatchShape::Split => "split",
            MatchShape::Merge => "merge",
        }
    }
}

/// The verdict on one matched phase (or split/merge group).
#[derive(Debug, Clone)]
pub struct PhaseVerdict {
    /// Baseline cluster id.
    pub cluster: usize,
    /// Candidate cluster id it matched.
    pub candidate_cluster: usize,
    /// Baseline phase indices in the group (one unless a merge).
    pub baseline_phases: Vec<usize>,
    /// Candidate phase indices in the group (one unless a split).
    pub candidate_phases: Vec<usize>,
    /// Evidence tier that produced the match.
    pub matched_by: MatchKind,
    /// Structural relation of the group.
    pub shape: MatchShape,
    /// Rendered source attribution (`name (file:line)`) of the baseline
    /// side, when it had one.
    pub source: Option<String>,
    /// Summed per-burst duration of the baseline side (seconds).
    pub duration_before_s: f64,
    /// Summed per-burst duration of the candidate side (seconds).
    pub duration_after_s: f64,
    /// Relative duration growth; `None` when the baseline duration is
    /// zero (explicitly not "no change").
    pub duration_change: Option<f64>,
    /// Duration-weighted IPC of the baseline side.
    pub ipc_before: f64,
    /// Duration-weighted IPC of the candidate side.
    pub ipc_after: f64,
    /// Share of total baseline application time this group carries.
    pub time_share: f64,
    /// True when `time_share` reaches the configured minimum.
    pub significant: bool,
    /// True when significant *and* grown past the threshold — this phase
    /// trips the gate.
    pub regressed: bool,
}

/// A phase present on only one side of the comparison.
#[derive(Debug, Clone)]
pub struct PhaseNote {
    /// Cluster id (baseline side for vanished, candidate side for new).
    pub cluster: usize,
    /// Phase index within the cluster.
    pub phase: usize,
    /// Per-burst duration of the phase (seconds).
    pub duration_s: f64,
    /// Rendered source attribution, when present.
    pub source: Option<String>,
    /// Share of that side's total application time.
    pub time_share: f64,
}

/// The full comparison verdict between two builds.
#[derive(Debug, Clone)]
pub struct CompareVerdict {
    /// Baseline build id.
    pub baseline_build: String,
    /// Candidate build id.
    pub candidate_build: String,
    /// Baseline trace identity.
    pub baseline_trace: String,
    /// Candidate trace identity.
    pub candidate_trace: String,
    /// Regression threshold the verdict was computed under.
    pub threshold: f64,
    /// Significance floor the verdict was computed under.
    pub min_time_share: f64,
    /// The gate: true when any significant phase (or the matched
    /// aggregate) grew past the threshold.
    pub regressed: bool,
    /// Total baseline application time (seconds).
    pub total_before_s: f64,
    /// Total candidate application time (seconds).
    pub total_after_s: f64,
    /// Relative growth of summed per-burst duration over matched phase
    /// groups; `None` when nothing matched or the baseline sum is zero.
    pub total_change: Option<f64>,
    /// Matched phase groups, baseline order.
    pub phases: Vec<PhaseVerdict>,
    /// Phases only the candidate has.
    pub new_phases: Vec<PhaseNote>,
    /// Phases only the baseline has.
    pub vanished_phases: Vec<PhaseNote>,
}

const EPS: f64 = 1e-12;

/// Overlap length of two spans.
fn overlap(a: &PhaseFingerprint, b: &PhaseFingerprint) -> f64 {
    (a.x1.min(b.x1) - a.x0.max(b.x0)).max(0.0)
}

/// True when both phases carry source attribution and it *disagrees* —
/// positive evidence they are different code, which the weaker signature
/// and overlap passes must never override.
fn sources_conflict(a: &PhaseFingerprint, b: &PhaseFingerprint) -> bool {
    match (&a.source, &b.source) {
        (Some(sa), Some(sb)) => sa.name != sb.name || sa.file != sb.file,
        _ => false,
    }
}

/// Duration-weighted IPC over a set of phases.
fn weighted_ipc(phases: &[&PhaseFingerprint]) -> f64 {
    let ins: f64 = phases.iter().map(|p| p.rates.as_array()[0] * p.duration_s).sum();
    let cyc: f64 = phases.iter().map(|p| p.rates.as_array()[1] * p.duration_s).sum();
    if cyc <= 0.0 {
        0.0
    } else {
        ins / cyc
    }
}

/// Counter-mix distance: RMS of per-counter log-ratios between the two
/// L1-normalized rate vectors, plus small position and width terms. The
/// normalization makes the distance invariant under uniform slowdown.
fn signature_distance(a: &PhaseFingerprint, b: &PhaseFingerprint) -> f64 {
    let ra = a.rates.as_array();
    let rb = b.rates.as_array();
    let sa: f64 = ra.iter().sum();
    let sb: f64 = rb.iter().sum();
    if sa <= 0.0 || sb <= 0.0 {
        return f64::INFINITY;
    }
    let mut acc = 0.0;
    let mut n = 0usize;
    for i in 0..ra.len() {
        let pa = ra[i] / sa;
        let pb = rb[i] / sb;
        if pa > 1e-9 || pb > 1e-9 {
            let d = ((pa + EPS) / (pb + EPS)).ln();
            acc += d * d;
            n += 1;
        }
    }
    if n == 0 {
        return f64::INFINITY;
    }
    let mix = (acc / n as f64).sqrt();
    let position = 0.5 * (0.5 * (a.x0 + a.x1) - 0.5 * (b.x0 + b.x1)).abs();
    // Width is weighted harder than position: a phase that "matches"
    // something twice its width is usually one piece of a split/merge,
    // which the dedicated passes must get to see.
    let width = if a.span() > 0.0 && b.span() > 0.0 {
        0.75 * (a.span() / b.span()).ln().abs()
    } else {
        1.0
    };
    mix + position + width
}

/// Burst-signature distance between two clusters (mean duration +
/// per-burst instruction total, both in log space). Mirrors
/// `core::compare`'s cluster matcher, on fingerprint fields.
fn cluster_distance(a: &ClusterFingerprint, b: &ClusterFingerprint) -> f64 {
    let dur = ((a.mean_duration_s + EPS) / (b.mean_duration_s + EPS)).ln().abs();
    let ins = ((a.total_instructions + EPS) / (b.total_instructions + EPS)).ln().abs();
    dur + ins
}

/// Greedy one-to-one cluster pairing under a log-distance cutoff of 2.0.
fn match_clusters(b: &[ClusterFingerprint], c: &[ClusterFingerprint]) -> Vec<(usize, usize)> {
    let mut edges: Vec<(f64, usize, usize)> = Vec::new();
    for (i, bc) in b.iter().enumerate() {
        for (j, cc) in c.iter().enumerate() {
            let d = cluster_distance(bc, cc);
            if d <= 2.0 {
                edges.push((d, i, j));
            }
        }
    }
    edges.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    let mut used_b = vec![false; b.len()];
    let mut used_c = vec![false; c.len()];
    let mut pairs = Vec::new();
    for (_, i, j) in edges {
        if !used_b[i] && !used_c[j] {
            used_b[i] = true;
            used_c[j] = true;
            pairs.push((i, j));
        }
    }
    pairs.sort();
    pairs
}

/// One matched phase group before scoring.
struct Group {
    baseline: Vec<usize>,
    candidate: Vec<usize>,
    matched_by: MatchKind,
    shape: MatchShape,
}

/// Matches the phases of one cluster pair; `true` slots in the returned
/// masks are phases consumed by some group.
fn match_phases(
    b: &[PhaseFingerprint],
    c: &[PhaseFingerprint],
    config: &MatchConfig,
) -> (Vec<Group>, Vec<bool>, Vec<bool>) {
    let mut used_b = vec![false; b.len()];
    let mut used_c = vec![false; c.len()];
    let mut groups: Vec<Group> = Vec::new();

    // Pass 1: source identity (name + file). First-in-order wins a
    // conflicting claim, deterministically.
    for (bi, bp) in b.iter().enumerate() {
        let Some(bs) = &bp.source else { continue };
        let hit = c.iter().enumerate().find(|(ci, cp)| {
            !used_c[*ci]
                && cp
                    .source
                    .as_ref()
                    .is_some_and(|cs| cs.name == bs.name && cs.file == bs.file)
        });
        if let Some((ci, _)) = hit {
            used_b[bi] = true;
            used_c[ci] = true;
            groups.push(Group {
                baseline: vec![bi],
                candidate: vec![ci],
                matched_by: MatchKind::Source,
                shape: MatchShape::OneToOne,
            });
        }
    }

    // Pass 2: signature similarity.
    for (bi, bp) in b.iter().enumerate() {
        if used_b[bi] {
            continue;
        }
        let best = c
            .iter()
            .enumerate()
            .filter(|(ci, cp)| !used_c[*ci] && !sources_conflict(bp, cp))
            .map(|(ci, cp)| (signature_distance(bp, cp), ci))
            .min_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        if let Some((d, ci)) = best {
            if d <= config.signature_cutoff {
                used_b[bi] = true;
                used_c[ci] = true;
                groups.push(Group {
                    baseline: vec![bi],
                    candidate: vec![ci],
                    matched_by: MatchKind::Signature,
                    shape: MatchShape::OneToOne,
                });
            }
        }
    }

    // Pass 3: one-to-one span overlap, mutual coverage >= 60% — strict
    // enough that one half of a split cannot be claimed here.
    for (bi, bp) in b.iter().enumerate() {
        if used_b[bi] {
            continue;
        }
        let best = c
            .iter()
            .enumerate()
            .filter(|(ci, cp)| !used_c[*ci] && !sources_conflict(bp, cp))
            .map(|(ci, cp)| (overlap(bp, cp), ci))
            .max_by(|x, y| x.0.total_cmp(&y.0).then(y.1.cmp(&x.1)));
        if let Some((ov, ci)) = best {
            let denom = bp.span().max(c[ci].span());
            if denom > 0.0 && ov / denom >= 0.6 {
                used_b[bi] = true;
                used_c[ci] = true;
                groups.push(Group {
                    baseline: vec![bi],
                    candidate: vec![ci],
                    matched_by: MatchKind::Overlap,
                    shape: MatchShape::OneToOne,
                });
            }
        }
    }

    // Pass 4: splits — an unmatched baseline phase covered by >= 2
    // unmatched candidate phases.
    for (bi, bp) in b.iter().enumerate() {
        if used_b[bi] || bp.span() <= 0.0 {
            continue;
        }
        let pieces: Vec<usize> = c
            .iter()
            .enumerate()
            .filter(|(ci, cp)| {
                !used_c[*ci]
                    && cp.span() > 0.0
                    && !sources_conflict(bp, cp)
                    && overlap(bp, cp) >= 0.5 * cp.span()
            })
            .map(|(ci, _)| ci)
            .collect();
        let covered: f64 = pieces.iter().map(|&ci| overlap(bp, &c[ci])).sum();
        if pieces.len() >= 2 && covered >= config.split_coverage * bp.span() {
            used_b[bi] = true;
            for &ci in &pieces {
                used_c[ci] = true;
            }
            groups.push(Group {
                baseline: vec![bi],
                candidate: pieces,
                matched_by: MatchKind::Overlap,
                shape: MatchShape::Split,
            });
        }
    }

    // Pass 5: merges — the mirror image.
    for (ci, cp) in c.iter().enumerate() {
        if used_c[ci] || cp.span() <= 0.0 {
            continue;
        }
        let pieces: Vec<usize> = b
            .iter()
            .enumerate()
            .filter(|(bi, bp)| {
                !used_b[*bi]
                    && bp.span() > 0.0
                    && !sources_conflict(cp, bp)
                    && overlap(cp, bp) >= 0.5 * bp.span()
            })
            .map(|(bi, _)| bi)
            .collect();
        let covered: f64 = pieces.iter().map(|&bi| overlap(cp, &b[bi])).sum();
        if pieces.len() >= 2 && covered >= config.split_coverage * cp.span() {
            used_c[ci] = true;
            for &bi in &pieces {
                used_b[bi] = true;
            }
            groups.push(Group {
                baseline: pieces,
                candidate: vec![ci],
                matched_by: MatchKind::Overlap,
                shape: MatchShape::Merge,
            });
        }
    }

    groups.sort_by_key(|g| g.baseline.first().copied().unwrap_or(usize::MAX));
    (groups, used_b, used_c)
}

/// Compares two fingerprints and renders the regression verdict.
pub fn compare_fingerprints(
    baseline: &Fingerprint,
    candidate: &Fingerprint,
    config: &MatchConfig,
) -> CompareVerdict {
    let total_before_s = baseline.total_time_s();
    let total_after_s = candidate.total_time_s();
    let pairs = match_clusters(&baseline.clusters, &candidate.clusters);

    let mut phases: Vec<PhaseVerdict> = Vec::new();
    let mut new_phases: Vec<PhaseNote> = Vec::new();
    let mut vanished_phases: Vec<PhaseNote> = Vec::new();
    // Aggregate over matched groups, in per-burst time weighted by
    // baseline instance counts so both sides are on the same footing even
    // when the runs had different iteration counts.
    let mut matched_before = 0.0;
    let mut matched_after = 0.0;

    let note = |cluster: &ClusterFingerprint, p: &PhaseFingerprint, total: f64| PhaseNote {
        cluster: cluster.cluster,
        phase: p.index,
        duration_s: p.duration_s,
        source: p.source.as_ref().map(|s| s.render()),
        time_share: if total > 0.0 {
            p.duration_s * cluster.instances as f64 / total
        } else {
            0.0
        },
    };

    for (bi, ci) in &pairs {
        let bc = &baseline.clusters[*bi];
        let cc = &candidate.clusters[*ci];
        let (groups, used_b, used_c) = match_phases(&bc.phases, &cc.phases, config);
        for g in groups {
            let bset: Vec<&PhaseFingerprint> = g.baseline.iter().map(|&i| &bc.phases[i]).collect();
            let cset: Vec<&PhaseFingerprint> =
                g.candidate.iter().map(|&i| &cc.phases[i]).collect();
            let duration_before_s: f64 = bset.iter().map(|p| p.duration_s).sum();
            let duration_after_s: f64 = cset.iter().map(|p| p.duration_s).sum();
            let duration_change = if duration_before_s <= 0.0 {
                None
            } else {
                Some(duration_after_s / duration_before_s - 1.0)
            };
            let time_share = if total_before_s > 0.0 {
                duration_before_s * bc.instances as f64 / total_before_s
            } else {
                0.0
            };
            let significant = time_share >= config.min_time_share;
            let regressed = significant
                && duration_change.is_some_and(|ch| ch >= config.regression_threshold);
            matched_before += duration_before_s * bc.instances as f64;
            matched_after += duration_after_s * bc.instances as f64;
            phases.push(PhaseVerdict {
                cluster: bc.cluster,
                candidate_cluster: cc.cluster,
                baseline_phases: g.baseline.iter().map(|&i| bc.phases[i].index).collect(),
                candidate_phases: g.candidate.iter().map(|&i| cc.phases[i].index).collect(),
                matched_by: g.matched_by,
                shape: g.shape,
                source: bset.iter().find_map(|p| p.source.as_ref().map(|s| s.render())),
                duration_before_s,
                duration_after_s,
                duration_change,
                ipc_before: weighted_ipc(&bset),
                ipc_after: weighted_ipc(&cset),
                time_share,
                significant,
                regressed,
            });
        }
        for (i, p) in bc.phases.iter().enumerate() {
            if !used_b[i] {
                vanished_phases.push(note(bc, p, total_before_s));
            }
        }
        for (i, p) in cc.phases.iter().enumerate() {
            if !used_c[i] {
                new_phases.push(note(cc, p, total_after_s));
            }
        }
    }

    // Phases of entirely unmatched clusters are one-sided by definition.
    for (i, bc) in baseline.clusters.iter().enumerate() {
        if !pairs.iter().any(|(bi, _)| *bi == i) {
            for p in &bc.phases {
                vanished_phases.push(note(bc, p, total_before_s));
            }
        }
    }
    for (j, cc) in candidate.clusters.iter().enumerate() {
        if !pairs.iter().any(|(_, cj)| *cj == j) {
            for p in &cc.phases {
                new_phases.push(note(cc, p, total_after_s));
            }
        }
    }

    let total_change =
        if matched_before > 0.0 { Some(matched_after / matched_before - 1.0) } else { None };
    let regressed = phases.iter().any(|p| p.regressed)
        || total_change.is_some_and(|ch| ch >= config.regression_threshold);

    CompareVerdict {
        baseline_build: baseline.build_id.clone(),
        candidate_build: candidate.build_id.clone(),
        baseline_trace: baseline.trace_id.clone(),
        candidate_trace: candidate.trace_id.clone(),
        threshold: config.regression_threshold,
        min_time_share: config.min_time_share,
        regressed,
        total_before_s,
        total_after_s,
        total_change,
        phases,
        new_phases,
        vanished_phases,
    }
}

// ---------------------------------------------------------------------------
// Rendering. `verdict_json` is the single source of the wire shape: both
// `POST /v1/compare` and `phasefold compare --json` / `regress-check --json`
// emit exactly these bytes.
// ---------------------------------------------------------------------------

/// Escapes a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite f64 as a JSON number; non-finite values become `null` (JSON
/// has no NaN/Inf).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(v) => num(v),
        None => "null".to_string(),
    }
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".to_string(),
    }
}

fn notes_json(notes: &[PhaseNote]) -> String {
    let items: Vec<String> = notes
        .iter()
        .map(|n| {
            format!(
                "{{\"cluster\":{},\"phase\":{},\"duration_s\":{},\"source\":{},\"time_share\":{}}}",
                n.cluster,
                n.phase,
                num(n.duration_s),
                opt_str(&n.source),
                num(n.time_share),
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Renders the verdict as the canonical JSON document.
pub fn verdict_json(v: &CompareVerdict) -> String {
    let phases: Vec<String> = v
        .phases
        .iter()
        .map(|p| {
            let bp: Vec<String> = p.baseline_phases.iter().map(|i| i.to_string()).collect();
            let cp: Vec<String> = p.candidate_phases.iter().map(|i| i.to_string()).collect();
            format!(
                concat!(
                    "{{\"cluster\":{},\"candidate_cluster\":{},",
                    "\"baseline_phases\":[{}],\"candidate_phases\":[{}],",
                    "\"matched_by\":\"{}\",\"shape\":\"{}\",\"source\":{},",
                    "\"duration_before_s\":{},\"duration_after_s\":{},",
                    "\"duration_change\":{},\"ipc_before\":{},\"ipc_after\":{},",
                    "\"time_share\":{},\"significant\":{},\"regressed\":{}}}"
                ),
                p.cluster,
                p.candidate_cluster,
                bp.join(","),
                cp.join(","),
                p.matched_by.label(),
                p.shape.label(),
                opt_str(&p.source),
                num(p.duration_before_s),
                num(p.duration_after_s),
                opt_num(p.duration_change),
                num(p.ipc_before),
                num(p.ipc_after),
                num(p.time_share),
                p.significant,
                p.regressed,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"baseline\":\"{}\",\"candidate\":\"{}\",",
            "\"baseline_trace\":\"{}\",\"candidate_trace\":\"{}\",",
            "\"threshold\":{},\"min_time_share\":{},\"regressed\":{},",
            "\"total_before_s\":{},\"total_after_s\":{},\"total_change\":{},",
            "\"phases\":[{}],\"new_phases\":{},\"vanished_phases\":{}}}"
        ),
        esc(&v.baseline_build),
        esc(&v.candidate_build),
        esc(&v.baseline_trace),
        esc(&v.candidate_trace),
        num(v.threshold),
        num(v.min_time_share),
        v.regressed,
        num(v.total_before_s),
        num(v.total_after_s),
        opt_num(v.total_change),
        phases.join(","),
        notes_json(&v.new_phases),
        notes_json(&v.vanished_phases),
    )
}

fn pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:+.1}%", v * 100.0),
        None => "n/a".to_string(),
    }
}

/// Renders the verdict as a human-readable report.
pub fn render_verdict(v: &CompareVerdict) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "regression check: {} -> {} (trace {})\n",
        v.baseline_build, v.candidate_build, v.baseline_trace
    ));
    out.push_str(&format!(
        "  threshold {:.1}%  matched-time change {}  verdict: {}\n",
        v.threshold * 100.0,
        pct(v.total_change),
        if v.regressed { "REGRESSED" } else { "clean" }
    ));
    out.push_str(&format!(
        "  total time {:.6}s -> {:.6}s\n",
        v.total_before_s, v.total_after_s
    ));
    if !v.phases.is_empty() {
        out.push_str("  phases:\n");
        for p in &v.phases {
            let bp: Vec<String> = p.baseline_phases.iter().map(|i| i.to_string()).collect();
            let cp: Vec<String> = p.candidate_phases.iter().map(|i| i.to_string()).collect();
            out.push_str(&format!(
                "    c{} p[{}] -> c{} p[{}]  {:9}  {:>7}  ipc {:.2} -> {:.2}  share {:4.1}%  {}{}\n",
                p.cluster,
                bp.join(","),
                p.candidate_cluster,
                cp.join(","),
                format!("{}/{}", p.matched_by.label(), p.shape.label()),
                pct(p.duration_change),
                p.ipc_before,
                p.ipc_after,
                p.time_share * 100.0,
                p.source.as_deref().unwrap_or("-"),
                if p.regressed { "  [REGRESSED]" } else { "" },
            ));
        }
    }
    for (label, notes) in [("new", &v.new_phases), ("vanished", &v.vanished_phases)] {
        for n in notes.iter() {
            out.push_str(&format!(
                "  {} phase: c{} p{}  {:.6}s  share {:.1}%  {}\n",
                label,
                n.cluster,
                n.phase,
                n.duration_s,
                n.time_share * 100.0,
                n.source.as_deref().unwrap_or("-"),
            ));
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::fingerprint::SourceRef;
    use phasefold_model::{CounterKind, CounterSet};

    pub(crate) fn rates(ipc: f64) -> CounterSet {
        let clock = 2.5e9;
        let mut r = CounterSet::ZERO;
        r[CounterKind::Instructions] = ipc * clock;
        r[CounterKind::Cycles] = clock;
        r[CounterKind::Loads] = 0.3 * ipc * clock;
        r[CounterKind::Stores] = 0.1 * ipc * clock;
        r[CounterKind::Branches] = 0.15 * ipc * clock;
        r
    }

    fn phase(index: usize, x0: f64, x1: f64, ipc: f64, src: Option<&str>) -> PhaseFingerprint {
        PhaseFingerprint {
            index,
            x0,
            x1,
            duration_s: (x1 - x0) * 1e-3,
            rates: rates(ipc),
            source: src.map(|name| SourceRef {
                name: name.to_string(),
                file: "app.c".to_string(),
                line: 42,
                confidence: 0.9,
            }),
        }
    }

    fn fp(build: &str, phases: Vec<PhaseFingerprint>) -> Fingerprint {
        let total_instructions =
            phases.iter().map(|p| p.rates.as_array()[0] * p.duration_s).sum();
        Fingerprint {
            build_id: build.to_string(),
            trace_id: "t".to_string(),
            num_bursts: 100,
            clusters: vec![ClusterFingerprint {
                cluster: 0,
                instances: 100,
                mean_duration_s: phases.iter().map(|p| p.duration_s).sum(),
                total_instructions,
                breakpoints: Vec::new(),
                slopes: Vec::new(),
                phases,
            }],
        }
    }

    #[test]
    fn identical_builds_are_clean() {
        let a = fp("v1", vec![phase(0, 0.0, 0.5, 2.0, Some("k0")), phase(1, 0.5, 1.0, 0.8, None)]);
        let mut b = a.clone();
        b.build_id = "v2".to_string();
        let v = compare_fingerprints(&a, &b, &MatchConfig::default());
        assert!(!v.regressed, "{}", render_verdict(&v));
        assert_eq!(v.phases.len(), 2);
        assert!(v.new_phases.is_empty() && v.vanished_phases.is_empty());
        assert!(v.total_change.unwrap().abs() < 1e-9);
    }

    #[test]
    fn uniform_slowdown_still_matches_by_signature() {
        // No source attribution anywhere: the signature pass must carry a
        // 30% slowdown of the second phase without declaring churn.
        let a = fp("v1", vec![phase(0, 0.0, 0.5, 2.4, None), phase(1, 0.5, 1.0, 0.6, None)]);
        let mut slow = phase(1, 0.45, 1.0, 0.6 / 1.3, None);
        slow.duration_s = 0.55e-3 * 1.3;
        let b = fp("v2", vec![phase(0, 0.0, 0.45, 2.4, None), slow]);
        let v = compare_fingerprints(&a, &b, &MatchConfig::default());
        assert!(v.new_phases.is_empty(), "{}", render_verdict(&v));
        assert!(v.vanished_phases.is_empty(), "{}", render_verdict(&v));
        let slow_v = v.phases.iter().find(|p| p.baseline_phases == vec![1]).unwrap();
        assert!(slow_v.duration_change.unwrap() > 0.25);
        assert!(slow_v.regressed);
        assert!(v.regressed);
    }

    #[test]
    fn insignificant_regressions_do_not_gate() {
        // The tiny phase doubles but carries ~0.1% of time: reported, not
        // gating.
        let a = fp("v1", vec![phase(0, 0.0, 0.999, 2.0, Some("big")), phase(1, 0.999, 1.0, 1.0, Some("tiny"))]);
        let mut b = a.clone();
        b.build_id = "v2".to_string();
        b.clusters[0].phases[1].duration_s *= 2.0;
        let v = compare_fingerprints(&a, &b, &MatchConfig::default());
        let tiny = v.phases.iter().find(|p| p.source.as_deref() == Some("tiny (app.c:42)")).unwrap();
        assert!(tiny.duration_change.unwrap() > 0.9);
        assert!(!tiny.significant && !tiny.regressed);
        assert!(!v.regressed, "{}", render_verdict(&v));
    }

    #[test]
    fn json_is_well_formed_enough_to_eyeball() {
        let a = fp("v\"1", vec![phase(0, 0.0, 1.0, 2.0, Some("k\\0"))]);
        let mut b = a.clone();
        b.build_id = "v2".to_string();
        let v = compare_fingerprints(&a, &b, &MatchConfig::default());
        let json = verdict_json(&v);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"baseline\":\"v\\\"1\""));
        assert!(json.contains("\"source\":\"k\\\\0 (app.c:42)\""));
        assert!(json.contains("\"regressed\":false"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }
}
