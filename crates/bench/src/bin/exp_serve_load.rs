//! **E16 — Serving throughput and latency**: closed-loop load test of the
//! `phasefold-serve` daemon.
//!
//! At each concurrency level (1/4/16/64/256/1024 clients by default)
//! every client
//! runs a closed loop of `POST /v1/analyze` requests over a keep-alive
//! connection, cycling through a small set of distinct synthetic traces so
//! the first pass misses the content-addressed cache and later passes hit
//! it. `503` answers are backpressure, not failures: the client honours
//! `Retry-After` and retries, and the run *asserts* that every well-formed
//! request eventually lands — the "zero dropped requests" acceptance
//! criterion.
//!
//! Reported per level: throughput, p50/p99 latency, cache hit ratio, and
//! the retry count. Right after the *first* (lowest-concurrency) level
//! the generator also scrapes the daemon's own `/metrics` latency
//! histogram (`serve.latency.analyze`), so `BENCH_serve.json` carries
//! both the client-observed and the daemon-observed percentiles for that
//! level — `scripts/serve.sh` gates on their self-consistency. The
//! comparison is anchored at the lowest concurrency deliberately: with
//! more clients than cores, client stopwatches include CPU-contention
//! waits that the daemon's handler stopwatch legitimately never sees, so
//! only the uncontended closed loop measures the same thing twice.
//! Written as `BENCH_serve.json` (one scalar per line, greppable by
//! `scripts/serve.sh`) plus `results/e16_serve_load.csv`.
//!
//! ```text
//! cargo run --release -p phasefold-bench --bin exp_serve_load
//!     [out.json] [--addr H:P] [--requests N] [--levels 1,4,16,64,256,1024]
//! ```
//!
//! With `--addr` the generator drives an externally-booted daemon (the
//! `scripts/serve.sh` smoke path) and leaves its lifecycle alone;
//! otherwise it boots one in-process daemon per level and verifies a clean
//! drain after each.

use phasefold_bench::{banner, fmt, write_results, Table};
use phasefold_serve::{Client, ServeConfig};
use phasefold_simapp::workloads::synthetic::{build, SyntheticParams};
use phasefold_simapp::{simulate, SimConfig};
use phasefold_tracer::{trace_run, TracerConfig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
const DISTINCT_TRACES: usize = 4;

struct LevelResult {
    concurrency: usize,
    requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    hit_ratio: f64,
    retries: usize,
    drain_clean: bool,
}

fn make_traces() -> Vec<Arc<String>> {
    (0..DISTINCT_TRACES as u64)
        .map(|seed| {
            let program =
                build(&SyntheticParams { iterations: 120, ..SyntheticParams::default() });
            let out = simulate(&program, &SimConfig { ranks: 2, seed, ..SimConfig::default() });
            let trace = trace_run(&program.registry, &out.timelines, &TracerConfig::default());
            Arc::new(phasefold_model::prv::write_trace(&trace))
        })
        .collect()
}

/// Daemon-side latency as the daemon itself measured it.
struct DaemonLatency {
    p50_ms: f64,
    p99_ms: f64,
    count: u64,
}

/// Pulls one numeric field (`"name": 1.234`) out of a single-line JSON
/// histogram entry.
fn json_field(line: &str, name: &str) -> Option<f64> {
    let rest = line.split(&format!("\"{name}\": ")).nth(1)?;
    rest.split(|c: char| c == ',' || c == ' ' || c == '}')
        .next()?
        .parse()
        .ok()
}

/// Scrapes `GET /metrics` and extracts the daemon's own
/// `serve.latency.analyze` histogram (cumulative since daemon boot).
fn scrape_daemon_latency(addr: &str) -> Option<DaemonLatency> {
    let mut client = Client::connect(addr, Duration::from_secs(30)).ok()?;
    let resp = client.request("GET", "/metrics", &[], b"").ok()?;
    if resp.status != 200 {
        return None;
    }
    let text = resp.text();
    let line = text.lines().find(|l| l.contains("\"serve.latency.analyze\""))?;
    Some(DaemonLatency {
        p50_ms: json_field(line, "p50_ms")?,
        p99_ms: json_field(line, "p99_ms")?,
        count: json_field(line, "count")? as u64,
    })
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Runs one closed-loop level against `addr`. Panics if any client drops a
/// request (exhausts its retry budget) — that is an acceptance failure,
/// not a data point.
fn run_level(
    addr: &str,
    concurrency: usize,
    total_requests: usize,
    traces: &[Arc<String>],
) -> (Vec<f64>, usize, usize, f64) {
    let hits = Arc::new(AtomicUsize::new(0));
    let retries = Arc::new(AtomicUsize::new(0));
    let per_client = total_requests.div_ceil(concurrency);
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..concurrency {
        let addr = addr.to_string();
        let traces: Vec<Arc<String>> = traces.to_vec();
        let hits = Arc::clone(&hits);
        let retries = Arc::clone(&retries);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(per_client);
            let mut client =
                Client::connect(&addr, Duration::from_secs(120)).expect("connect to daemon");
            // One untimed warmup request per connection: the daemon's
            // accept + per-connection thread spawn would otherwise land
            // entirely in the first timed sample, and steady-state request
            // latency is the statistic every gate downstream consumes.
            let _ = client.request("GET", "/healthz", &[], b"");
            for r in 0..per_client {
                let body = &traces[(c + r) % traces.len()];
                let t0 = Instant::now();
                let mut landed = false;
                for _attempt in 0..500 {
                    let resp = match client.request("POST", "/v1/analyze", &[], body.as_bytes()) {
                        Ok(resp) => resp,
                        Err(_) => {
                            // Keep-alive connection was cut (e.g. timeout);
                            // reconnect and retry.
                            client = Client::connect(&addr, Duration::from_secs(120))
                                .expect("reconnect to daemon");
                            continue;
                        }
                    };
                    match resp.status {
                        200 => {
                            if resp.cache_hit() {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                            landed = true;
                            break;
                        }
                        503 => {
                            retries.fetch_add(1, Ordering::Relaxed);
                            let backoff = resp
                                .header("retry-after")
                                .and_then(|v| v.parse::<u64>().ok())
                                .unwrap_or(1);
                            // Honour Retry-After but cap it: the hint is
                            // seconds-granular and the queue drains in ms.
                            std::thread::sleep(Duration::from_millis((backoff * 50).min(1000)));
                        }
                        other => panic!("unexpected status {other} from daemon"),
                    }
                }
                assert!(landed, "client {c} dropped a well-formed request after 500 attempts");
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            latencies
        }));
    }
    let mut latencies = Vec::with_capacity(total_requests);
    for h in handles {
        latencies.extend(h.join().expect("client thread panicked"));
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    (
        latencies,
        hits.load(Ordering::Relaxed),
        retries.load(Ordering::Relaxed),
        wall_ms,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = DEFAULT_OUT.to_string();
    let mut external_addr: Option<String> = None;
    let mut total_requests = 2048usize;
    let mut levels = vec![1usize, 4, 16, 64, 256, 1024];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                external_addr = Some(args.get(i + 1).expect("--addr needs a value").clone());
                i += 2;
            }
            "--requests" => {
                total_requests = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
                i += 2;
            }
            "--levels" => {
                levels = args
                    .get(i + 1)
                    .expect("--levels needs a value")
                    .split(',')
                    .map(|v| v.parse().expect("bad level"))
                    .collect();
                i += 2;
            }
            other => {
                out_path = other.to_string();
                i += 1;
            }
        }
    }

    banner(
        "E16",
        "serving throughput/latency under closed-loop load",
        "BENCH_serve.json / results/e16_serve_load.csv (scripts/serve.sh gates)",
    );
    let traces = make_traces();
    println!(
        "{} distinct traces, {} requests per level, levels {:?}{}",
        traces.len(),
        total_requests,
        levels,
        external_addr.as_deref().map_or(String::new(), |a| format!(", external daemon {a}")),
    );

    let mut results = Vec::new();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut daemon: Option<DaemonLatency> = None;
    for &concurrency in &levels {
        // Every client runs at least a few timed requests, so the level
        // measures steady-state keep-alive throughput and not the
        // connect storm (at c=1024 a 2048-request budget would give each
        // client two samples, half of them right behind the accept burst).
        let level_requests = total_requests.max(concurrency * 4);
        let want_scrape = daemon.is_none(); // first level only — see module doc
        let (latencies, hits, retries, wall_ms, drain_clean) = match &external_addr {
            Some(addr) => {
                let (l, h, r, w) = run_level(addr, concurrency, level_requests, &traces);
                if want_scrape {
                    daemon = scrape_daemon_latency(addr);
                }
                (l, h, r, w, true) // external daemon: lifecycle not ours
            }
            None => {
                let config = ServeConfig {
                    workers: std::thread::available_parallelism().map_or(2, |n| n.get()).min(8),
                    queue_depth: 32,
                    // Room for the widest level plus reconnect churn: the
                    // zero-drop criterion is about queue backpressure, not
                    // the connection cap.
                    max_connections: (levels.iter().copied().max().unwrap_or(64) * 2).max(256),
                    ..ServeConfig::default()
                };
                let handle = phasefold_serve::serve(config).expect("boot daemon");
                let addr = handle.addr().to_string();
                let (l, h, r, w) = run_level(&addr, concurrency, level_requests, &traces);
                if want_scrape {
                    // Scrape before the drain: the histogram registry is
                    // process-global but this daemon's samples are exactly
                    // this level's requests.
                    daemon = scrape_daemon_latency(&addr);
                }
                let stats = handle.shutdown();
                assert!(stats.clean, "daemon drain was not clean: {stats:?}");
                (l, h, r, w, stats.clean)
            }
        };
        let mut sorted = latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let requests = latencies.len();
        all_latencies.extend_from_slice(&latencies);
        results.push(LevelResult {
            concurrency,
            requests,
            wall_ms,
            throughput_rps: requests as f64 / (wall_ms / 1e3),
            p50_ms: percentile(&sorted, 0.50),
            p99_ms: percentile(&sorted, 0.99),
            hit_ratio: hits as f64 / requests as f64,
            retries,
            drain_clean,
        });
    }

    let mut table = Table::new(&[
        "concurrency",
        "requests",
        "wall_ms",
        "req_per_s",
        "p50_ms",
        "p99_ms",
        "hit_ratio",
        "retries_503",
    ]);
    for r in &results {
        table.row(vec![
            r.concurrency.to_string(),
            r.requests.to_string(),
            fmt(r.wall_ms, 1),
            fmt(r.throughput_rps, 1),
            fmt(r.p50_ms, 2),
            fmt(r.p99_ms, 2),
            fmt(r.hit_ratio, 3),
            r.retries.to_string(),
        ]);
    }
    println!("{}", table.render_text());
    let csv_path = write_results("e16_serve_load.csv", &table.render_csv());
    println!("csv written to {}", csv_path.display());

    // Machine-readable artifact, one scalar per line for shell gating.
    let overall_hits: f64 = results.iter().map(|r| r.hit_ratio * r.requests as f64).sum();
    let overall_requests: usize = results.iter().map(|r| r.requests).sum();
    let worst_p99 = results.iter().map(|r| r.p99_ms).fold(0.0f64, f64::max);
    let all_clean = results.iter().all(|r| r.drain_clean);
    all_latencies.sort_by(f64::total_cmp);
    let client_p50 = percentile(&all_latencies, 0.50);
    let client_p99 = percentile(&all_latencies, 0.99);
    let daemon = daemon.expect("daemon /metrics had no serve.latency.analyze histogram");
    let gate = &results[0]; // daemon was scraped right after this level
    println!(
        "self-consistency anchor (concurrency {}): client p50 {:.2} ms / p99 {:.2} ms, \
         daemon p50 {:.2} ms / p99 {:.2} ms over {} samples",
        gate.concurrency, gate.p50_ms, gate.p99_ms, daemon.p50_ms, daemon.p99_ms, daemon.count
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"phasefold-bench-serve/1\",");
    let _ = writeln!(
        json,
        "  \"build_profile\": \"{}\",",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    // On a single-core host every concurrency level shares one CPU, so
    // throughput cannot scale and the scaling gate must not pretend it
    // was measured (same convention as BENCH.json `parallel_measured`).
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"scaling_measured\": {},", host_cores > 1);
    let _ = writeln!(json, "  \"distinct_traces\": {DISTINCT_TRACES},");
    let _ = writeln!(json, "  \"requests_per_level\": {total_requests},");
    let _ = writeln!(json, "  \"overall_requests\": {overall_requests},");
    let _ = writeln!(json, "  \"dropped_requests\": 0,");
    let _ = writeln!(
        json,
        "  \"overall_hit_ratio\": {:.4},",
        overall_hits / overall_requests as f64
    );
    let _ = writeln!(json, "  \"worst_p99_ms\": {worst_p99:.3},");
    let _ = writeln!(json, "  \"client_p50_ms\": {client_p50:.3},");
    let _ = writeln!(json, "  \"client_p99_ms\": {client_p99:.3},");
    let _ = writeln!(json, "  \"gate_concurrency\": {},", gate.concurrency);
    let _ = writeln!(json, "  \"gate_client_p50_ms\": {:.3},", gate.p50_ms);
    let _ = writeln!(json, "  \"gate_client_p99_ms\": {:.3},", gate.p99_ms);
    let _ = writeln!(json, "  \"daemon_p50_ms\": {:.3},", daemon.p50_ms);
    let _ = writeln!(json, "  \"daemon_p99_ms\": {:.3},", daemon.p99_ms);
    let _ = writeln!(json, "  \"daemon_latency_count\": {},", daemon.count);
    let _ = writeln!(json, "  \"all_drains_clean\": {all_clean},");
    let _ = writeln!(json, "  \"levels\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"concurrency\": {}, \"requests\": {}, \"wall_ms\": {:.3}, \
             \"throughput_rps\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"hit_ratio\": {:.4}, \"retries_503\": {}, \"drain_clean\": {} }}{comma}",
            r.concurrency,
            r.requests,
            r.wall_ms,
            r.throughput_rps,
            r.p50_ms,
            r.p99_ms,
            r.hit_ratio,
            r.retries,
            r.drain_clean,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("json written to {out_path}");
}
