//! Criterion micro-bench: DBSCAN cost over point count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phasefold_cluster::{dbscan, DbscanParams};

fn blobs(n: usize) -> Vec<[f64; 2]> {
    (0..n)
        .map(|i| {
            let blob = (i % 4) as f64;
            let a = ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 10_000.0;
            let b = ((i as u64).wrapping_mul(0x9E3779B9) % 1000) as f64 / 10_000.0;
            [0.2 * blob + a, 0.2 * blob + b]
        })
        .collect()
}

fn bench_dbscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan");
    for &n in &[500usize, 2000, 8000] {
        let pts = blobs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| dbscan(&pts, &DbscanParams { eps: 0.05, min_pts: 4 }))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dbscan);
criterion_main!(benches);
