//! Counters and gauges: a global registry of named atomic cells with a
//! thread-local cache, so the hot path is one lock-free atomic op.
//!
//! Names are `&'static str` literals (they *are* the registry keys). The
//! first time a thread touches a name it resolves the shared cell under
//! the registry lock and caches the `Arc` thread-locally; every later
//! update on that thread is a single `fetch_add` / `store` / `fetch_max`
//! with `Relaxed` ordering — totals are read only after the threads that
//! wrote them have joined.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// What a cell's `u64` payload means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellKind {
    /// Monotonic sum (`fetch_add`), or high-water mark (`fetch_max`) — both
    /// export as integer counters.
    Counter,
    /// `f64` bits, last write wins.
    Gauge,
}

#[derive(Debug)]
struct Cell {
    value: AtomicU64,
    kind: CellKind,
}

type Registry = Mutex<BTreeMap<&'static str, Arc<Cell>>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_registry() -> MutexGuard<'static, BTreeMap<&'static str, Arc<Cell>>> {
    // Atomic cells stay valid across a writer panic; recover from poison.
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Per-thread name → cell cache; avoids the registry lock on the hot
    /// path.
    static CACHE: RefCell<BTreeMap<&'static str, Arc<Cell>>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Resolves (registering on first global use) the cell for `name`.
fn cell(name: &'static str, kind: CellKind) -> Arc<Cell> {
    CACHE.with(|cache| {
        if let Some(c) = cache.borrow().get(name) {
            return Arc::clone(c);
        }
        let shared = {
            let mut reg = lock_registry();
            Arc::clone(reg.entry(name).or_insert_with(|| {
                Arc::new(Cell { value: AtomicU64::new(0), kind })
            }))
        };
        cache.borrow_mut().insert(name, Arc::clone(&shared));
        shared
    })
}

/// Adds `delta` to the monotonic counter `name`.
pub fn counter_add(name: &'static str, delta: u64) {
    cell(name, CellKind::Counter).value.fetch_add(delta, Ordering::Relaxed);
}

/// Raises the watermark counter `name` to at least `value`.
pub fn counter_max(name: &'static str, value: u64) {
    cell(name, CellKind::Counter).value.fetch_max(value, Ordering::Relaxed);
}

/// Sets the gauge `name` to `value` (last write wins).
pub fn gauge_set(name: &'static str, value: f64) {
    cell(name, CellKind::Gauge).value.store(value.to_bits(), Ordering::Relaxed);
}

/// Current value of counter `name` (0 if never touched).
pub fn counter_value(name: &'static str) -> u64 {
    lock_registry().get(name).map_or(0, |c| c.value.load(Ordering::Relaxed))
}

/// Current value of gauge `name` (`None` if never set).
pub fn gauge_value(name: &'static str) -> Option<f64> {
    lock_registry().get(name).and_then(|c| match c.kind {
        CellKind::Gauge => Some(f64::from_bits(c.value.load(Ordering::Relaxed))),
        CellKind::Counter => None,
    })
}

/// All counters and gauges, name-sorted.
pub fn metrics_snapshot() -> (Vec<(String, u64)>, Vec<(String, f64)>) {
    let reg = lock_registry();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    for (name, c) in reg.iter() {
        let raw = c.value.load(Ordering::Relaxed);
        match c.kind {
            CellKind::Counter => counters.push((name.to_string(), raw)),
            CellKind::Gauge => gauges.push((name.to_string(), f64::from_bits(raw))),
        }
    }
    (counters, gauges)
}

/// Zeroes every registered cell (registrations survive, so thread-local
/// caches stay valid).
pub fn reset_metrics() {
    let reg = lock_registry();
    for c in reg.values() {
        c.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    // Distinct names per test: the registry is process-global and the test
    // harness runs tests concurrently.

    #[test]
    fn counters_accumulate_across_threads() {
        const NAME: &str = "test.m.accumulate";
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter_add(NAME, 1);
                    }
                });
            }
        });
        assert_eq!(counter_value(NAME), 4000);
    }

    #[test]
    fn watermark_keeps_the_max() {
        const NAME: &str = "test.m.peak";
        counter_max(NAME, 3);
        counter_max(NAME, 17);
        counter_max(NAME, 5);
        assert_eq!(counter_value(NAME), 17);
    }

    #[test]
    fn gauges_last_write_wins() {
        const NAME: &str = "test.m.gauge";
        assert_eq!(gauge_value(NAME), None);
        gauge_set(NAME, 1.5);
        gauge_set(NAME, -2.25);
        assert_eq!(gauge_value(NAME), Some(-2.25));
    }

    #[test]
    fn snapshot_separates_kinds() {
        counter_add("test.m.snap_counter", 7);
        gauge_set("test.m.snap_gauge", 0.5);
        let (counters, gauges) = metrics_snapshot();
        assert!(counters.iter().any(|(n, v)| n == "test.m.snap_counter" && *v >= 7));
        assert!(gauges.iter().any(|(n, _)| n == "test.m.snap_gauge"));
        // Name-sorted.
        let names: Vec<&String> = counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
